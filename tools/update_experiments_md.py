"""Regenerate the measured Table I/II sections of EXPERIMENTS.md from cache.

Run after `pytest benchmarks/ --benchmark-only` so the recorded numbers always
match the current corpus/training recipe:

    python tools/update_experiments_md.py [--repo PATH]

Exit codes: 0 refreshed, 1 when EXPERIMENTS.md is missing or a table
heading cannot be located.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path


def markdown_rows(rows) -> str:
    lines = [
        "| ID | layers | blocks | PER % | degr | paper PER | paper degr |",
        "|---:|---|---|---:|---:|---:|---:|",
    ]
    for row in rows:
        layers = "-".join(map(str, row.layer_sizes))
        blocks = "-".join(map(str, row.block_sizes)) if row.block_sizes else "dense"
        degr = f"{row.degradation:+.2f}" if row.degradation is not None else "-"
        paper_degr = (
            f"{row.paper_degradation:+.2f}"
            if row.paper_degradation is not None
            else "-"
        )
        lines.append(
            f"| {row.row_id} | {layers} | {blocks} | {row.per:.2f} | {degr} "
            f"| {row.paper_per:.2f} | {paper_degr} |"
        )
    return "\n".join(lines)


def replace_table(text: str, heading: str, table: str) -> str:
    """Swap the markdown table that follows ``heading`` for ``table``."""
    pattern = re.compile(
        rf"(^## {re.escape(heading)}.*?\n\n.*?)(\|.*?\n)(?=\n[^|])",
        re.DOTALL | re.MULTILINE,
    )
    match = pattern.search(text)
    if match is None:
        raise ValueError(f"could not locate the table under '{heading}'")
    return text[: match.start(2)] + table + "\n" + text[match.end(2):]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="regenerate EXPERIMENTS.md Table I/II from the PER cache"
    )
    parser.add_argument(
        "--repo",
        type=Path,
        default=Path(__file__).resolve().parents[1],
        help="repository root holding EXPERIMENTS.md "
        "(default: this script's repository)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # Imported here, not at module top: the experiment stack is heavy, and
    # --help / argument errors should not pay for (or depend on) it.
    from repro.experiments.common import ExperimentHarness
    from repro.experiments.table1 import run_table1
    from repro.experiments.table2 import run_table2

    harness = ExperimentHarness()  # PERs served from the shared DiskCache
    # ('per' namespace under $REPRO_CACHE_DIR or ~/.cache/repro-ernn)
    table1 = markdown_rows(run_table1(harness))
    table2 = markdown_rows(run_table2(harness))
    path = args.repo.resolve() / "EXPERIMENTS.md"
    try:
        text = path.read_text()
        text = replace_table(text, "Table I", table1)
        text = replace_table(text, "Table II", table2)
        path.write_text(text)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print("EXPERIMENTS.md Table I/II refreshed from cache")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
