"""Refresh EXPERIMENTS.md's measured ablation excerpts from benchmarks/out.

Replaces the Phase-I trial log code block and the ADMM-vs-direct measured
line with the latest benchmark outputs, so EXPERIMENTS.md always quotes the
numbers the committed bench artifacts contain.

    python tools/refresh_ablation_sections.py
"""

from __future__ import annotations

import re
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
OUT = REPO / "benchmarks" / "out"


def refresh_phase1(text: str) -> str:
    source = (OUT / "phase1_trials.txt").read_text().strip().splitlines()
    log_lines = [line.strip() for line in source if line.strip().startswith("[")]
    block = "\n".join(log_lines)
    pattern = re.compile(r"```\n\[baseline\].*?```", re.DOTALL)
    return pattern.sub(f"```\n{block}\n```", text, count=1)


def main() -> None:
    path = REPO / "EXPERIMENTS.md"
    text = path.read_text()
    text = refresh_phase1(text)
    path.write_text(text)
    measured = (OUT / "ablation_admm_vs_direct.txt").read_text().strip()
    print("EXPERIMENTS.md phase-1 excerpt refreshed")
    print("ADMM ablation (update the prose numbers manually if changed):")
    print(" ", measured.splitlines()[0])


if __name__ == "__main__":
    main()
