"""Refresh EXPERIMENTS.md's measured ablation excerpts from benchmarks/out.

Replaces the Phase-I trial log code block and the ADMM-vs-direct measured
line with the latest benchmark outputs, so EXPERIMENTS.md always quotes the
numbers the committed bench artifacts contain.

    python tools/refresh_ablation_sections.py [--repo PATH]

Exit codes: 0 refreshed, 1 when a required input (EXPERIMENTS.md or a
benchmark output) is missing or the excerpt block cannot be located.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path


def refresh_phase1(text: str, out_dir: Path) -> str:
    source = (out_dir / "phase1_trials.txt").read_text().strip().splitlines()
    log_lines = [line.strip() for line in source if line.strip().startswith("[")]
    block = "\n".join(log_lines)
    pattern = re.compile(r"```\n\[baseline\].*?```", re.DOTALL)
    refreshed, count = pattern.subn(f"```\n{block}\n```", text, count=1)
    if count == 0:
        raise ValueError(
            "EXPERIMENTS.md has no phase-1 trial-log code block to refresh"
        )
    return refreshed


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="refresh EXPERIMENTS.md ablation excerpts from benchmarks/out"
    )
    parser.add_argument(
        "--repo",
        type=Path,
        default=Path(__file__).resolve().parents[1],
        help="repository root holding EXPERIMENTS.md and benchmarks/out "
        "(default: this script's repository)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    repo = args.repo.resolve()
    out_dir = repo / "benchmarks" / "out"
    path = repo / "EXPERIMENTS.md"
    try:
        text = refresh_phase1(path.read_text(), out_dir)
        path.write_text(text)
        measured = (out_dir / "ablation_admm_vs_direct.txt").read_text().strip()
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print("EXPERIMENTS.md phase-1 excerpt refreshed")
    print("ADMM ablation (update the prose numbers manually if changed):")
    print(" ", measured.splitlines()[0])
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
