"""Legacy setup shim.

The execution environment has setuptools but no ``wheel`` package and no
network access, so PEP 517 editable installs (which build a wheel) fail.
This shim lets ``pip install -e . --no-use-pep517`` work offline; all
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
