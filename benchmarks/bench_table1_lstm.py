"""Table I: LSTM block-size / layer-size exploration (trained rows).

Trains all 16 rows of the paper's LSTM grid (÷16 scale, DESIGN.md §2) with
the E-RNN flow and prints measured vs published PER.  Assertions check the
paper's Sec. IV observations as *orderings*; absolute PERs belong to the
synthetic corpus, not to TIMIT.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.table1 import format_rows, run_table1


@pytest.mark.benchmark(group="table1")
def test_table1_lstm_grid(benchmark, harness):
    rows = benchmark.pedantic(
        run_table1, args=(harness,), rounds=1, iterations=1
    )
    emit("table1_lstm", format_rows(rows, "Table I: LSTM models (scaled /16)"))

    by_id = {row.row_id: row for row in rows}

    # PER on the scaled corpus has a ~±5-point noise band (one decode error
    # is ~1%, training variance adds the rest); orderings are asserted with
    # that slack.  The paper's TIMIT-scale differences are 0.0-0.5%; at 1/16
    # layer size every block size cuts relatively ~16x deeper, so measured
    # degradations are tens of points — the assertions below test the
    # *orderings*, and EXPERIMENTS.md records the magnitudes honestly.
    noise = 6.0

    # Observation 1: the smallest block size is free (paper: -0.08 at
    # block 2; here exactly 0.0 — ADMM recovers the dense solution).
    assert by_id[2].degradation < 2.0

    # Observation 2: degradation grows with block size within a layer config
    # (paper rows 10 -> 13 -> 16: 0.00 < 0.13 < 0.31).
    assert by_id[10].degradation <= by_id[13].degradation + noise
    assert by_id[13].degradation <= by_id[16].degradation + noise
    # ...and block 4 costs less than block 8+ on the mid config (5 vs 8).
    assert by_id[5].degradation <= by_id[8].degradation + noise

    # Every compressed model remains usable (no training collapse).
    for row in rows:
        assert row.per < 95.0, row

    # Bigger baselines are better baselines (paper: 20.83 > 20.53 > 20.01);
    # this ordering is strict on the measured corpus.
    assert by_id[9].per <= by_id[4].per + 1.0
    assert by_id[4].per <= by_id[1].per + 1.0
