"""Fig. 8: normalized multiplication count vs block size.

Regenerates both panels (layer 512 and 1024) and asserts the paper's shape:
the curve starts at 0.5 for block 2, decreases monotonically, and converges
at block size 32-64 (the Phase-I upper bound).
"""

import pytest

from benchmarks.conftest import emit
from repro.core.cost_model import recommended_block_upper_bound
from repro.experiments.fig8 import format_fig8, run_fig8


@pytest.mark.benchmark(group="fig8")
def test_fig8_multiplication_curves(benchmark):
    curves = benchmark(run_fig8)
    emit("fig8_multiplications", format_fig8(curves))

    for layer_size, curve in curves.items():
        assert curve[2] == pytest.approx(0.5), "paper: curve starts at ~0.5"
        blocks = sorted(curve)
        for a, b in zip(blocks, blocks[1:]):
            assert curve[b] <= curve[a] + 1e-9, "monotone decrease"
        assert recommended_block_upper_bound(layer_size) in (32, 64), (
            "paper Sec. V-B: convergence at block size 32 or 64"
        )
