"""Quantization sweep (Sec. VII-D): PER vs fixed-point bit width.

Paper: "The accuracy degradation from input/weight quantization is very
small (i.e., <0.1%) ... 12-bit weight quantization is in general a safe
design."  At reproduction scale the knee is the same: high widths are free,
very low widths collapse.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.ablations import quantization_ablation


@pytest.mark.benchmark(group="quantization")
def test_quantization_sweep(benchmark, harness):
    sweep = benchmark.pedantic(
        quantization_ablation,
        args=(harness,),
        kwargs={"bits_list": (16, 12, 10, 8, 6)},
        rounds=1,
        iterations=1,
    )
    lines = ["Quantization sweep (weights+inputs quantized, PWL activations):"]
    lines += [f"  {bits:>2d} bits -> PER {per:6.2f}%" for bits, per in sweep.items()]
    lines.append("paper: 12-bit costs <0.1% PER at TIMIT scale")
    emit("quantization_sweep", "\n".join(lines))

    # 12-bit within noise of 16-bit; 6-bit materially worse than 16-bit.
    assert abs(sweep[12] - sweep[16]) <= 5.0
    assert sweep[6] >= sweep[16] - 1.0
