"""Phase-I trial-count benchmark (Fig. 2).

The paper's framework claim: the two design explorations bound the search so
"the total number of training trials is limited to around 5", against a full
grid of dozens.  This bench runs real Phase-I training trials on the scaled
corpus and counts them.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.ablations import phase1_trial_count


@pytest.mark.benchmark(group="phase1")
def test_phase1_trial_count(benchmark, harness):
    result = benchmark.pedantic(
        phase1_trial_count, args=(harness,), rounds=1, iterations=1
    )
    grid_size = 2 * len([2, 4, 8, 16]) ** 2  # cell types x per-layer blocks
    text = "\n".join(
        [
            result.describe(),
            f"full grid would need ~{grid_size} trials; "
            f"Phase I used {result.num_training_trials} "
            f"(paper: 'limited to around 5')",
        ]
    )
    emit("phase1_trials", text)

    assert result.num_training_trials <= 6
    assert result.final_spec.is_block_circulant
    assert result.final_per <= result.baseline_per + 5.0 + 1e-9
