"""ASIC projection bench (the paper's "also applicable to ASICs" claim).

Projects the four E-RNN Table III configurations onto a generic 28 nm
standard-cell process and reports area / frequency / efficiency next to the
FPGA numbers.
"""

import pytest

from benchmarks.conftest import emit
from repro.config import AccelSpec
from repro.experiments.table3 import gru_workload, lstm_workload
from repro.hw.accelerator import AcceleratorModel
from repro.hw.asic import project_to_asic


def project_all():
    rows = []
    for name, spec in (
        ("LSTM FFT8", lstm_workload(8)),
        ("LSTM FFT16", lstm_workload(16)),
        ("GRU FFT8", gru_workload(8)),
        ("GRU FFT16", gru_workload(16)),
    ):
        design = AcceleratorModel(spec, AccelSpec("XCKU060")).build()
        rows.append((name, design, project_to_asic(design)))
    return rows


@pytest.mark.benchmark(group="asic")
def test_asic_projection(benchmark):
    rows = benchmark(project_all)

    lines = [
        "ASIC projection (generic 28 nm) of the E-RNN designs:",
        f"{'config':>12} | {'FPGA us':>8} | {'ASIC us':>8} | {'mm^2':>6} | "
        f"{'ASIC FPS':>10} | {'FPS/W':>8}",
    ]
    for name, design, asic in rows:
        lines.append(
            f"{name:>12} | {design.latency_us:8.1f} | {asic.latency_us:8.2f} | "
            f"{asic.area_mm2:6.1f} | {asic.fps:10,.0f} | "
            f"{asic.energy_efficiency:8,.0f}"
        )
    emit("asic_projection", "\n".join(lines))

    for _, design, asic in rows:
        assert asic.latency_us < design.latency_us
        assert asic.energy_efficiency > design.energy_efficiency
