"""Benchmark fixtures: thread pinning and the shared experiment harness.

BLAS thread pinning must happen before numpy loads its backend: the
reproduction's training workload is thousands of small matrix products, and
OpenBLAS's multi-threaded path is ~3.5x *slower* than single-threaded at
these sizes.  This conftest is imported before any benchmark module, so the
environment variables take effect.
"""

import os

for _var in (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
):
    os.environ.setdefault(_var, "1")

from pathlib import Path  # noqa: E402

import pytest  # noqa: E402

from repro.experiments.common import ExperimentHarness, ExperimentSettings  # noqa: E402

#: Where the formatted tables land (one file per table/figure) so the
#: regenerated results survive the pytest run.
OUTPUT_DIR = Path(__file__).resolve().parent / "out"


def emit(name: str, text: str) -> None:
    """Print a table and persist it under benchmarks/out/."""
    print()
    print(text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def harness() -> ExperimentHarness:
    """One corpus + cache shared by every accuracy benchmark in the session."""
    return ExperimentHarness(ExperimentSettings())
