"""Explorer: serial vs parallel sweep latency, and cold vs warm disk cache.

Runs one paper-scale design grid (blocks x bits x platforms) three ways:

* serial, cold engine — the pre-explorer baseline (what the old example's
  python loop cost);
* parallel (process pool), cold — the speedup scales with cores, so the
  recorded number is machine-dependent; on a laptop-class 4-core machine
  the expectation is >= 2x;
* serial again with a *fresh* engine sharing the first run's disk cache —
  simulating a rerun in a new process/session; every build is replaced by
  a JSON read + decode, so the expectation is >= 5x over cold.

Correctness is asserted unconditionally: all three runs must produce
byte-identical reports (the explorer's determinism guarantee).

Timing goes through the shared :func:`repro.bench.time_callable` harness
(one sample per configuration — a sweep is its own repetition) and the
numbers land in a ``BENCH_explorer_modes.json`` artifact next to the text
table.
"""

import os

import pytest

from benchmarks.conftest import OUTPUT_DIR, emit
from repro.api import Design, DiskCache, Engine, Sweep
from repro.bench import BenchResult, time_callable, write_result


def paper_sweep() -> Sweep:
    base = Design.lstm(1024, 1024).peephole().project(512)
    return Sweep(base).over(
        blocks=[4, 8, 16, 32],
        bits=[8, 10, 12, 16],
        platform=["ADM-PCIE-7V3", "XCKU060"],
    )


@pytest.mark.benchmark(group="explorer")
def test_explorer_parallel_and_warm_cache(tmp_path):
    sweep = paper_sweep()
    assert sweep.grid_size() == 32

    runs: dict[str, object] = {}
    result = BenchResult(
        "explorer_modes",
        notes="32-point sweep (blocks x bits x platform), byte-identical "
        "reports asserted across modes and cache states",
        metrics={"grid_size": sweep.grid_size(), "cpus": os.cpu_count()},
    )

    def run(label, **kwargs):
        stats = time_callable(
            lambda: runs.__setitem__(label, sweep.run(**kwargs)),
            warmup=0, repeats=1,
        )
        result.add_timing(label, stats)
        return stats.median_s

    serial_s = run("serial_cold", mode="serial", engine=Engine())
    parallel_s = run("process_pool", mode="process", workers=os.cpu_count())

    cache_root = tmp_path / "cache"
    cold_s = run("disk_cache_cold", mode="serial",
                 engine=Engine(disk=DiskCache(cache_root)))
    warm_engine = Engine(disk=DiskCache(cache_root))  # fresh LRU, shared disk
    warm_s = run("disk_cache_warm", mode="serial", engine=warm_engine)

    # Determinism: mode and cache state must never change the report bytes.
    assert (
        runs["serial_cold"].to_json()
        == runs["process_pool"].to_json()
        == runs["disk_cache_cold"].to_json()
        == runs["disk_cache_warm"].to_json()
    )
    stats = warm_engine.stats()
    # The warm pass serves whole evaluated points from the explorer
    # namespace — the engine never even sees a lookup, let alone a build.
    assert stats.misses == 0
    assert warm_s < cold_s

    result.metrics["warm_vs_cold"] = round(cold_s / warm_s, 2)
    result.metrics["process_vs_serial"] = round(serial_s / parallel_s, 2)
    write_result(result, OUTPUT_DIR)

    lines = [
        f"Explorer: 32-point sweep (blocks x bits x platform), "
        f"{os.cpu_count()} cores",
        f"  serial cold:     {serial_s * 1e3:8.1f} ms",
        f"  process pool:    {parallel_s * 1e3:8.1f} ms "
        f"({serial_s / parallel_s:.2f}x vs serial; scales with cores)",
        f"  disk-cache cold: {cold_s * 1e3:8.1f} ms",
        f"  disk-cache warm: {warm_s * 1e3:8.1f} ms "
        f"({cold_s / warm_s:.2f}x vs cold)",
        f"  {stats.describe()}",
    ]
    emit("explorer", "\n".join(lines))
