"""Explorer: serial vs parallel sweep latency, and cold vs warm disk cache.

Runs one paper-scale design grid (blocks x bits x platforms) three ways:

* serial, cold engine — the pre-explorer baseline (what the old example's
  python loop cost);
* parallel (process pool), cold — the speedup scales with cores, so the
  recorded number is machine-dependent; on a laptop-class 4-core machine
  the expectation is >= 2x;
* serial again with a *fresh* engine sharing the first run's disk cache —
  simulating a rerun in a new process/session; every build is replaced by
  a JSON read + decode, so the expectation is >= 5x over cold.

Correctness is asserted unconditionally: all three runs must produce
byte-identical reports (the explorer's determinism guarantee).
"""

import os
import time

import pytest

from benchmarks.conftest import emit
from repro.api import Design, DiskCache, Engine, Sweep


def paper_sweep() -> Sweep:
    base = Design.lstm(1024, 1024).peephole().project(512)
    return Sweep(base).over(
        blocks=[4, 8, 16, 32],
        bits=[8, 10, 12, 16],
        platform=["ADM-PCIE-7V3", "XCKU060"],
    )


@pytest.mark.benchmark(group="explorer")
def test_explorer_parallel_and_warm_cache(tmp_path):
    sweep = paper_sweep()
    assert sweep.grid_size() == 32

    start = time.perf_counter()
    serial = sweep.run(mode="serial", engine=Engine())
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = sweep.run(mode="process", workers=os.cpu_count())
    parallel_s = time.perf_counter() - start

    cache_root = tmp_path / "cache"
    start = time.perf_counter()
    cold = sweep.run(mode="serial", engine=Engine(disk=DiskCache(cache_root)))
    cold_s = time.perf_counter() - start

    warm_engine = Engine(disk=DiskCache(cache_root))  # fresh LRU, shared disk
    start = time.perf_counter()
    warm = sweep.run(mode="serial", engine=warm_engine)
    warm_s = time.perf_counter() - start

    # Determinism: mode and cache state must never change the report bytes.
    assert serial.to_json() == parallel.to_json() == cold.to_json() == warm.to_json()
    stats = warm_engine.stats()
    # The warm pass serves whole evaluated points from the explorer
    # namespace — the engine never even sees a lookup, let alone a build.
    assert stats.misses == 0
    assert warm_s < cold_s

    lines = [
        f"Explorer: 32-point sweep (blocks x bits x platform), "
        f"{os.cpu_count()} cores",
        f"  serial cold:     {serial_s * 1e3:8.1f} ms",
        f"  process pool:    {parallel_s * 1e3:8.1f} ms "
        f"({serial_s / parallel_s:.2f}x vs serial; scales with cores)",
        f"  disk-cache cold: {cold_s * 1e3:8.1f} ms",
        f"  disk-cache warm: {warm_s * 1e3:8.1f} ms "
        f"({cold_s / warm_s:.2f}x vs cold)",
        f"  {stats.describe()}",
    ]
    emit("explorer", "\n".join(lines))
