"""Table IV: FPGA platform comparison (resource totals + derived capacity)."""

import pytest

from benchmarks.conftest import emit
from repro.experiments.table4 import format_table4, run_table4, verify_against_paper


@pytest.mark.benchmark(group="table4")
def test_table4_platforms(benchmark):
    rows = benchmark(run_table4)
    emit("table4_platforms", format_table4(rows))

    assert verify_against_paper(), "resource totals must equal Table IV"
    # The 7V3 is the larger device and must host more PEs at either FFT size.
    assert (
        rows["ADM-PCIE-7V3"]["pe_capacity_fft8"]
        > rows["XCKU060"]["pe_capacity_fft8"]
    )
