"""HLS framework (Fig. 13): spec -> graph -> schedule -> code, end to end."""

import pytest

from benchmarks.conftest import emit
from repro.config import AccelSpec
from repro.experiments.table3 import gru_workload, lstm_workload
from repro.hls.framework import HLSFramework
from repro.hw.cu import ComputeUnitModel


def run_flows():
    results = {}
    for name, spec in (("LSTM", lstm_workload(8)), ("GRU", gru_workload(8))):
        results[name] = HLSFramework(spec, AccelSpec("XCKU060")).build()
    return results


@pytest.mark.benchmark(group="hls")
def test_hls_flow(benchmark):
    results = benchmark(run_flows)

    lines = ["HLS framework (Fig. 13) results:"]
    for name, result in results.items():
        summary = result.summary()
        lines.append(
            f"  {name}: {summary['num_ops']:.0f} ops, "
            f"{summary['num_stages']:.0f} CGPipe stages, "
            f"{summary['frame_cycles']:.0f} cycles "
            f"({summary['latency_us']:.1f} us), "
            f"{summary['code_lines']:.0f} lines of HLS C"
        )
    emit("hls_framework", "\n".join(lines))

    for name, result in results.items():
        assert result.code.count("{") == result.code.count("}")
        assert "#pragma HLS" in result.code
        analytic = ComputeUnitModel(
            result.spec, result.accel, result.design.pes_per_cu
        ).frame_cycles()
        assert result.frame_cycles == pytest.approx(analytic, rel=0.15), name
