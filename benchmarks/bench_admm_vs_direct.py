"""ADMM-vs-direct training ablation (the E-RNN vs C-LSTM training claim).

Paper Sec. VIII-B2: "E-RNN achieves lower PER degradation than C-LSTM when
given the same block size (0.14% vs. 0.32% with block size of 8)" because
ADMM starts from the pretrained dense model instead of training the
circulant parametrization from scratch.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.ablations import admm_vs_direct


@pytest.mark.benchmark(group="ablation-admm")
def test_admm_beats_direct_training(benchmark, harness):
    result = benchmark.pedantic(
        admm_vs_direct,
        args=(harness,),
        kwargs={"layer_sizes": (48,), "block_size": 8},
        rounds=1,
        iterations=1,
    )
    emit("ablation_admm_vs_direct", result.describe())

    # The ordering the paper asserts, with one-token noise allowance.
    assert result.admm_degradation <= result.direct_degradation + 2.0
    # Neither flow may destroy the model outright.
    assert result.admm_per < result.baseline_per + 25.0
    assert result.direct_per < result.baseline_per + 25.0
