"""PE/CU cycle model (Figs. 10-12): stage breakdown at paper dimensions."""

import pytest

from benchmarks.conftest import emit
from repro.config import AccelSpec
from repro.experiments.table3 import gru_workload, lstm_workload
from repro.hw.accelerator import AcceleratorModel
from repro.hw.cu import ComputeUnitModel


def stage_breakdown():
    rows = []
    for name, spec in (("LSTM", lstm_workload(8)), ("GRU", gru_workload(8))):
        accel = AccelSpec("XCKU060")
        design = AcceleratorModel(spec, accel).build()
        cu = ComputeUnitModel(spec, accel, design.pes_per_cu)
        timing = cu.timing()
        rows.append((name, design, timing))
    return rows


@pytest.mark.benchmark(group="pe-cu")
def test_pe_cu_cycle_breakdown(benchmark):
    rows = benchmark(stage_breakdown)

    lines = ["CU cycle breakdown (KU060, block 8, per frame):"]
    for name, design, timing in rows:
        lines.append(
            f"  {name}: {design.pes_per_cu} PEs/CU | matvec "
            f"{timing.matvec_cycles:7.0f} | fft {timing.fft_cycles:5.0f} | "
            f"pointwise {timing.pointwise_cycles:4.0f} | overhead "
            f"{timing.overhead_cycles:3.0f} | total {timing.frame_cycles:7.0f} "
            f"cycles = {design.latency_us:5.1f} us"
        )
    emit("pe_cu_model", "\n".join(lines))

    for _, _, timing in rows:
        # The paper's premise: matrix-vector work dominates ("128x as that of
        # point-wise multiplication").
        assert timing.matvec_cycles > 10 * timing.pointwise_cycles
