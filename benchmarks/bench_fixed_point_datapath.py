"""Bit-accurate datapath ablation: the 12-bit choice at the numerical level.

Beyond quantizing stored weights (Sec. VII-D), the PE's arithmetic itself is
fixed point: quantized twiddle factors, fixed-point multiplies, and a
per-stage right-shift.  This bench runs the circulant product through the
bit-accurate datapath of :mod:`repro.hw.fft_fixed` and reports the relative
error per bit width — the mechanism behind the paper's "RNNs are very
sensitive to accumulation of imprecisions".
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core.circulant import circulant_matvec
from repro.hw.fft_fixed import fixed_point_circulant_matvec


def datapath_error_sweep(
    block_sizes=(8, 16), bits_list=(16, 12, 10, 8, 6), trials=20
):
    rng = np.random.default_rng(7)
    results: dict[tuple[int, int], float] = {}
    for block in block_sizes:
        for bits in bits_list:
            worst = 0.0
            for _ in range(trials):
                w = rng.uniform(-1, 1, block)
                x = rng.uniform(-1, 1, block)
                exact = circulant_matvec(w, x)
                measured = fixed_point_circulant_matvec(w, x, bits)
                scale = np.max(np.abs(exact)) + 1e-12
                worst = max(worst, float(np.max(np.abs(measured - exact)) / scale))
            results[(block, bits)] = worst
    return results


@pytest.mark.benchmark(group="fixed-point")
def test_fixed_point_datapath_errors(benchmark):
    results = benchmark.pedantic(
        datapath_error_sweep, rounds=1, iterations=1
    )
    lines = [
        "Bit-accurate FFT->mult->IFFT datapath: worst relative error",
        f"{'block':>6} | " + " | ".join(f"{b:>4d}b" for b in (16, 12, 10, 8, 6)),
    ]
    for block in (8, 16):
        row = " | ".join(
            f"{results[(block, bits)]:5.3f}" for bits in (16, 12, 10, 8, 6)
        )
        lines.append(f"{block:>6} | {row}")
    lines.append(
        "paper Sec. VII-D: 12-bit is 'a safe design' — here <1.5% datapath "
        "error; 6-bit collapses"
    )
    emit("fixed_point_datapath", "\n".join(lines))

    for block in (8, 16):
        assert results[(block, 12)] < 0.015, "12-bit must stay below ~1.5%"
        assert results[(block, 6)] > results[(block, 12)], "errors grow as bits shrink"
        assert results[(block, 16)] <= results[(block, 10)]
