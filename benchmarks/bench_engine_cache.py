"""Engine cache: cold-build vs cached-build latency for a Phase-I sweep.

Prices a 16-point design sweep (4 block sizes x 2 cells x 2 platforms —
the shape of a Phase-I exploration) twice through one
:class:`repro.api.Engine`: the first pass builds every HLS artifact cold,
the second pass must be all cache hits.  Records the per-pass latency and
the speedup; the acceptance bar for the cache being worth its complexity
is >= 5x on the repeat pass.

Timing goes through the shared :func:`repro.bench.time_callable` harness;
the samples also land in a ``BENCH_engine_cache_sweep.json`` artifact.
"""

import pytest

from benchmarks.conftest import OUTPUT_DIR, emit
from repro.api import Design, Engine
from repro.bench import BenchResult, time_callable, write_result


def sweep_designs() -> list[Design]:
    designs = []
    for platform in ("XCKU060", "ADM-PCIE-7V3"):
        for block in (8, 16, 32, 64):
            designs.append(
                Design.lstm(1024).blocks(block).peephole().project(512)
                .on(platform)
            )
            designs.append(Design.gru(1024).blocks(block).on(platform))
    return designs


def run_sweep(designs: list[Design], engine: Engine) -> None:
    for design in designs:
        priced = design.using(engine).price()
        assert priced.fps > 0
        result = design.using(engine).codegen()
        assert result.code


@pytest.mark.benchmark(group="engine_cache")
def test_engine_cache_speedup():
    designs = sweep_designs()
    assert len(designs) == 16

    engine = Engine(maxsize=64)
    cold_stats = time_callable(
        lambda: run_sweep(designs, engine), warmup=0, repeats=1
    )
    cold = cold_stats.median_s
    # price() misses the design cache; codegen() misses the hls cache but
    # finds its inner design build already cached (the uniform-stats path).
    assert (engine.stats().hits, engine.stats().misses) == (16, 32)

    hot_stats = time_callable(
        lambda: run_sweep(designs, engine), warmup=0, repeats=1
    )
    hot = hot_stats.median_s
    stats = engine.stats()
    speedup = cold / hot

    result = BenchResult(
        "engine_cache_sweep",
        notes="16-spec Phase-I sweep (price + codegen per spec)",
        metrics={"designs": len(designs), "speedup": round(speedup, 2),
                 "engine_stats": stats.describe()},
    )
    result.add_timing("cold_pass", cold_stats)
    result.add_timing("hot_pass", hot_stats)
    write_result(result, OUTPUT_DIR)

    lines = [
        "Engine cache: 16-spec Phase-I sweep (price + codegen per spec)",
        f"  cold pass: {cold * 1e3:8.1f} ms ({cold / 16 * 1e3:.2f} ms/spec)",
        f"  hot pass:  {hot * 1e3:8.1f} ms ({hot / 16 * 1e3:.3f} ms/spec)",
        f"  speedup:   {speedup:8.1f}x",
        f"  {stats.describe()}",
    ]
    emit("engine_cache", "\n".join(lines))

    assert stats.misses == 32  # 16 designs x (design + hls), built once
    assert stats.hits == 48    # hot pass all-hit + cold-pass codegen design hits
    assert speedup >= 5.0, f"cache speedup {speedup:.1f}x below the 5x bar"
