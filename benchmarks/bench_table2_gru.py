"""Table II: GRU block-size / layer-size exploration (trained rows)."""

import pytest

from benchmarks.conftest import emit
from repro.experiments.table1 import format_rows
from repro.experiments.table2 import run_table2


@pytest.mark.benchmark(group="table2")
def test_table2_gru_grid(benchmark, harness):
    rows = benchmark.pedantic(
        run_table2, args=(harness,), rounds=1, iterations=1
    )
    emit("table2_gru", format_rows(rows, "Table II: GRU models (scaled /16)"))

    by_id = {row.row_id: row for row in rows}
    noise = 6.0  # see bench_table1_lstm for the noise-band rationale

    # Smaller blocks cost less than bigger blocks at matched layer size
    # (paper rows 5 vs 8 and 10 vs 13: +0.04 < +0.44, +0.01 < +0.18).
    assert by_id[5].degradation <= by_id[8].degradation + noise
    assert by_id[10].degradation <= by_id[13].degradation + noise

    # Every compressed model remains usable (no training collapse).
    for row in rows:
        assert row.per < 95.0, row

    # Bigger baselines are not worse (paper: 20.72 > 20.51 > 20.02).  The
    # 64-unit GRU is mildly undertrained at the shared epoch budget, so the
    # 64^2-vs-32^2 comparison gets the noise-band slack.
    assert by_id[9].per <= by_id[4].per + noise
    assert by_id[4].per <= by_id[1].per + 1.0

    # GRU tracks LSTM accuracy at matched configs (paper: 20.02 vs 20.01) —
    # the Phase-I LSTM->GRU switch is accuracy-neutral.
    from repro.experiments.table1 import run_table1

    lstm_rows = {r.row_id: r for r in run_table1(harness)}  # cached
    assert abs(by_id[9].per - lstm_rows[9].per) < 3 * noise
