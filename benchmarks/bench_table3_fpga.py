"""Table III: the headline FPGA comparison — ESE vs C-LSTM vs E-RNN.

All ten configurations at the paper's exact dimensions run through the
hardware models; the bench prints the full table plus paper-vs-model ratio
lines, and asserts the orderings the paper's Sec. VIII-B narrates.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.table3 import PAPER_TABLE3, format_comparison, run_table3


@pytest.mark.benchmark(group="table3")
def test_table3_fpga_comparison(benchmark):
    reports = benchmark(run_table3)
    emit("table3_fpga", format_comparison(reports))

    by_label = {r.label: r for r in reports}
    ese = by_label["ESE"]

    # ESE reproduces its published operating point.
    assert ese.latency_us == pytest.approx(57.0, rel=0.05)
    assert ese.fps == pytest.approx(17_544, rel=0.05)

    # Comparison (i): E-RNN FFT8 vs ESE — paper: 13.2x perf, 23.4x energy.
    fft8 = by_label["E-RNN FFT8 (KU060)"]
    assert 8.0 <= fft8.fps / ese.fps <= 18.0
    eff_ratio = (
        by_label["E-RNN FFT8 (7V3)"].energy_efficiency / ese.energy_efficiency
    )
    assert 15.0 <= eff_ratio <= 35.0

    # Comparison (ii): FFT16 vs ESE — paper: 24.5x perf.
    fft16 = by_label["E-RNN FFT16 (KU060)"]
    assert 15.0 <= fft16.fps / ese.fps <= 35.0

    # Comparison (iii): E-RNN vs C-LSTM at block 8 — paper: 1.33x perf.
    clstm = by_label["C-LSTM FFT8 (7V3)"]
    ernn_7v3 = by_label["E-RNN FFT8 (7V3)"]
    assert 1.1 <= ernn_7v3.fps / clstm.fps <= 1.9

    # Comparison (iv): GRU is the best configuration — paper: 37.4x energy.
    gru16 = by_label["E-RNN GRU FFT16 (7V3)"]
    assert gru16.fps == max(
        r.fps for r in reports if "7V3" in r.label
    ), "GRU FFT16 must be the fastest 7V3 design"
    assert gru16.energy_efficiency / ese.energy_efficiency > 25.0

    # Latencies stay within 30% of every published number.
    for label, paper in PAPER_TABLE3.items():
        if label.endswith("*") or label not in by_label:
            continue
        model = by_label[label]
        assert model.latency_us == pytest.approx(paper.latency_us, rel=0.30), label
