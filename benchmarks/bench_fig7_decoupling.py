"""Fig. 7 + Sec. V-A ablation: computation-reduction techniques toggled off.

FFT-IFFT decoupling cuts FFT counts p·q -> q and IFFT counts p·q -> p;
real-FFT symmetry halves the element-wise products; trivial twiddles empty
the first two butterfly stages.  The bench prices a 1024x1024 layer at block
8 under each ablation.
"""

import pytest

from benchmarks.conftest import emit
from repro.core.cost_model import decoupling_counts
from repro.experiments.ablations import decoupling_ablation


@pytest.mark.benchmark(group="fig7")
def test_fig7_reduction_techniques(benchmark):
    variants = benchmark(decoupling_ablation, 1024, 8)

    full = variants["all techniques"]
    lines = ["Sec. V computation-reduction ablation (1024x1024 layer, block 8):"]
    for name, value in variants.items():
        lines.append(f"  {name:28s} {value:12,.0f} real mults ({value / full:4.2f}x)")
    p = q = 1024 // 8
    lines.append(
        f"Fig. 7 decoupling: FFTs {p * q:,} -> {decoupling_counts(p, q)[0]:,}, "
        f"IFFTs {p * q:,} -> {decoupling_counts(p, q)[1]:,}"
    )
    emit("fig7_decoupling", "\n".join(lines))

    assert variants["no FFT-IFFT decoupling"] > full
    assert variants["no real-FFT symmetry"] > 1.5 * full
    assert variants["no trivial-twiddle savings"] >= full
    assert variants["dense (block 1)"] > 4 * full
