"""Shared fixtures: deterministic RNG and a session-scoped micro pipeline.

The micro corpus/model fixtures are session-scoped because several test
modules need *a* trained model and training even a tiny one costs a second
or two; tests must not mutate them (copies are cheap via state_dict).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.asr.features import FeatureConfig, FeatureExtractor
from repro.asr.phones import PhoneSet
from repro.asr.pipeline import TrainConfig, prepare_dataset, train_model
from repro.asr.timit import CorpusConfig, SyntheticTIMIT
from repro.config import RNNSpec
from repro.nn.rnn import StackedRNNClassifier


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the tests/golden/*.json fixtures from current outputs "
        "instead of comparing against them",
    )


@pytest.fixture
def update_golden(request: pytest.FixtureRequest) -> bool:
    return bool(request.config.getoption("--update-golden"))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def micro_phones() -> PhoneSet:
    return PhoneSet.folded().subset(8)


@pytest.fixture(scope="session")
def micro_corpus(micro_phones) -> SyntheticTIMIT:
    return SyntheticTIMIT(
        CorpusConfig(
            phone_set=micro_phones,
            num_speakers=4,
            utterances_per_speaker=4,
            test_speakers=1,
            sample_rate=8000,
            phones_per_utterance=(3, 5),
            seed=11,
        )
    )


@pytest.fixture(scope="session")
def micro_extractor(micro_corpus) -> FeatureExtractor:
    extractor = FeatureExtractor(
        FeatureConfig(sample_rate=8000, num_filters=8, add_deltas=False)
    )
    extractor.fit_normalizer(micro_corpus.train)
    return extractor


@pytest.fixture(scope="session")
def micro_datasets(micro_corpus, micro_extractor, micro_phones):
    train = prepare_dataset(micro_corpus.train, micro_extractor, micro_phones)
    test = prepare_dataset(micro_corpus.test, micro_extractor, micro_phones)
    return train, test


@pytest.fixture(scope="session")
def micro_spec(micro_datasets) -> RNNSpec:
    train, _ = micro_datasets
    return RNNSpec("lstm", train.feature_dim, (16,), len(train.phone_set))


@pytest.fixture(scope="session")
def trained_dense(micro_spec, micro_datasets) -> StackedRNNClassifier:
    """A briefly-trained dense LSTM shared by compression/quantization tests."""
    train, _ = micro_datasets
    model = StackedRNNClassifier(micro_spec, rng=np.random.default_rng(5))
    train_model(
        model,
        train,
        TrainConfig(epochs=4, batch_size=4, learning_rate=5e-3, seed=5),
    )
    return model
