"""CLI smoke tests: every subcommand through main() with captured output."""

import pytest

from repro.cli import main


class TestFitCheck:
    def test_block8_fits(self, capsys):
        code = main([
            "fit-check", "--layers", "1024", "1024", "--block", "8",
            "--projection", "512", "--peephole",
        ])
        assert code == 0
        assert "FITS" in capsys.readouterr().out

    def test_dense_does_not_fit(self, capsys):
        code = main([
            "fit-check", "--layers", "1024", "1024",
            "--projection", "512", "--peephole",
        ])
        assert code == 1
        assert "DOES NOT FIT" in capsys.readouterr().out


class TestBounds:
    def test_paper_bounds(self, capsys):
        code = main([
            "bounds", "--layers", "1024", "1024", "--projection", "512",
            "--peephole",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "lower bound" in out and "upper bound" in out


class TestPrice:
    def test_lstm_fft8(self, capsys):
        code = main([
            "price", "--layers", "1024", "--block", "8",
            "--projection", "512", "--peephole",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "FPS" in out and "PEs" in out

    def test_error_reported_for_dense(self, capsys):
        code = main(["price", "--layers", "1024"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestCodegen:
    def test_writes_file(self, tmp_path, capsys):
        output = tmp_path / "cu.c"
        code = main([
            "codegen", "--cell", "gru", "--layers", "1024", "--block", "16",
            "-o", str(output),
        ])
        assert code == 0
        source = output.read_text()
        assert "#pragma HLS" in source
        assert source.count("{") == source.count("}")


class TestReportCommands:
    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "ESE" in out and "Headline ratios" in out

    def test_fig8(self, capsys):
        assert main(["fig8"]) == 0
        assert "converges" in capsys.readouterr().out


class TestBench:
    def test_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "emulator_forward" in out and "fft_matvec" in out

    def test_quick_suite_writes_artifact(self, capsys, tmp_path):
        code = main([
            "bench", "--quick", "--only", "quantize_state",
            "--out-dir", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        artifact = tmp_path / "BENCH_quantize_state.json"
        assert artifact.exists()
        import json

        assert json.loads(artifact.read_text())["quick"] is True

    def test_no_json_skips_artifact(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--quick", "--only", "quantize_state",
                     "--no-json"]) == 0
        assert not list(tmp_path.glob("BENCH_*.json"))

    def test_unknown_suite_is_an_error(self, capsys):
        assert main(["bench", "--only", "nope"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err


class TestServe:
    SPEC_ARGS = ["serve", "--layers", "32", "--block", "4",
                 "--sessions", "2", "--frames", "6"]

    def test_selftest_ok_exits_zero(self, capsys):
        assert main(self.SPEC_ARGS + ["--selftest"]) == 0
        assert "selftest ok" in capsys.readouterr().out

    def test_conformance_failure_exits_one_with_actionable_stderr(
        self, capsys, monkeypatch
    ):
        """Regression (PR 5): a conformance violation used to surface as
        the generic `error:` handler (exit 2); a serving-blocker must
        exit 1 with a SELFTEST FAILED line that says what to do."""
        import repro.runtime
        from repro.runtime import ConformanceError

        def broken(executor, inputs, rows=None):
            raise ConformanceError(
                "step_rows() row 0 differs from a standalone batch-1 step"
            )

        monkeypatch.setattr(repro.runtime, "check_conformance", broken)
        code = main(self.SPEC_ARGS + ["--selftest"])
        err = capsys.readouterr().err
        assert code == 1
        assert "SELFTEST FAILED" in err
        assert "conformance contract" in err
        assert "repro serve --selftest" in err  # the actionable re-run hint

    def test_net_serve_selftest_round_trip(self, capsys):
        """The wire path: ephemeral port, 2 workers, byte-identity."""
        code = main(self.SPEC_ARGS + [
            "--selftest", "--port", "0", "--workers", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "serving on 127.0.0.1:" in out
        assert "selftest ok" in out and "byte-identical" in out
        assert "worker 0:" in out and "worker 1:" in out

    def test_net_conformance_failure_also_exits_one(
        self, capsys, monkeypatch
    ):
        import repro.runtime
        from repro.runtime import ConformanceError

        monkeypatch.setattr(
            repro.runtime, "check_conformance",
            lambda *a, **k: (_ for _ in ()).throw(
                ConformanceError("broken backend")
            ),
        )
        code = main(self.SPEC_ARGS + [
            "--selftest", "--port", "0", "--workers", "1",
        ])
        assert code == 1
        assert "SELFTEST FAILED" in capsys.readouterr().err


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
