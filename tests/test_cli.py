"""CLI smoke tests: every subcommand through main() with captured output."""

import pytest

from repro.cli import main


class TestFitCheck:
    def test_block8_fits(self, capsys):
        code = main([
            "fit-check", "--layers", "1024", "1024", "--block", "8",
            "--projection", "512", "--peephole",
        ])
        assert code == 0
        assert "FITS" in capsys.readouterr().out

    def test_dense_does_not_fit(self, capsys):
        code = main([
            "fit-check", "--layers", "1024", "1024",
            "--projection", "512", "--peephole",
        ])
        assert code == 1
        assert "DOES NOT FIT" in capsys.readouterr().out


class TestBounds:
    def test_paper_bounds(self, capsys):
        code = main([
            "bounds", "--layers", "1024", "1024", "--projection", "512",
            "--peephole",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "lower bound" in out and "upper bound" in out


class TestPrice:
    def test_lstm_fft8(self, capsys):
        code = main([
            "price", "--layers", "1024", "--block", "8",
            "--projection", "512", "--peephole",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "FPS" in out and "PEs" in out

    def test_error_reported_for_dense(self, capsys):
        code = main(["price", "--layers", "1024"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestCodegen:
    def test_writes_file(self, tmp_path, capsys):
        output = tmp_path / "cu.c"
        code = main([
            "codegen", "--cell", "gru", "--layers", "1024", "--block", "16",
            "-o", str(output),
        ])
        assert code == 0
        source = output.read_text()
        assert "#pragma HLS" in source
        assert source.count("{") == source.count("}")


class TestReportCommands:
    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "ESE" in out and "Headline ratios" in out

    def test_fig8(self, capsys):
        assert main(["fig8"]) == 0
        assert "converges" in capsys.readouterr().out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
