"""Golden regression suite: facade outputs pinned for canonical designs.

Six canonical TIMIT design points (the paper's Table I/II/III shapes on
each registered platform) have their ``fit_check``/``bounds``/``price``
outputs checked into ``tests/golden/*.json``.  Any facade or model refactor
that drifts a number — a latency, a PE count, a storage bit — fails here
with the exact path that moved.

When a change is *intentional*, regenerate the fixtures and review the diff
like any other code change::

    PYTHONPATH=src python -m pytest tests/golden --update-golden
"""

import json
from pathlib import Path

import pytest

from repro.api import Design, Engine
from repro.api.diskcache import encode_accelerator_design

GOLDEN_DIR = Path(__file__).resolve().parent

#: name -> fluent design (platform applied per parametrization below).
CANONICAL_DESIGNS = {
    "timit-lstm-large": Design.lstm(1024, 1024).blocks(8).peephole().project(512),
    "timit-lstm-small": Design.lstm(512, 512).blocks(16),
    "timit-gru": Design.gru(1024).blocks(16),
}

PLATFORMS = ("ADM-PCIE-7V3", "XCKU060")

CASES = [
    (f"{name}--{platform.lower()}", design.on(platform))
    for name, design in CANONICAL_DESIGNS.items()
    for platform in PLATFORMS
]


def _snapshot(design: Design) -> dict:
    """Everything the facade computes for one design, JSON-stable."""
    priced = design.using(Engine()).price()
    return {
        "describe": design.describe(),
        "fit": design.fit_check().to_json(),
        "bounds": design.bounds().to_json(),
        "price": {
            "design": encode_accelerator_design(priced),
            "derived": {
                "frame_cycles": priced.frame_cycles,
                "latency_us": priced.latency_us,
                "fps": priced.fps,
                "power_watts": priced.power_watts,
                "energy_efficiency": priced.energy_efficiency,
                "utilization": priced.utilization,
            },
        },
    }


def _assert_matches(actual, expected, path: str = "$") -> None:
    """Recursive compare: exact for ints/strings, tight approx for floats."""
    if isinstance(expected, float) and isinstance(actual, (int, float)):
        assert actual == pytest.approx(expected, rel=1e-12, abs=1e-15), (
            f"golden drift at {path}: {actual!r} != {expected!r}"
        )
    elif isinstance(expected, dict):
        assert isinstance(actual, dict), f"type drift at {path}"
        assert sorted(actual) == sorted(expected), (
            f"key drift at {path}: {sorted(actual)} != {sorted(expected)}"
        )
        for key in expected:
            _assert_matches(actual[key], expected[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert isinstance(actual, list) and len(actual) == len(expected), (
            f"length drift at {path}"
        )
        for i, (a, e) in enumerate(zip(actual, expected)):
            _assert_matches(a, e, f"{path}[{i}]")
    else:
        assert actual == expected, (
            f"golden drift at {path}: {actual!r} != {expected!r}"
        )


@pytest.mark.parametrize(
    "case_name,design", CASES, ids=[name for name, _ in CASES]
)
class TestGoldenDesigns:
    def test_snapshot_matches_fixture(self, case_name, design, update_golden):
        fixture = GOLDEN_DIR / f"{case_name}.json"
        snapshot = json.loads(json.dumps(_snapshot(design)))  # JSON-normalize
        if update_golden:
            fixture.write_text(json.dumps(snapshot, indent=1, sort_keys=True) + "\n")
            pytest.skip(f"rewrote {fixture.name}")
        assert fixture.exists(), (
            f"missing golden fixture {fixture.name}; run pytest tests/golden "
            f"--update-golden and commit the result"
        )
        expected = json.loads(fixture.read_text())
        _assert_matches(snapshot, expected)

    def test_fixture_is_committed_and_well_formed(self, case_name, design):
        fixture = GOLDEN_DIR / f"{case_name}.json"
        payload = json.loads(fixture.read_text())
        assert set(payload) == {"describe", "fit", "bounds", "price"}
        assert payload["fit"]["platform"] == design.platform
        assert payload["price"]["derived"]["fps"] > 0


class TestGoldenHygiene:
    def test_no_orphan_fixtures(self):
        """Every checked-in fixture corresponds to a canonical case."""
        expected = {f"{name}.json" for name, _ in CASES}
        actual = {p.name for p in GOLDEN_DIR.glob("*.json")}
        assert actual == expected

    def test_fixtures_round_trip_byte_stable(self):
        """Rewriting a fixture's JSON with the same dump settings is a no-op
        (so --update-golden diffs only show real numeric drift)."""
        for fixture in GOLDEN_DIR.glob("*.json"):
            payload = json.loads(fixture.read_text())
            assert (
                json.dumps(payload, indent=1, sort_keys=True) + "\n"
                == fixture.read_text()
            )
