"""End-to-end integration: the whole paper pipeline on a micro corpus.

Corpus -> features -> dense training -> ADMM compression -> quantization +
PWL activations -> hardware sizing -> Phase I/II — every subsystem touching
every other, at a scale that finishes in seconds.
"""

import numpy as np
import pytest

from repro.asr.pipeline import TrainConfig, train_model
from repro.runtime import evaluate_per
from repro.config import AccelSpec, RNNSpec
from repro.core.admm import ADMMConfig
from repro.core.flow import ernn_compress
from repro.core.phase2 import PhaseIIConfig, PhaseIIOptimizer
from repro.hls.framework import HLSFramework
from repro.hw.accelerator import AcceleratorModel
from repro.hw.quantize import quantized_copy, quantized_dataset


@pytest.fixture(scope="module")
def compressed(trained_dense, micro_datasets):
    train, _ = micro_datasets
    target = trained_dense.spec.with_block_sizes((4,))
    result = ernn_compress(
        trained_dense,
        target,
        train,
        admm_config=ADMMConfig(rho=0.1, rho_growth=1.3),
        admm_train=TrainConfig(epochs=3, learning_rate=2e-3),
        retrain=TrainConfig(epochs=3, learning_rate=2e-3),
    )
    return result.model


class TestTrainCompressEvaluate:
    def test_compressed_model_is_usable(self, compressed, micro_datasets):
        _, test = micro_datasets
        per = evaluate_per(compressed, test)
        assert 0.0 <= per <= 150.0

    def test_compression_reduces_parameters(self, compressed, trained_dense):
        assert compressed.num_parameters() < trained_dense.num_parameters()

    def test_quantized_compressed_model(self, compressed, micro_datasets):
        _, test = micro_datasets
        hardware_model = quantized_copy(compressed, 12, pwl_segments=16)
        per = evaluate_per(hardware_model, quantized_dataset(test, 12))
        float_per = evaluate_per(compressed, test)
        assert abs(per - float_per) < 30.0  # one-token noise at micro scale


class TestHardwarePath:
    def test_accelerator_for_compressed_spec(self, compressed):
        design = AcceleratorModel(compressed.spec, AccelSpec("XCKU060")).build()
        assert design.latency_us > 0
        assert design.fps > 0

    def test_hls_flow_for_compressed_spec(self, compressed):
        result = HLSFramework(compressed.spec, AccelSpec("XCKU060")).build()
        assert result.code.count("{") == result.code.count("}")
        assert result.frame_cycles > 0

    def test_phase2_on_compressed_spec(self, compressed, micro_datasets):
        _, test = micro_datasets
        float_per = evaluate_per(compressed, test)

        def quant_eval(bits: int) -> float:
            model = quantized_copy(compressed, bits, pwl_segments=16)
            return evaluate_per(model, quantized_dataset(test, bits))

        result = PhaseIIOptimizer(
            compressed.spec,
            PhaseIIConfig(
                platform="XCKU060",
                candidate_bits=(16, 12),
                quantization_budget=30.0,  # micro-scale noise floor
            ),
            quant_eval=quant_eval,
            float_per=float_per,
        ).run()
        assert result.accel.weight_bits in (12, 16)
        assert result.report.fps > 0


class TestTrainingContinuesAfterConversion:
    def test_structured_fine_tuning_improves_or_holds(
        self, compressed, micro_datasets
    ):
        train, _ = micro_datasets
        history = train_model(
            compressed, train, TrainConfig(epochs=2, learning_rate=1e-3, seed=3)
        )
        assert history.losses[-1] <= history.losses[0] * 1.5


class TestCrossCellTypes:
    def test_gru_end_to_end(self, micro_datasets):
        train, test = micro_datasets
        spec = RNNSpec(
            "gru", train.feature_dim, (16,), len(train.phone_set)
        )
        from repro.nn.rnn import StackedRNNClassifier

        dense = StackedRNNClassifier(spec, rng=np.random.default_rng(6))
        train_model(dense, train, TrainConfig(epochs=3, seed=6))
        result = ernn_compress(
            dense,
            spec.with_block_sizes((4,)),
            train,
            admm_train=TrainConfig(epochs=2),
            retrain=TrainConfig(epochs=2),
        )
        per = evaluate_per(result.model, test)
        assert 0.0 <= per <= 150.0
        design = AcceleratorModel(result.model.spec, AccelSpec("XCKU060")).build()
        assert design.fps > 0
