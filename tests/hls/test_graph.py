"""Operation-graph generator: structure, DAG-ness, op inventory."""

import networkx as nx
import pytest

from repro.config import RNNSpec
from repro.errors import ConfigError
from repro.hls.graph import build_operation_graph, matvec_nodes, validate_graph


def lstm_spec(**kwargs):
    defaults = dict(peephole=True, projection_size=512)
    defaults.update(kwargs)
    return RNNSpec("lstm", 153, (1024,), 39, block_sizes=(8,), **defaults)


def gru_spec():
    return RNNSpec("gru", 153, (1024,), 39, block_sizes=(8,))


class TestLSTMGraph:
    def test_is_dag(self):
        graph = build_operation_graph(lstm_spec())
        assert nx.is_directed_acyclic_graph(graph)

    def test_matvec_inventory_with_projection(self):
        graph = build_operation_graph(lstm_spec())
        assert sorted(matvec_nodes(graph)) == [
            "l0.matvec_wr", "l0.matvec_wx", "l0.matvec_wym",
        ]

    def test_no_projection_drops_wym(self):
        graph = build_operation_graph(lstm_spec(projection_size=None))
        assert "l0.matvec_wym" not in graph

    def test_peephole_nodes_present(self):
        graph = build_operation_graph(lstm_spec())
        assert "l0.peep_ic" in graph and "l0.peep_oc" in graph

    def test_no_peephole_drops_nodes(self):
        graph = build_operation_graph(lstm_spec(peephole=False))
        assert "l0.peep_ic" not in graph

    def test_feedback_edges_removed(self):
        """y_prev/c_prev are sources: the recurrence is cut (paper Fig. 13)."""
        graph = build_operation_graph(lstm_spec())
        assert graph.in_degree("l0.y_prev") == 0
        assert graph.in_degree("l0.c_prev") == 0
        assert graph.out_degree("l0.y_out") == 0
        assert graph.out_degree("l0.c_out") == 0

    def test_activation_counts(self):
        graph = build_operation_graph(lstm_spec())
        sigmoids = [n for n, d in graph.nodes(data=True) if d["op"] == "sigmoid"]
        tanhs = [n for n, d in graph.nodes(data=True) if d["op"] == "tanh"]
        assert len(sigmoids) == 3  # i, f, o gates
        assert len(tanhs) == 2  # candidate g and h(c)

    def test_multi_layer_chains_io(self):
        spec = RNNSpec(
            "lstm", 153, (1024, 1024), 39, block_sizes=(8, 8),
            projection_size=512,
        )
        graph = build_operation_graph(spec)
        # Layer 1's input matvec must depend (transitively) on layer 0 output.
        assert nx.has_path(graph, "l0.matvec_wym", "l1.matvec_wx")


class TestGRUGraph:
    def test_matvec_inventory(self):
        graph = build_operation_graph(gru_spec())
        assert sorted(matvec_nodes(graph)) == [
            "l0.matvec_wcc", "l0.matvec_wcx",
            "l0.matvec_wzr_c", "l0.matvec_wzr_x",
        ]

    def test_wcc_depends_on_reset_gate(self):
        """Eqn. (2c): W_c̃c multiplies r_t ⊙ c_{t-1}."""
        graph = build_operation_graph(gru_spec())
        assert nx.has_path(graph, "l0.sigmoid_r", "l0.matvec_wcc")

    def test_block_sizes_recorded(self):
        graph = build_operation_graph(gru_spec())
        assert graph.nodes["l0.matvec_wcc"]["params"]["block_size"] == 8


class TestValidation:
    def test_validate_rejects_cycles(self):
        graph = build_operation_graph(gru_spec())
        graph.add_edge("l0.c_out", "l0.c_prev")
        with pytest.raises(ConfigError):
            validate_graph(graph)

    def test_io_block_size_propagates(self):
        spec = lstm_spec().with_io_block_size(16)
        graph = build_operation_graph(spec)
        assert graph.nodes["l0.matvec_wx"]["params"]["block_size"] == 16
        assert graph.nodes["l0.matvec_wr"]["params"]["block_size"] == 8
