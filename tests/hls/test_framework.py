"""HLS framework end to end + cross-validation against the analytic CU model."""

import pytest

from repro.config import AccelSpec, RNNSpec
from repro.hls.framework import HLSFramework
from repro.hw.cu import GRU_TDM_SPEEDUP, ComputeUnitModel


def lstm_spec():
    return RNNSpec(
        "lstm", 153, (1024,), 39, block_sizes=(8,),
        peephole=True, projection_size=512,
    )


def gru_spec():
    return RNNSpec("gru", 153, (1024,), 39, block_sizes=(8,))


class TestBuild:
    def test_result_bundle_complete(self):
        result = HLSFramework(lstm_spec(), AccelSpec("XCKU060")).build()
        assert result.graph.number_of_nodes() > 10
        assert result.schedule.frame_cycles > 0
        assert len(result.code) > 1000
        assert result.design.num_pes > 0
        summary = result.summary()
        assert summary["latency_us"] == pytest.approx(result.latency_us)

    def test_scheduler_agrees_with_analytic_cu_lstm(self):
        """Fig. 13's perf model and the Sec. VII CU algebra price the same
        work — they must agree within 10%."""
        result = HLSFramework(lstm_spec(), AccelSpec("XCKU060")).build()
        analytic = ComputeUnitModel(
            lstm_spec(), AccelSpec("XCKU060"), result.design.pes_per_cu
        )
        ratio = result.frame_cycles / analytic.frame_cycles()
        assert 0.9 <= ratio <= 1.1

    def test_scheduler_agrees_with_analytic_cu_gru(self):
        result = HLSFramework(gru_spec(), AccelSpec("XCKU060")).build()
        analytic = ComputeUnitModel(
            gru_spec(), AccelSpec("XCKU060"), result.design.pes_per_cu
        )
        ratio = result.frame_cycles / analytic.frame_cycles()
        assert 0.85 <= ratio <= 1.15

    def test_gru_uses_tdm_efficiency(self):
        lstm = HLSFramework(lstm_spec(), AccelSpec("XCKU060")).build()
        gru = HLSFramework(gru_spec(), AccelSpec("XCKU060")).build()
        # Same PE budget; GRU has ~11% more block ops yet finishes sooner.
        assert gru.frame_cycles < lstm.frame_cycles
        assert GRU_TDM_SPEEDUP > 1.0

    def test_fft16_build_faster(self):
        fft8 = HLSFramework(lstm_spec(), AccelSpec("XCKU060")).build()
        spec16 = lstm_spec().with_block_sizes((16,))
        fft16 = HLSFramework(spec16, AccelSpec("XCKU060")).build()
        assert fft16.latency_us < fft8.latency_us
