"""Scheduler: stage assignment, precedence, cycle accounting; codegen checks."""

import pytest

from repro.config import AccelSpec, RNNSpec
from repro.errors import SchedulingError
from repro.hls.codegen import generate_code
from repro.hls.graph import build_operation_graph
from repro.hls.scheduler import schedule_graph
from repro.hls.templates import get_template, matvec_work, pointwise_work
from repro.errors import ConfigError


def lstm_spec():
    return RNNSpec(
        "lstm", 153, (1024,), 39, block_sizes=(8,),
        peephole=True, projection_size=512,
    )


def gru_spec():
    return RNNSpec("gru", 153, (1024,), 39, block_sizes=(8,))


@pytest.fixture(scope="module")
def lstm_schedule():
    graph = build_operation_graph(lstm_spec())
    return graph, schedule_graph(graph, AccelSpec("XCKU060"), pes_per_cu=39)


class TestTemplates:
    def test_known_templates(self):
        assert get_template("block_matvec").engine == "pe_array"
        assert get_template("sigmoid").engine == "pointwise"

    def test_unknown_template_rejected(self):
        with pytest.raises(ConfigError):
            get_template("conv2d")

    def test_matvec_work_counts_blocks(self):
        # 16x16 at block 4: 4x4 blocks x II 2 + p + q = 32 + 8.
        assert matvec_work(16, 16, 4, 12) == 40

    def test_matvec_work_rejects_dense(self):
        with pytest.raises(ConfigError):
            matvec_work(16, 16, 1, 12)

    def test_pointwise_work_scales_with_bits(self):
        assert pointwise_work(128, 16) > pointwise_work(128, 12)


class TestScheduler:
    def test_lstm_three_work_stages(self, lstm_schedule):
        """Fig. 11: W(ifco)(xr) | point-wise | W_ym."""
        _, schedule = lstm_schedule
        assert schedule.num_stages == 3

    def test_stage1_dominated_by_main_matvec(self, lstm_schedule):
        _, schedule = lstm_schedule
        stages = schedule.stage_cycles
        assert stages[1] > stages[2]
        assert stages[1] > stages[3]

    def test_matvecs_on_pe_array(self, lstm_schedule):
        _, schedule = lstm_schedule
        for op in schedule.ops:
            if op.op == "block_matvec":
                assert op.engine == "pe_array"
            elif op.op in ("sigmoid", "tanh", "pointwise_mul", "pointwise_add"):
                assert op.engine == "pointwise"

    def test_precedence_within_stage(self, lstm_schedule):
        """Same-stage consumers never start before their producers finish."""
        graph, schedule = lstm_schedule
        placed = {op.name: op for op in schedule.ops}
        for src, dst in graph.edges:
            if placed[src].stage == placed[dst].stage:
                assert placed[dst].start_cycle >= placed[src].end_cycle - 1e-9

    def test_engine_exclusivity(self, lstm_schedule):
        """Ops sharing an engine within a stage must not overlap."""
        _, schedule = lstm_schedule
        by_engine: dict = {}
        for op in schedule.ops:
            if op.engine == "none" or op.duration_cycles == 0:
                continue
            by_engine.setdefault((op.stage, op.engine), []).append(op)
        for ops in by_engine.values():
            ordered = sorted(ops, key=lambda o: o.start_cycle)
            for a, b in zip(ordered, ordered[1:]):
                assert b.start_cycle >= a.end_cycle - 1e-9

    def test_more_pes_shorter_frames(self):
        graph = build_operation_graph(lstm_spec())
        slow = schedule_graph(graph, AccelSpec("XCKU060"), 10)
        fast = schedule_graph(graph, AccelSpec("XCKU060"), 50)
        assert fast.frame_cycles < slow.frame_cycles

    def test_zero_pes_rejected(self):
        graph = build_operation_graph(lstm_spec())
        with pytest.raises(SchedulingError):
            schedule_graph(graph, AccelSpec("XCKU060"), 0)

    def test_gru_overhead_override(self):
        graph = build_operation_graph(gru_spec())
        default = schedule_graph(graph, AccelSpec("XCKU060"), 39)
        fused = schedule_graph(
            graph, AccelSpec("XCKU060"), 39, stage_overhead_count=2
        )
        assert fused.overhead_cycles < default.overhead_cycles


class TestCodegen:
    def test_code_structure(self, lstm_schedule):
        graph, schedule = lstm_schedule
        code = generate_code(lstm_spec(), AccelSpec("XCKU060"), graph, schedule)
        assert code.count("{") == code.count("}")
        assert "#pragma HLS" in code
        assert "rfft8" in code and "irfft8" in code
        assert "pwl_sigmoid" in code and "pwl_tanh" in code
        assert "ernn_cu_frame" in code
        assert "cgpipe_stage1" in code

    def test_weight_declarations_per_matrix(self, lstm_schedule):
        graph, schedule = lstm_schedule
        code = generate_code(lstm_spec(), AccelSpec("XCKU060"), graph, schedule)
        assert "W_l0_matvec_wx" in code
        assert "W_l0_matvec_wym" in code

    def test_bits_reflected_in_typedef(self, lstm_schedule):
        graph, schedule = lstm_schedule
        code16 = generate_code(
            lstm_spec(), AccelSpec("XCKU060", weight_bits=16, input_bits=16),
            graph, schedule,
        )
        assert "int16_t" in code16

    def test_mixed_block_sizes_emit_both_ffts(self):
        spec = lstm_spec().with_io_block_size(16)
        graph = build_operation_graph(spec)
        schedule = schedule_graph(graph, AccelSpec("XCKU060"), 39)
        code = generate_code(spec, AccelSpec("XCKU060"), graph, schedule)
        assert "rfft8" in code and "rfft16" in code
