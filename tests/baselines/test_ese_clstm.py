"""ESE and C-LSTM baseline models."""

import numpy as np
import pytest

from repro.baselines.clstm import build_clstm_model, clstm_accelerator
from repro.baselines.ese import ESEAcceleratorModel, ESEConfig, ese_prune_schedule
from repro.config import RNNSpec
from repro.errors import ConfigError


def dense_workload():
    return RNNSpec(
        "lstm", 153, (1024,), 39, peephole=True, projection_size=512
    )


class TestESEConfig:
    def test_sparsity(self):
        assert ESEConfig(prune_ratio=9.0).sparsity == pytest.approx(8 / 9)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ESEConfig(prune_ratio=0.5)
        with pytest.raises(ConfigError):
            ESEConfig(load_balance=0.0)

    def test_prune_schedule_monotone_to_target(self):
        schedule = ese_prune_schedule(8 / 9, stages=3)
        assert len(schedule) == 3
        assert all(a < b for a, b in zip(schedule, schedule[1:]))
        assert schedule[-1] == pytest.approx(8 / 9)

    def test_prune_schedule_validation(self):
        with pytest.raises(ConfigError):
            ese_prune_schedule(1.5)
        with pytest.raises(ConfigError):
            ese_prune_schedule(0.5, stages=0)


class TestESEAccelerator:
    def test_reproduces_published_numbers(self):
        """ESE's KU060 row: 57.0 us, 17,544 FPS, 41 W, 428 FPS/W."""
        design = ESEAcceleratorModel(dense_workload()).build()
        assert design.latency_us == pytest.approx(57.0, rel=0.05)
        assert design.fps == pytest.approx(17_544, rel=0.05)
        assert design.power_watts == pytest.approx(41.0, rel=0.05)
        assert design.energy_efficiency == pytest.approx(428, rel=0.05)

    def test_rejects_circulant_spec(self):
        with pytest.raises(ConfigError):
            ESEAcceleratorModel(dense_workload().with_block_sizes((8,)))

    def test_published_utilization_attached(self):
        design = ESEAcceleratorModel(dense_workload()).build()
        assert design.utilization["dsp"] == pytest.approx(0.545, abs=0.01)
        assert design.utilization["bram"] == pytest.approx(0.877, abs=0.01)

    def test_sequential_sequences(self):
        """ESE's FPS x latency ≈ 1 (one sequence at a time)."""
        design = ESEAcceleratorModel(dense_workload()).build()
        assert design.fps * design.latency_us * 1e-6 == pytest.approx(1.0)

    def test_more_channels_faster(self):
        slow = ESEAcceleratorModel(dense_workload(), ESEConfig(channels=16)).build()
        fast = ESEAcceleratorModel(dense_workload(), ESEConfig(channels=64)).build()
        assert fast.latency_us < slow.latency_us


class TestCLSTM:
    def test_build_structured_model(self, rng):
        spec = RNNSpec("lstm", 16, (16,), 5, block_sizes=(4,))
        model = build_clstm_model(spec, rng=rng)
        assert model.structured

    def test_rejects_dense_spec(self, rng):
        with pytest.raises(ConfigError):
            build_clstm_model(RNNSpec("lstm", 16, (16,), 5), rng=rng)

    def test_accelerator_uses_16_bits(self):
        design = clstm_accelerator(dense_workload().with_block_sizes((8,)))
        assert design.accel.weight_bits == 16

    def test_reproduces_published_latency(self):
        """C-LSTM FFT8 on the 7V3: paper 16.7 us, 179,687 FPS."""
        design = clstm_accelerator(dense_workload().with_block_sizes((8,)))
        assert design.latency_us == pytest.approx(16.7, rel=0.15)
        assert design.fps == pytest.approx(179_687, rel=0.15)

    def test_clstm_trains(self, micro_datasets):
        from repro.asr.pipeline import TrainConfig, train_model

        train, _ = micro_datasets
        spec = RNNSpec(
            "lstm", train.feature_dim, (16,), len(train.phone_set),
            block_sizes=(4,),
        )
        model = build_clstm_model(spec, rng=np.random.default_rng(0))
        history = train_model(model, train, TrainConfig(epochs=3, seed=1))
        assert history.losses[-1] < history.losses[0]
