"""Magnitude pruning and sparse-storage accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.pruning import (
    PruningManager,
    csr_storage_bits,
    magnitude_mask,
)
from repro.errors import ConfigError


class TestMagnitudeMask:
    def test_keeps_largest(self, rng):
        weights = np.array([0.1, -5.0, 0.01, 2.0])
        mask = magnitude_mask(weights, 0.5)
        assert mask.tolist() == [False, True, False, True]

    def test_zero_sparsity_keeps_all(self, rng):
        weights = rng.standard_normal(10)
        assert magnitude_mask(weights, 0.0).all()

    def test_sparsity_bounds(self, rng):
        with pytest.raises(ConfigError):
            magnitude_mask(rng.standard_normal(4), 1.0)
        with pytest.raises(ConfigError):
            magnitude_mask(rng.standard_normal(4), -0.1)

    @settings(max_examples=25, deadline=None)
    @given(sparsity=st.floats(0.0, 0.95), seed=st.integers(0, 1000))
    def test_property_achieved_sparsity_close(self, sparsity, seed):
        weights = np.random.default_rng(seed).standard_normal(400)
        mask = magnitude_mask(weights, sparsity)
        achieved = 1.0 - mask.mean()
        assert achieved <= sparsity + 0.05


class TestSparseStorage:
    def test_nine_x_pruning_gives_4_5_effective(self):
        """Table III footnote a: indices halve ESE's 9x to 4.5x."""
        weights = np.zeros((90, 10))
        weights[:10, :] = 1.0  # keep 1/9 of entries
        storage = csr_storage_bits(weights, weight_bits=12, index_bits=12)
        assert storage.effective_compression == pytest.approx(4.5)
        assert storage.density == pytest.approx(1 / 9)

    def test_smaller_indices_help(self):
        weights = np.zeros((90, 10))
        weights[:10, :] = 1.0
        storage = csr_storage_bits(weights, weight_bits=12, index_bits=4)
        assert storage.effective_compression > 4.5


class TestPruningManager:
    def _model(self, rng):
        from repro.nn.linear import Linear
        from repro.nn.module import Module, Parameter

        class Net(Module):
            def __init__(self):
                super().__init__()
                self.fc1 = Linear(16, 16, rng=rng)
                self.fc2 = Linear(16, 8, rng=rng)
                self.bias_vector = Parameter(np.ones(8))

        return Net()

    def test_for_model_skips_vectors(self, rng):
        manager = PruningManager.for_model(self._model(rng))
        names = set(manager._masks)
        assert "bias_vector" not in names
        assert "fc1.weight" in names and "fc2.weight" in names

    def test_prune_to_zeroes_small_weights(self, rng):
        model = self._model(rng)
        manager = PruningManager.for_model(model)
        manager.prune_to(0.75)
        assert manager.density() == pytest.approx(0.25, abs=0.05)
        assert np.count_nonzero(model.fc1.weight.data) <= 0.3 * 256

    def test_apply_keeps_pruned_zero_after_update(self, rng):
        model = self._model(rng)
        manager = PruningManager.for_model(model)
        manager.prune_to(0.5)
        mask = manager.mask("fc1.weight").copy()
        model.fc1.weight.data += 1.0  # simulated optimizer step
        manager.apply()
        assert np.all(model.fc1.weight.data[~mask] == 0.0)

    def test_storage_aggregates(self, rng):
        manager = PruningManager.for_model(self._model(rng))
        manager.prune_to(0.5)
        storage = manager.storage()
        assert storage.dense_params == 16 * 16 + 16 * 8
        assert storage.nnz == manager.nnz()

    def test_requires_parameters(self):
        with pytest.raises(ConfigError):
            PruningManager([])
