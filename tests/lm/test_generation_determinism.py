"""Seeded generation is byte-identical everywhere it can run.

The satellite determinism properties of the RNNLM workload, end to end
against real processes and sockets:

* **serial re-runs** — the same compiled model + prompt + sampling knobs
  + seed yield the same tokens on every fresh session;
* **spawn-context process boundaries** — generation and scoring served
  by a :class:`NetServer` (spawn-context worker processes) match the
  in-process session byte for byte, as does an artifact saved to disk
  and reloaded; ``evaluate_perplexity(transport="net")`` is pinned
  ``==`` in-process for both backends;
* **float vs fixed backends** — greedy decoding agrees between backends
  exactly as far as their per-step argmax agrees (quantization may
  legitimately reorder logits; sampling may not add divergence of its
  own);
* **gateway SIGKILL failover** — killing the backend that owns a
  generation session mid-conversation replays the journal onto the
  survivor and the continued generation + scoring stay byte-identical
  to an uninterrupted in-process session.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.lm import CharVocab, DEMO_TEXT, build_char_lm
from repro.runtime import (
    CompiledModel,
    Session,
    compile,
    evaluate_perplexity,
)
from repro.runtime.cluster import BackendFleet, Gateway
from repro.runtime.net import Client, NetServer

VOCAB = CharVocab.from_text(DEMO_TEXT)
TOKENS = VOCAB.encode(DEMO_TEXT)
PROMPT = TOKENS[:5].tolist()
TIMEOUT = 30.0
SEEDS = (0, 1, 7, 101)


def _char_lm(backend: str, weight_bits: int | None = None) -> CompiledModel:
    model = build_char_lm(
        VOCAB.size, layer_sizes=(16,), cell_type="gru",
        block_sizes=(4,), seed=3,
    )
    return compile(model, backend=backend, weight_bits=weight_bits,
                   workload="lm", vocab=VOCAB, cache=False)


@pytest.fixture(scope="module")
def float_lm():
    return _char_lm("float")


@pytest.fixture(scope="module")
def fixed_lm():
    return _char_lm("fixed")


class TestSerialReruns:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fresh_sessions_reproduce_generation(self, float_lm, seed):
        first = Session(float_lm).generate(
            PROMPT, steps=24, temperature=0.8, top_k=5, seed=seed
        )
        second = Session(float_lm).generate(
            PROMPT, steps=24, temperature=0.8, top_k=5, seed=seed
        )
        assert first == second
        assert len(first) == 24
        assert all(0 <= t < VOCAB.size for t in first)

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_fixed_backend_reproduces_generation(self, fixed_lm, seed):
        first = Session(fixed_lm).generate(
            PROMPT, steps=24, temperature=0.8, top_k=5, seed=seed
        )
        second = Session(fixed_lm).generate(
            PROMPT, steps=24, temperature=0.8, top_k=5, seed=seed
        )
        assert first == second

    def test_different_seeds_are_allowed_to_differ(self, float_lm):
        streams = {
            tuple(Session(float_lm).generate(
                PROMPT, steps=32, temperature=1.2, top_k=0, seed=seed))
            for seed in range(8)
        }
        # Not a hard guarantee per seed pair, but 8 identical 32-token
        # streams at temperature 1.2 would mean the seed is ignored.
        assert len(streams) > 1

    def test_score_reruns_are_byte_identical(self, float_lm):
        first = Session(float_lm).score(TOKENS[:40])
        second = Session(float_lm).score(TOKENS[:40])
        assert first.tobytes() == second.tobytes()
        assert first.shape == (39,) and first.dtype == np.float64


class TestSpawnProcessBoundary:
    """NetServer workers are spawn-context processes: the same seed must
    produce the same bytes on the far side of that boundary."""

    @pytest.mark.parametrize("backend", ["float", "fixed"])
    def test_generation_over_the_wire_matches_in_process(
        self, float_lm, fixed_lm, backend
    ):
        compiled = float_lm if backend == "float" else fixed_lm
        expected = [
            Session(compiled).generate(
                PROMPT, steps=20, temperature=0.8, top_k=5, seed=seed
            )
            for seed in SEEDS
        ]
        with NetServer(compiled, workers=2) as server:
            client = Client(*server.address, timeout=TIMEOUT)
            try:
                for seed, want in zip(SEEDS, expected):
                    got = client.session(f"gen-{backend}-{seed}").generate(
                        PROMPT, steps=20, temperature=0.8, top_k=5, seed=seed
                    )
                    assert got == want, f"seed {seed} diverged over the wire"
            finally:
                client.close()

    def test_score_over_the_wire_matches_in_process(self, float_lm):
        expected = Session(float_lm).score(TOKENS[:48])
        with NetServer(float_lm, workers=1) as server:
            client = Client(*server.address, timeout=TIMEOUT)
            try:
                got = client.session("score-wire").score(TOKENS[:48])
            finally:
                client.close()
        assert got.tobytes() == expected.tobytes()

    @pytest.mark.parametrize("backend", ["float", "fixed"])
    def test_perplexity_net_transport_pinned_equal(
        self, float_lm, fixed_lm, backend
    ):
        compiled = float_lm if backend == "float" else fixed_lm
        local = evaluate_perplexity(compiled, TOKENS, chunk_size=24)
        served = evaluate_perplexity(
            compiled, TOKENS, chunk_size=24, transport="net"
        )
        assert served == local

    def test_saved_artifact_reproduces_generation(self, fixed_lm, tmp_path):
        expected = Session(fixed_lm).generate(
            PROMPT, steps=24, temperature=0.8, top_k=5, seed=9
        )
        path = fixed_lm.save(tmp_path / "char-lm.npz")
        reloaded = CompiledModel.load(path)
        got = Session(reloaded).generate(
            PROMPT, steps=24, temperature=0.8, top_k=5, seed=9
        )
        assert got == expected


class TestFloatVsFixedBackends:
    """Where the backends' logits agree (in argmax), so must the tokens:
    sampling may never introduce divergence the numerics didn't."""

    @staticmethod
    def _greedy_decisions(compiled, path):
        """Per-step argmax while force-feeding ``path`` one-hot rows."""
        executor = compiled.executor()
        state = executor.initial_state(1)
        decisions = []
        for token in path[:-1]:
            row = np.zeros((1, executor.input_size), dtype=np.float64)
            row[0, int(token)] = 1.0
            logits, state = executor.step(row, state)
            decisions.append(int(np.argmax(logits[0])))
        return decisions

    def test_greedy_tokens_agree_while_argmax_agrees(self, float_lm):
        steps = 24
        fixed16 = _char_lm("fixed", weight_bits=16)
        float_tokens = Session(float_lm).generate(
            PROMPT, steps=steps, temperature=0.0, top_k=0, seed=0
        )
        path = PROMPT + float_tokens

        # Helper sanity: walking float's own path reproduces its tokens.
        float_decisions = self._greedy_decisions(float_lm, path)
        assert float_decisions[len(PROMPT) - 1:] == float_tokens

        # How far does the fixed backend's argmax agree along that path?
        fixed_decisions = self._greedy_decisions(fixed16, path)
        fixed_choices = fixed_decisions[len(PROMPT) - 1:]
        agree = 0
        while agree < steps and fixed_choices[agree] == float_tokens[agree]:
            agree += 1
        assert agree >= 8, (
            f"vacuous fixture: 16-bit fixed argmax diverged from float "
            f"after {agree} step(s); re-pin the model seed"
        )

        # The actual property: fixed generation equals float generation
        # for exactly as long as the logits' argmax agrees.
        fixed_tokens = Session(fixed16).generate(
            PROMPT, steps=steps, temperature=0.0, top_k=0, seed=0
        )
        assert fixed_tokens[:agree] == float_tokens[:agree]
        if agree < steps:
            assert fixed_tokens[agree] != float_tokens[agree]

    def test_greedy_seed_independence_each_backend(self, float_lm, fixed_lm):
        for compiled in (float_lm, fixed_lm):
            a = Session(compiled).generate(
                PROMPT, steps=16, temperature=0.0, top_k=0, seed=1
            )
            b = Session(compiled).generate(
                PROMPT, steps=16, temperature=0.0, top_k=0, seed=2
            )
            assert a == b  # greedy never touches the rng


class TestGatewaySigkillFailoverReplay:
    def test_generation_replays_byte_identical_across_kill(self, float_lm):
        """generate -> SIGKILL the owning backend -> score -> generate:
        the reattach journal replays the one-hot history onto the
        survivor, so the continuation matches an uninterrupted
        in-process session byte for byte."""
        reference = Session(float_lm)
        first = reference.generate(
            PROMPT, steps=16, temperature=0.8, top_k=5, seed=41
        )
        logprobs = reference.score(TOKENS[:24])
        second = reference.generate(
            [first[-1]], steps=16, temperature=0.8, top_k=5, seed=43
        )

        with BackendFleet(float_lm, count=2) as fleet:
            with Gateway(fleet.keys, probe_interval_s=0.2,
                         down_after=2) as gw:
                client = Client(*gw.address, timeout=60)
                try:
                    sess = client.session("lm-kill", reattach=True)
                    got_first = sess.generate(
                        PROMPT, steps=16, temperature=0.8, top_k=5, seed=41
                    )
                    assert got_first == first

                    owner = next(e["backend"] for e in client.sessions()
                                 if e["session"] == "lm-kill")
                    fleet.kill(fleet.keys.index(owner))

                    got_logprobs = sess.score(TOKENS[:24])
                    got_second = sess.generate(
                        [first[-1]], steps=16,
                        temperature=0.8, top_k=5, seed=43,
                    )
                    assert got_logprobs.tobytes() == logprobs.tobytes()
                    assert got_second == second, (
                        "generation diverged across the SIGKILL failover"
                    )

                    moved = next(e["backend"] for e in client.sessions()
                                 if e["session"] == "lm-kill")
                    assert moved != owner
                    assert "backend_down" in [e["event"] for e in gw.events]
                finally:
                    client.close()


class TestWorkloadGate:
    def test_asr_sessions_reject_token_ops(self):
        from repro.config import RNNSpec
        from repro.nn.rnn import StackedRNNClassifier

        spec = RNNSpec("gru", 10, (16,), 6, block_sizes=(4,))
        model = StackedRNNClassifier(
            spec, structured=True, rng=np.random.default_rng(0)
        )
        compiled = compile(model, backend="float", cache=False)
        with pytest.raises(ConfigError):
            Session(compiled).generate([1, 2], steps=4)
        with pytest.raises(ConfigError):
            Session(compiled).score([1, 2, 3])

    def test_lm_workload_requires_square_model(self):
        from repro.config import RNNSpec
        from repro.nn.rnn import StackedRNNClassifier

        spec = RNNSpec("gru", 10, (16,), 6, block_sizes=(4,))
        model = StackedRNNClassifier(
            spec, structured=True, rng=np.random.default_rng(0)
        )
        with pytest.raises(ConfigError):
            compile(model, backend="float", workload="lm", vocab=VOCAB,
                    cache=False)
