"""Exception hierarchy: everything derives from ReproError."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            if obj is not errors.ReproError:
                assert issubclass(obj, errors.ReproError), name


def test_block_size_error_is_config_error():
    assert issubclass(errors.BlockSizeError, errors.ConfigError)


def test_catchable_as_repro_error():
    with pytest.raises(errors.ReproError):
        raise errors.FitError("too big")
