"""Smoke tests for the tools/ maintenance scripts' CLI entry points."""

import importlib.util
import sys
from pathlib import Path
from types import SimpleNamespace

import pytest

REPO = Path(__file__).resolve().parents[2]


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        name, REPO / "tools" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


refresh = _load("refresh_ablation_sections")
update = _load("update_experiments_md")


EXPERIMENTS = """# Experiments

## Table I — LSTM

intro prose.

| ID | layers |
|---:|---|
| L0 | 1024 |

## Table II — GRU

intro prose.

| ID | layers |
|---:|---|
| G0 | 1024 |

## Ablation

```
[baseline] old line one
[trial] old line two
```

tail prose.
"""


@pytest.fixture()
def repo(tmp_path):
    out = tmp_path / "benchmarks" / "out"
    out.mkdir(parents=True)
    (out / "phase1_trials.txt").write_text(
        "header noise\n[baseline] per=20.40\n[trial 1] per=20.70\n"
    )
    (out / "ablation_admm_vs_direct.txt").write_text(
        "admm degr +0.12 vs direct +0.35\nmore detail\n"
    )
    (tmp_path / "EXPERIMENTS.md").write_text(EXPERIMENTS)
    return tmp_path


class TestRefreshAblationSections:
    def test_refreshes_the_code_block(self, repo, capsys):
        assert refresh.main(["--repo", str(repo)]) == 0
        text = (repo / "EXPERIMENTS.md").read_text()
        assert "[baseline] per=20.40" in text
        assert "old line one" not in text
        assert "header noise" not in text  # only [..] log lines are quoted
        out = capsys.readouterr().out
        assert "admm degr +0.12" in out

    def test_missing_experiments_md_exits_one(self, repo, capsys):
        (repo / "EXPERIMENTS.md").unlink()
        assert refresh.main(["--repo", str(repo)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_bench_output_exits_one(self, repo, capsys):
        (repo / "benchmarks" / "out" / "phase1_trials.txt").unlink()
        assert refresh.main(["--repo", str(repo)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_no_code_block_exits_one(self, repo, capsys):
        (repo / "EXPERIMENTS.md").write_text("# Experiments\n\nno block\n")
        assert refresh.main(["--repo", str(repo)]) == 1
        assert "code block" in capsys.readouterr().err


def _row(row_id="L0", per=20.4, degr=0.1):
    return SimpleNamespace(
        row_id=row_id,
        layer_sizes=(1024, 1024),
        block_sizes=(8, 8),
        per=per,
        degradation=degr,
        paper_per=20.7,
        paper_degradation=0.3,
    )


@pytest.fixture()
def stub_experiments(monkeypatch):
    """Replace the heavy experiment stack under the lazy imports."""
    monkeypatch.setattr(
        "repro.experiments.common.ExperimentHarness", lambda: object()
    )
    monkeypatch.setattr(
        "repro.experiments.table1.run_table1", lambda harness: [_row("L0")]
    )
    monkeypatch.setattr(
        "repro.experiments.table2.run_table2",
        lambda harness: [_row("G0", per=23.5)],
    )


class TestUpdateExperimentsMd:
    def test_markdown_rows_formats_dense_and_missing_degradation(self):
        row = _row()
        row.block_sizes = ()
        row.degradation = None
        table = update.markdown_rows([row])
        assert "| dense |" in table and "| - |" in table
        assert "| 20.40 |" in table

    def test_replace_table_raises_on_missing_heading(self):
        with pytest.raises(ValueError, match="Table IX"):
            update.replace_table("# nothing here\n", "Table IX", "| x |")

    def test_rewrites_both_tables(self, repo, stub_experiments, capsys):
        assert update.main(["--repo", str(repo)]) == 0
        text = (repo / "EXPERIMENTS.md").read_text()
        assert "| L0 | 1024-1024 | 8-8 | 20.40 | +0.10 | 20.70 | +0.30 |" in text
        assert "| G0 | 1024-1024 | 8-8 | 23.50 |" in text
        assert "## Ablation" in text  # the rest of the document survives
        assert "refreshed" in capsys.readouterr().out

    def test_missing_experiments_md_exits_one(
        self, repo, stub_experiments, capsys
    ):
        (repo / "EXPERIMENTS.md").unlink()
        assert update.main(["--repo", str(repo)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_heading_exits_one(self, repo, stub_experiments, capsys):
        (repo / "EXPERIMENTS.md").write_text("# Experiments\n\nno tables\n")
        assert update.main(["--repo", str(repo)]) == 1
        assert "error:" in capsys.readouterr().err
