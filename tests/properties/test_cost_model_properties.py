"""Property-based invariants for the Sec. V / Fig. 8 multiplication model.

Seeded ``random`` only (no extra dependencies): each test draws randomized
layer shapes and checks a structural property the paper asserts, rather
than a hand-picked value.  Seeds are parametrized so one run covers many
draws while every failure stays reproducible from the test id.
"""

import math
import random

import pytest

from repro.core.cost_model import (
    decoupling_counts,
    elementwise_real_mults,
    fig8_curve,
    layer_multiplications,
    normalized_multiplications,
    per_degradation_proxy,
    per_proxy,
    recommended_block_upper_bound,
)
from repro.config import RNNSpec
from repro.errors import BlockSizeError

SEEDS = range(8)


def _random_layer_size(rng: random.Random) -> int:
    """A power-of-two layer size in the paper's working range."""
    return 2 ** rng.randint(6, 11)  # 64 .. 2048


def _blocks_dividing(layer: int, upto: int = 256) -> list[int]:
    return [b for b in (2, 4, 8, 16, 32, 64, 128, 256) if b <= upto and layer % b == 0]


class TestMonotonicity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_total_mults_non_increasing_up_to_the_upper_bound(self, seed):
        """Sec. V-B: computation keeps improving until the convergence
        point Phase I uses as its upper bound."""
        rng = random.Random(seed)
        layer = _random_layer_size(rng)
        upper = recommended_block_upper_bound(layer)
        blocks = [b for b in _blocks_dividing(layer) if b <= upper]
        totals = [layer_multiplications(layer, layer, b).total for b in blocks]
        for smaller, larger in zip(totals, totals[1:]):
            assert larger <= smaller

    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_circulant_block_beats_dense(self, seed):
        rng = random.Random(seed)
        layer = _random_layer_size(rng)
        dense = float(layer * layer)
        for block in _blocks_dividing(layer):
            assert layer_multiplications(layer, layer, block).total < dense

    @pytest.mark.parametrize("seed", SEEDS)
    def test_block_two_is_exactly_half(self, seed):
        """Fig. 8's left edge: block size 2 always normalizes to 0.5."""
        rng = random.Random(seed)
        layer = _random_layer_size(rng)
        assert normalized_multiplications(layer, 2) == pytest.approx(0.5)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_rectangular_layers_follow_the_same_bound(self, seed):
        rng = random.Random(seed)
        rows = _random_layer_size(rng)
        cols = _random_layer_size(rng)
        for block in (2, 4, 8, 16):
            total = layer_multiplications(rows, cols, block).total
            assert 0 < total <= 0.5 * rows * cols


class TestDecoupling:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_counts_are_q_ffts_and_p_iffts(self, seed):
        rng = random.Random(seed)
        p, q = rng.randint(1, 128), rng.randint(1, 128)
        assert decoupling_counts(p, q) == (q, p)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_decoupling_scales_fft_counts_by_the_fig7_ratios(self, seed):
        """FFT work drops p-fold and IFFT work q-fold (Fig. 7)."""
        rng = random.Random(seed)
        layer = _random_layer_size(rng)
        block = rng.choice(_blocks_dividing(layer, upto=64))
        p = q = layer // block
        with_dec = layer_multiplications(layer, layer, block, decoupling=True)
        without = layer_multiplications(layer, layer, block, decoupling=False)
        assert with_dec.fft_mults * p == pytest.approx(without.fft_mults)
        assert with_dec.ifft_mults * q == pytest.approx(without.ifft_mults)
        assert with_dec.elementwise_mults == without.elementwise_mults
        assert with_dec.total <= without.total

    @pytest.mark.parametrize("seed", SEEDS)
    def test_breakdown_total_is_the_sum_of_parts(self, seed):
        rng = random.Random(seed)
        layer = _random_layer_size(rng)
        block = rng.choice(_blocks_dividing(layer))
        b = layer_multiplications(layer, layer, block)
        assert b.total == b.fft_mults + b.ifft_mults + b.elementwise_mults


class TestFig8Consistency:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_curve_matches_pointwise_normalization(self, seed):
        rng = random.Random(seed)
        layer = _random_layer_size(rng)
        blocks = tuple(
            sorted(rng.sample(_blocks_dividing(layer), k=3))
        )
        curve = fig8_curve(layer, blocks)
        assert set(curve) == set(blocks)
        for block, value in curve.items():
            assert value == pytest.approx(
                normalized_multiplications(layer, block)
            )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_upper_bound_is_a_feasible_candidate(self, seed):
        rng = random.Random(seed)
        layer = _random_layer_size(rng)
        upper = recommended_block_upper_bound(layer)
        assert layer % upper == 0
        assert upper in (2, 4, 8, 16, 32, 64, 128, 256)

    def test_paper_anchor_points(self):
        """The two bounds the paper derives: 32 at 512, 64 at 1024."""
        assert recommended_block_upper_bound(512) == 32
        assert recommended_block_upper_bound(1024) == 64


class TestElementwise:
    @pytest.mark.parametrize("block", [4, 8, 16, 32, 64, 128, 256])
    def test_hermitian_symmetry_formula(self, block):
        assert elementwise_real_mults(block) == 2 * block - 2
        assert elementwise_real_mults(block, real_symmetry=False) == 4 * block

    def test_degenerate_blocks(self):
        assert elementwise_real_mults(1) == 1.0
        assert elementwise_real_mults(2) == 2.0

    @pytest.mark.parametrize("bad", [3, 5, 6, 7, 12, 100])
    def test_non_power_of_two_rejected(self, bad):
        with pytest.raises(BlockSizeError):
            elementwise_real_mults(bad)

    def test_block_not_dividing_dims_rejected(self):
        with pytest.raises(BlockSizeError):
            layer_multiplications(100, 100, 8)


class TestPerProxy:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_monotone_in_block_size(self, seed):
        rng = random.Random(seed)
        bits = rng.randint(6, 16)
        values = [
            per_degradation_proxy((block,), bits)
            for block in (1, 2, 4, 8, 16, 32)
        ]
        for smaller, larger in zip(values, values[1:]):
            assert larger > smaller

    @pytest.mark.parametrize("seed", SEEDS)
    def test_monotone_in_quantization(self, seed):
        rng = random.Random(seed)
        block = 2 ** rng.randint(1, 6)
        values = [
            per_degradation_proxy((block,), bits) for bits in range(4, 17)
        ]
        for narrower, wider in zip(values, values[1:]):
            assert wider <= narrower

    def test_dense_at_twelve_bits_degrades_nothing(self):
        assert per_degradation_proxy(()) == 0.0
        assert per_degradation_proxy((1, 1)) == 0.0

    def test_bits_above_twelve_are_free(self):
        assert per_degradation_proxy((8,), 16) == per_degradation_proxy((8,), 12)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_spec_proxy_anchors_on_the_baseline(self, seed):
        rng = random.Random(seed)
        block = 2 ** rng.randint(1, 5)
        spec = RNNSpec("lstm", 153, (512,), 39, block_sizes=(block,))
        assert per_proxy(spec) == pytest.approx(
            20.01 + per_degradation_proxy((block,))
        )
        assert per_proxy(spec, baseline_per=0.0) == pytest.approx(
            per_degradation_proxy((block,))
        )

    def test_mixed_layers_average_their_octaves(self):
        uniform = per_degradation_proxy((8, 8))
        mixed = per_degradation_proxy((4, 16))
        assert uniform == pytest.approx(mixed)  # log2(4)+log2(16) == 2*log2(8)
        assert math.isclose(uniform, per_degradation_proxy((8,)))

    def test_invalid_inputs_rejected(self):
        with pytest.raises(BlockSizeError):
            per_degradation_proxy((3,))
        with pytest.raises(ValueError):
            per_degradation_proxy((8,), 0)
