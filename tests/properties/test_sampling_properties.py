"""Property-based invariants of the seeded LM sampler (repro.lm.sampling).

Randomized (seeded) logits rows across random vocab sizes: the sampler
is the served determinism contract — same logits bytes + same sampling
knobs + same seed => same token, on every backend, transport and
process — so these properties pin the pieces that contract is built
from: seed identity, greedy argmax with lowest-index tie breaks, top-k
support restriction under a stable sort, single-draw RNG consumption
(what makes journal replay line up), and strict knob validation.
"""

import random

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.lm import sample_token, validate_sampling

SEEDS = range(10)


def _random_logits(rng: random.Random, size: int | None = None) -> np.ndarray:
    np_rng = np.random.default_rng(rng.randint(0, 2**31))
    count = size if size is not None else rng.randint(2, 48)
    return np_rng.standard_normal(count) * rng.uniform(0.25, 4.0)


class TestSeedIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_same_token_stream(self, seed):
        """Re-running the exact draw sequence reproduces it exactly."""
        rng = random.Random(seed)
        logits = _random_logits(rng)
        temperature = rng.uniform(0.1, 2.0)
        top_k = rng.randint(0, logits.shape[0])

        def stream():
            np_rng = np.random.default_rng(seed)
            return [
                sample_token(logits, temperature=temperature,
                             top_k=top_k, rng=np_rng)
                for _ in range(64)
            ]

        assert stream() == stream()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_exactly_one_draw_per_token(self, seed):
        """Sampling consumes exactly one rng.random() — the property that
        keeps a replayed journal's RNG stream aligned with the original."""
        rng = random.Random(seed)
        logits = _random_logits(rng)
        sampled = np.random.default_rng(seed)
        sample_token(logits, temperature=0.7, top_k=3, rng=sampled)
        shadow = np.random.default_rng(seed)
        shadow.random()
        assert sampled.random() == shadow.random()


class TestGreedyAndTopK:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_greedy_is_argmax_and_ignores_rng(self, seed):
        rng = random.Random(seed)
        logits = _random_logits(rng)
        exhausted = np.random.default_rng(seed)
        exhausted.random(1000)  # rng state must not matter when greedy
        token = sample_token(logits, temperature=0.0, top_k=0, rng=exhausted)
        assert token == int(np.argmax(logits))

    def test_greedy_ties_break_to_lowest_index(self):
        logits = np.array([1.0, 3.0, 3.0, 0.5])
        token = sample_token(
            logits, temperature=-1.0, top_k=0, rng=np.random.default_rng(0)
        )
        assert token == 1

    @pytest.mark.parametrize("seed", SEEDS)
    def test_top_k_one_is_greedy(self, seed):
        rng = random.Random(seed)
        logits = _random_logits(rng)
        token = sample_token(
            logits, temperature=1.3, top_k=1, rng=np.random.default_rng(seed)
        )
        assert token == int(np.argmax(logits))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_sampled_token_is_inside_the_top_k_cut(self, seed):
        rng = random.Random(seed)
        logits = _random_logits(rng)
        top_k = rng.randint(1, logits.shape[0])
        token = sample_token(
            logits, temperature=1.0, top_k=top_k,
            rng=np.random.default_rng(seed),
        )
        # Tie-safe support check: the winner's logit must be at least the
        # k-th largest value (the kept set is a subset of this region).
        threshold = np.sort(logits)[-top_k]
        assert logits[token] >= threshold

    @pytest.mark.parametrize("seed", SEEDS)
    def test_top_k_zero_and_full_width_agree(self, seed):
        """top_k=0 (disabled) and top_k>=C draw the same token from the
        same rng state — both mean 'no cut'."""
        rng = random.Random(seed)
        logits = _random_logits(rng)
        count = logits.shape[0]
        draws = [
            sample_token(logits, temperature=0.9, top_k=k,
                         rng=np.random.default_rng(seed))
            for k in (0, count, count + 7)
        ]
        assert len(set(draws)) == 1


class TestValidation:
    @pytest.mark.parametrize("temperature", [float("nan"), float("inf"),
                                             float("-inf"), "warm", None])
    def test_malformed_temperature_rejected(self, temperature):
        with pytest.raises(ConfigError):
            validate_sampling(temperature, 0)

    @pytest.mark.parametrize("top_k", [-1, 1.5, "5", True, None])
    def test_malformed_top_k_rejected(self, top_k):
        with pytest.raises(ConfigError):
            validate_sampling(1.0, top_k)

    def test_validate_normalizes(self):
        temperature, top_k = validate_sampling(np.float64(0.5), np.int64(3))
        assert isinstance(temperature, float) and temperature == 0.5
        assert isinstance(top_k, int) and top_k == 3

    def test_non_finite_logits_refused(self):
        bad = np.array([0.1, float("nan"), 0.3])
        with pytest.raises(ConfigError):
            sample_token(bad, temperature=1.0, top_k=0,
                         rng=np.random.default_rng(0))

    def test_empty_logits_refused(self):
        with pytest.raises(ConfigError):
            sample_token(np.zeros(0), temperature=1.0, top_k=0,
                         rng=np.random.default_rng(0))
