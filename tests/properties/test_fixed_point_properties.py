"""Property-based invariants for the Sec. VII-D fixed-point formats.

Randomized (seeded) value arrays across random Q-format configurations:
the quantize/dequantize round trip must stay within one resolution step
(2^-frac_bits) for in-range values, saturate cleanly out of range, and
preserve ordering.
"""

import random

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.hw.fixed_point import FixedPointFormat, quantization_snr_db

SEEDS = range(10)


def _random_format(rng: random.Random) -> FixedPointFormat:
    total = rng.randint(4, 24)
    # frac may exceed total or go negative: the paper's static scaling.
    frac = rng.randint(-2, total + 2)
    return FixedPointFormat(total, frac)


def _in_range_values(
    fmt: FixedPointFormat, rng: random.Random, n: int = 256
) -> np.ndarray:
    np_rng = np.random.default_rng(rng.randint(0, 2**31))
    return np_rng.uniform(fmt.min_value, fmt.max_value, size=n)


class TestRoundTrip:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_round_trip_error_bounded_by_resolution(self, seed):
        """|quantize(x) - x| <= 2^-frac_bits for every in-range x."""
        rng = random.Random(seed)
        fmt = _random_format(rng)
        values = _in_range_values(fmt, rng)
        error = np.abs(fmt.quantize(values) - values)
        assert float(error.max()) <= 2.0 ** -fmt.frac_bits

    @pytest.mark.parametrize("seed", SEEDS)
    def test_round_to_nearest_is_half_resolution_in_the_interior(self, seed):
        rng = random.Random(seed)
        fmt = _random_format(rng)
        # Stay one step inside the representable range: round-to-nearest
        # then guarantees half-resolution error, no saturation involved.
        interior = _in_range_values(fmt, rng)
        interior = np.clip(
            interior,
            fmt.min_value + fmt.resolution,
            fmt.max_value - fmt.resolution,
        )
        error = np.abs(fmt.quantize(interior) - interior)
        assert float(error.max()) <= 0.5 * fmt.resolution + 1e-15

    @pytest.mark.parametrize("seed", SEEDS)
    def test_quantize_is_idempotent(self, seed):
        rng = random.Random(seed)
        fmt = _random_format(rng)
        once = fmt.quantize(_in_range_values(fmt, rng))
        np.testing.assert_array_equal(fmt.quantize(once), once)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_int_codes_round_trip_through_from_int(self, seed):
        rng = random.Random(seed)
        fmt = _random_format(rng)
        values = _in_range_values(fmt, rng)
        codes = fmt.to_int(values)
        assert codes.min() >= fmt.min_int and codes.max() <= fmt.max_int
        np.testing.assert_array_equal(fmt.from_int(codes), fmt.quantize(values))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_max_error_reports_the_worst_case(self, seed):
        rng = random.Random(seed)
        fmt = _random_format(rng)
        values = _in_range_values(fmt, rng)
        reported = fmt.max_error(values)
        actual = float(np.max(np.abs(fmt.quantize(values) - values)))
        assert reported == pytest.approx(actual)


class TestStructure:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_quantization_preserves_ordering(self, seed):
        rng = random.Random(seed)
        fmt = _random_format(rng)
        values = np.sort(_in_range_values(fmt, rng))
        quantized = fmt.quantize(values)
        assert np.all(np.diff(quantized) >= 0)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_out_of_range_saturates_to_the_end_points(self, seed):
        rng = random.Random(seed)
        fmt = _random_format(rng)
        span = fmt.max_value - fmt.min_value
        high = fmt.max_value + span * (1 + rng.random())
        low = fmt.min_value - span * (1 + rng.random())
        quantized = fmt.quantize(np.array([low, high]))
        assert quantized[0] == fmt.min_value
        assert quantized[1] == fmt.max_value

    @pytest.mark.parametrize("seed", SEEDS)
    def test_representable_grid_is_fixed_by_quantize(self, seed):
        """Every representable point quantizes to itself exactly."""
        rng = random.Random(seed)
        fmt = FixedPointFormat(rng.randint(4, 12), rng.randint(0, 8))
        codes = np.arange(fmt.min_int, fmt.max_int + 1)
        grid = fmt.from_int(codes)
        np.testing.assert_array_equal(fmt.quantize(grid), grid)

    def test_resolution_is_two_to_minus_frac(self):
        assert FixedPointFormat(12, 8).resolution == 2.0**-8
        assert FixedPointFormat(12, -2).resolution == 4.0

    def test_from_int_rejects_out_of_format_codes(self):
        fmt = FixedPointFormat(8, 4)
        with pytest.raises(QuantizationError):
            fmt.from_int(np.array([fmt.max_int + 1]))


class TestFit:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fit_never_saturates_the_data_it_was_fit_on(self, seed):
        rng = random.Random(seed)
        np_rng = np.random.default_rng(seed)
        total = rng.randint(6, 20)
        scale = 10.0 ** rng.uniform(-3, 3)
        values = np_rng.normal(0.0, scale, size=512)
        fmt = FixedPointFormat.fit(values, total)
        assert fmt.total_bits == total
        codes = np.abs(fmt.to_int(values))
        assert codes.max() <= fmt.max_int
        # No saturation => the round trip stays within one resolution step.
        assert fmt.max_error(values) <= fmt.resolution

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fit_uses_the_tightest_integer_width(self, seed):
        """One more fractional bit would overflow the peak value."""
        rng = random.Random(seed)
        np_rng = np.random.default_rng(seed + 1000)
        total = rng.randint(6, 20)
        values = np_rng.uniform(-4.0, 4.0, size=128)
        fmt = FixedPointFormat.fit(values, total)
        peak = float(np.max(np.abs(values)))
        tighter = FixedPointFormat(total, fmt.frac_bits + 1)
        assert peak > tighter.max_value or peak < tighter.resolution

    def test_zero_array_gets_full_fraction(self):
        fmt = FixedPointFormat.fit(np.zeros(8), 12)
        assert fmt.frac_bits == 11

    def test_empty_array_rejected(self):
        with pytest.raises(QuantizationError):
            FixedPointFormat.fit(np.array([]), 12)

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_snr_improves_with_width(self, seed):
        np_rng = np.random.default_rng(seed)
        values = np_rng.normal(0.0, 1.0, size=2048)
        snrs = [
            quantization_snr_db(values, FixedPointFormat.fit(values, bits))
            for bits in (6, 10, 14)
        ]
        assert snrs[0] < snrs[1] < snrs[2]
