"""DiskCache: keys, atomic round-trips, env resolution, and the engine tier."""

import json

import pytest

from repro.api import Design, DiskCache, Engine, default_cache_root
from repro.api.diskcache import (
    decode_accelerator_design,
    encode_accelerator_design,
)
from repro.config import AccelSpec, RNNSpec


@pytest.fixture()
def cache(tmp_path) -> DiskCache:
    return DiskCache(root=tmp_path, namespace="t")


@pytest.fixture()
def spec() -> RNNSpec:
    return RNNSpec(
        "lstm", 153, (1024,), 39,
        block_sizes=(8,), peephole=True, projection_size=512,
    )


@pytest.fixture()
def accel() -> AccelSpec:
    return AccelSpec("XCKU060")


class TestKeys:
    def test_equal_specs_equal_keys(self, cache, spec, accel):
        clone = RNNSpec(
            "lstm", 153, (1024,), 39,
            block_sizes=(8,), peephole=True, projection_size=512,
        )
        assert cache.key("design", spec, accel) == cache.key("design", clone, accel)

    def test_different_specs_different_keys(self, cache, spec, accel):
        other = spec.with_block_sizes((16,))
        assert cache.key("design", spec, accel) != cache.key("design", other, accel)

    def test_kind_tag_separates_artifacts(self, cache, spec, accel):
        assert cache.key("design", spec, accel) != cache.key("hls", spec, accel)

    def test_pe_efficiency_is_part_of_the_key(self, cache, spec, accel):
        assert cache.key(spec, accel, 1.0) != cache.key(spec, accel, 0.82)

    def test_key_is_stable_hex(self, cache):
        key = cache.key("design", 1, 2.5, "x", None, True, (1, 2))
        assert key == cache.key("design", 1, 2.5, "x", None, True, [1, 2])
        assert len(key) == 64 and int(key, 16) >= 0

    def test_unencodable_part_rejected(self, cache):
        with pytest.raises(TypeError):
            cache.key(object())


class TestStore:
    def test_round_trip(self, cache):
        key = cache.key("k")
        cache.put(key, {"a": [1, 2], "b": "text", "c": 1.5})
        assert cache.get(key) == {"a": [1, 2], "b": "text", "c": 1.5}

    def test_float_round_trip_is_exact(self, cache):
        value = 0.1 + 0.2  # not representable prettily
        key = cache.key("f")
        cache.put(key, value)
        assert cache.get(key) == value

    def test_missing_key_returns_default(self, cache):
        assert cache.get("0" * 64) is None
        assert cache.get("0" * 64, default=-1) == -1

    def test_contains_and_len(self, cache):
        assert len(cache) == 0
        key = cache.key("k")
        assert key not in cache
        cache.put(key, 1)
        assert key in cache
        assert len(cache) == 1

    def test_overwrite_replaces_value(self, cache):
        key = cache.key("k")
        cache.put(key, 1)
        cache.put(key, 2)
        assert cache.get(key) == 2
        assert len(cache) == 1

    def test_delete(self, cache):
        key = cache.key("k")
        cache.put(key, 1)
        assert cache.delete(key)
        assert key not in cache
        assert not cache.delete(key)

    def test_clear_counts_removals(self, cache):
        for i in range(5):
            cache.put(cache.key(i), i)
        assert cache.clear() == 5
        assert len(cache) == 0

    def test_clear_sweeps_tmp_litter(self, cache):
        """A crashed writer's leftover .tmp files go out with clear()."""
        key = cache.key("k")
        cache.put(key, 1)
        litter = cache._path_for(key).parent / ".dead-writer.123.tmp"
        litter.write_text("{partial")
        assert cache.clear() == 1  # litter does not count as an artifact
        assert not litter.exists()

    def test_unserializable_value_leaves_no_litter(self, cache, tmp_path):
        with pytest.raises(TypeError):
            cache.put(cache.key("k"), object())
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_no_tmp_files_left_behind(self, cache, tmp_path):
        for i in range(10):
            cache.put(cache.key(i), {"i": i})
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []

    def test_corrupt_artifact_reads_as_miss(self, cache):
        key = cache.key("k")
        path = cache.put(key, {"ok": True})
        path.write_text("{truncated")
        assert cache.get(key) is None
        assert cache.misses == 1

    def test_hit_miss_counters(self, cache):
        key = cache.key("k")
        cache.get(key)
        cache.put(key, 1)
        cache.get(key)
        assert (cache.hits, cache.misses) == (1, 1)
        assert "1 hits" in cache.describe()

    def test_namespaces_are_isolated(self, tmp_path):
        a = DiskCache(root=tmp_path, namespace="a")
        b = DiskCache(root=tmp_path, namespace="b")
        key = a.key("k")
        a.put(key, 1)
        assert b.get(key) is None
        assert len(b) == 0

    def test_invalid_namespace_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DiskCache(root=tmp_path, namespace="a/b")
        with pytest.raises(ValueError):
            DiskCache(root=tmp_path, namespace="")


class TestEnvResolution:
    def test_repro_cache_dir_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_root() == tmp_path / "custom"
        assert DiskCache().root == tmp_path / "custom"

    def test_xdg_fallback(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_root() == tmp_path / "xdg" / "repro-ernn"

    def test_home_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("XDG_CACHE_HOME", raising=False)
        assert default_cache_root().name == "repro-ernn"

    def test_from_env_honours_no_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert DiskCache.from_env() is None
        monkeypatch.delenv("REPRO_NO_CACHE")
        assert DiskCache.from_env() is not None


class TestDesignCodec:
    def test_encode_decode_round_trip(self, spec, accel):
        built = Engine().design(spec, accel)
        decoded = decode_accelerator_design(encode_accelerator_design(built))
        assert decoded == built
        assert decoded.spec == spec
        assert decoded.latency_us == built.latency_us
        assert decoded.fps == built.fps
        assert decoded.power_watts == built.power_watts

    def test_payload_is_json_serializable(self, spec, accel):
        built = Engine().design(spec, accel)
        payload = encode_accelerator_design(built)
        assert decode_accelerator_design(json.loads(json.dumps(payload))) == built

    def test_decode_rejects_garbage(self):
        assert decode_accelerator_design({"version": 999}) is None
        assert decode_accelerator_design("nonsense") is None
        assert decode_accelerator_design({"version": 1, "spec": {}}) is None


class TestEngineDiskTier:
    def test_second_engine_is_warm(self, tmp_path, spec, accel):
        first = Engine(disk=DiskCache(root=tmp_path))
        built = first.design(spec, accel)
        assert first.stats().disk_misses == 1  # cold: disk consulted, empty

        second = Engine(disk=DiskCache(root=tmp_path))
        warm = second.design(spec, accel)
        assert warm == built
        stats = second.stats()
        assert (stats.disk_hits, stats.misses) == (1, 1)
        assert stats.builds == 0

    def test_disk_accepts_a_plain_path(self, tmp_path, spec, accel):
        engine = Engine(disk=tmp_path)
        engine.design(spec, accel)
        assert Engine(disk=tmp_path).design(spec, accel) is not None
        assert len(engine.disk) == 1

    def test_memory_tier_still_first(self, tmp_path, spec, accel):
        engine = Engine(disk=DiskCache(root=tmp_path))
        a = engine.design(spec, accel)
        assert engine.design(spec, accel) is a  # identity => memory hit
        assert engine.stats().hits == 1

    def test_hls_is_memory_only_but_design_half_persists(
        self, tmp_path, spec, accel
    ):
        first = Engine(disk=DiskCache(root=tmp_path))
        first.hls(spec, accel)
        second = Engine(disk=DiskCache(root=tmp_path))
        second.hls(spec, accel)
        stats = second.stats()
        assert stats.disk_hits == 1  # the inner design came from disk
        assert len(second.disk) == 1  # no hls artifact on disk

    def test_corrupt_disk_artifact_triggers_rebuild(self, tmp_path, spec, accel):
        cache = DiskCache(root=tmp_path)
        first = Engine(disk=cache)
        first.design(spec, accel)
        (artifact,) = list(cache.path.glob("*/*.json"))
        artifact.write_text("{broken")
        second = Engine(disk=DiskCache(root=tmp_path))
        rebuilt = second.design(spec, accel)
        assert rebuilt.fps > 0
        assert second.stats().builds == 1

    def test_design_verbs_share_the_disk_tier(self, tmp_path):
        design = Design.lstm(512).blocks(8)
        cold = design.using(Engine(disk=DiskCache(root=tmp_path))).price()
        warm_engine = Engine(disk=DiskCache(root=tmp_path))
        warm = design.using(warm_engine).price()
        assert warm == cold
        assert warm_engine.stats().disk_hits == 1

    def test_clear_leaves_disk_untouched(self, tmp_path, spec, accel):
        engine = Engine(disk=DiskCache(root=tmp_path))
        engine.design(spec, accel)
        engine.clear()
        assert len(engine) == 0
        assert len(engine.disk) == 1
        assert engine.design(spec, accel) is not None
        assert engine.stats().disk_hits == 1


class TestCounterThreadSafety:
    def test_hit_miss_counters_consistent_under_contention(self, cache):
        """Regression: hits/misses/describe() read under the cache lock.

        Hammer one present and one absent key from many threads while a
        reader thread polls the counters; every polled snapshot and the
        final tallies must account for exactly the gets performed.
        """
        import threading

        cache.put("deadbeef", {"v": 1})
        workers, rounds = 8, 50
        start = threading.Barrier(workers + 1)
        snapshots: list[tuple[int, int]] = []

        def hammer() -> None:
            start.wait()
            for _ in range(rounds):
                cache.get("deadbeef")
                cache.get("cafef00d")

        def poll() -> None:
            start.wait()
            for _ in range(rounds):
                snapshots.append((cache.hits, cache.misses))
                cache.describe()

        threads = [threading.Thread(target=hammer) for _ in range(workers)]
        threads.append(threading.Thread(target=poll))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert cache.hits == workers * rounds
        assert cache.misses == workers * rounds
        assert all(h <= workers * rounds and m <= workers * rounds
                   for h, m in snapshots)

    def test_describe_reports_the_final_counts(self, cache):
        cache.put("deadbeef", {"v": 1})
        cache.get("deadbeef")
        cache.get("cafef00d")
        text = cache.describe()
        assert "1" in text and "hit" in text.lower()
