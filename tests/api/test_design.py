"""The fluent Design facade: golden equivalence with the legacy entry
points, immutability, report verbs, and the deprecation shims."""

import math
import warnings

import pytest

from repro.api import Design, Engine
from repro.config import AccelSpec, RNNSpec
from repro.errors import ConfigError, RegistryError

#: Table I/II-style design points used for golden-equivalence checks:
#: the paper's headline LSTM (FFT8, peephole + projection) on both boards,
#: a GRU point, and a mixed io-block fine-tuning point.
GOLDEN_POINTS = [
    pytest.param(
        Design.lstm(1024).blocks(8).peephole().project(512).on("XCKU060"),
        id="lstm-fft8-ku060",
    ),
    pytest.param(
        Design.lstm(1024).blocks(16).peephole().project(512).on("ADM-PCIE-7V3"),
        id="lstm-fft16-7v3",
    ),
    pytest.param(Design.gru(1024).blocks(16).on("XCKU060"), id="gru-fft16"),
    pytest.param(
        Design.lstm(1024).blocks(8).io_block(16).peephole().project(512)
        .on("XCKU060"),
        id="lstm-fft8-ioblock16",
    ),
]


class TestFluentConstruction:
    def test_chain_compiles_to_frozen_specs(self):
        design = (
            Design.lstm(1024).blocks(8).peephole().project(512)
            .on("XCKU060").bits(12)
        )
        spec, accel = design.specs()
        assert spec == RNNSpec(
            "lstm", 153, (1024,), 39,
            block_sizes=(8,), peephole=True, projection_size=512,
        )
        assert accel == AccelSpec("XCKU060", weight_bits=12, input_bits=12)

    def test_verbs_return_new_instances(self):
        base = Design.lstm(1024)
        blocked = base.blocks(8)
        assert base.block_sizes == ()
        assert blocked.block_sizes == (8,)
        assert base is not blocked

    def test_blocks_broadcasts_uniform_value(self):
        design = Design.lstm(1024, 1024).blocks(8)
        assert design.block_sizes == (8, 8)
        per_layer = design.blocks(8, 16)
        assert per_layer.block_sizes == (8, 16)

    def test_dense_strips_compression(self):
        design = Design.lstm(1024).blocks(8).io_block(16).dense()
        assert design.block_sizes == () and design.io_block_size is None

    def test_bits_defaults_input_width_to_weight_width(self):
        design = Design.lstm(1024).bits(10)
        assert design.weight_bits == 10 and design.input_bits == 10
        split = design.bits(12, 8)
        assert split.weight_bits == 12 and split.input_bits == 8

    def test_unknown_cell_fails_fast(self):
        with pytest.raises(RegistryError):
            Design.cell("mamba", 1024)

    def test_invalid_spec_surfaces_config_error_at_compile(self):
        with pytest.raises(ConfigError):
            Design.gru(1024).peephole().rnn_spec()

    def test_from_specs_round_trips(self):
        spec = RNNSpec(
            "lstm", 153, (1024,), 39,
            block_sizes=(8,), peephole=True, projection_size=512,
        )
        accel = AccelSpec("XCKU060", weight_bits=10, input_bits=8)
        design = Design.from_specs(spec, accel)
        assert design.specs() == (spec, accel)


class TestGoldenEquivalence:
    """Design verbs must reproduce the legacy entry points byte for byte."""

    @pytest.mark.parametrize("design", GOLDEN_POINTS)
    def test_price_matches_accelerator_model(self, design):
        from repro.hw.accelerator import AcceleratorModel

        spec, accel = design.specs()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = AcceleratorModel(spec, accel).build()
        priced = design.using(Engine()).price()
        assert priced == legacy  # frozen dataclasses: full field equality

    @pytest.mark.parametrize("design", GOLDEN_POINTS)
    def test_codegen_byte_matches_hls_framework(self, design):
        from repro.hls.framework import HLSFramework

        spec, accel = design.specs()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = HLSFramework(spec, accel).build()
        result = design.using(Engine()).codegen()
        assert result.code == legacy.code
        assert result.summary() == legacy.summary()

    def test_codegen_writes_file(self, tmp_path):
        out = tmp_path / "cu.c"
        result = Design.gru(1024).blocks(16).using(Engine()).codegen(out)
        assert out.read_text() == result.code

    def test_fit_check_matches_bram_model(self):
        from repro.hw.bram import fits_bram
        from repro.hw.platform import get_platform

        design = Design.lstm(1024, 1024).blocks(8).peephole().project(512)
        report = design.fit_check()
        assert report.fits == fits_bram(
            design.rnn_spec(), get_platform("XCKU060"), 12
        )
        assert "FITS" in report.describe()

    def test_bounds_match_paper_range(self):
        report = (
            Design.lstm(1024, 1024).peephole().project(512).bounds()
        )
        assert report.lower == 8
        assert report.upper == 64
        assert report.feasible
        assert report.num_trials == int(math.log2(64) - math.log2(8)) + 1
        assert report.block_sizes == (64, 32, 16, 8)

    def test_infeasible_bounds_reported(self):
        report = Design.lstm(4096, 4096, 4096, 4096).on("7v3").bounds()
        assert not report.feasible
        assert report.num_trials == 0
        assert report.block_sizes == ()
        assert "INFEASIBLE" in report.describe()

    def test_optimize_matches_legacy_framework(self):
        from repro.core.ernn import ERNNFramework

        def oracle(spec: RNNSpec) -> float:
            per = 20.0
            for block in spec.effective_block_sizes:
                if block > 1:
                    per += 0.05 * math.log2(block)
            if spec.cell_type == "gru":
                per += 1.0
            if spec.io_block_size is not None:
                per += 0.5
            return per

        result = (
            Design.lstm(1024, 1024).peephole().project(512).on("XCKU060")
            .optimize(oracle, baseline_per=20.0)
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = ERNNFramework(
                RNNSpec("lstm", 153, (1024, 1024), 39,
                        peephole=True, projection_size=512),
                oracle,
            ).optimize(baseline_per=20.0)
        assert result.phase1.final_spec == legacy.phase1.final_spec
        assert result.phase2.accel == legacy.phase2.accel
        assert result.describe() == legacy.describe()


class TestDeprecationShims:
    def test_accelerator_model_warns_but_works(self):
        from repro.hw.accelerator import AcceleratorModel

        spec = RNNSpec("lstm", 153, (1024,), 39,
                       block_sizes=(8,), peephole=True, projection_size=512)
        with pytest.warns(DeprecationWarning, match="repro.api.Design"):
            model = AcceleratorModel(spec, AccelSpec("XCKU060"))
        assert model.build().num_pes > 0

    def test_hls_framework_warns_but_works(self):
        from repro.hls.framework import HLSFramework

        spec = RNNSpec("gru", 153, (1024,), 39, block_sizes=(16,))
        with pytest.warns(DeprecationWarning, match="codegen"):
            framework = HLSFramework(spec, AccelSpec("XCKU060"))
        assert "#pragma HLS" in framework.build().code

    def test_ernn_framework_warns(self):
        from repro.core.ernn import ERNNFramework

        with pytest.warns(DeprecationWarning, match="optimize"):
            ERNNFramework(
                RNNSpec("lstm", 153, (1024,), 39), lambda spec: 20.0
            )

    def test_facade_paths_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            design = (
                Design.lstm(1024).blocks(8).peephole().project(512)
                .using(Engine())
            )
            design.fit_check()
            design.bounds()
            design.price()
            design.codegen()
