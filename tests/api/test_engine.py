"""Engine cache behavior: hits, misses, identity, eviction, isolation."""

import pytest

from repro.api import Design, Engine
from repro.api.engine import default_engine, set_default_engine
from repro.config import AccelSpec, RNNSpec


@pytest.fixture
def spec() -> RNNSpec:
    return RNNSpec(
        "lstm", 153, (1024,), 39,
        block_sizes=(8,), peephole=True, projection_size=512,
    )


@pytest.fixture
def accel() -> AccelSpec:
    return AccelSpec("XCKU060")


class TestEngineCache:
    def test_design_hit_returns_same_object(self, spec, accel):
        engine = Engine()
        first = engine.design(spec, accel)
        second = engine.design(spec, accel)
        assert first is second
        stats = engine.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)

    def test_equal_specs_hit_even_when_rebuilt(self, spec, accel):
        engine = Engine()
        engine.design(spec, accel)
        clone = RNNSpec(
            "lstm", 153, (1024,), 39,
            block_sizes=(8,), peephole=True, projection_size=512,
        )
        engine.design(clone, AccelSpec("XCKU060"))
        assert engine.stats().hits == 1

    def test_different_specs_miss(self, spec, accel):
        engine = Engine()
        engine.design(spec, accel)
        engine.design(spec.with_block_sizes((16,)), accel)
        engine.design(spec, AccelSpec("ADM-PCIE-7V3"))
        stats = engine.stats()
        assert (stats.hits, stats.misses) == (0, 3)

    def test_hls_and_design_cached_separately(self, spec, accel):
        engine = Engine()
        engine.design(spec, accel)
        result = engine.hls(spec, accel)
        assert engine.stats().misses == 2
        assert engine.hls(spec, accel) is result

    def test_hls_populates_the_design_cache(self, spec, accel):
        """codegen-first and price-first must leave identical cache state."""
        engine = Engine()
        hls = engine.hls(spec, accel)
        assert engine.contains("design", spec, accel)
        assert engine.contains("hls", spec, accel)
        # The subsequent price() is a pure hit on the design the HLS flow
        # already built — and it is the very same artifact.
        assert engine.design(spec, accel) is hls.design
        stats = engine.stats()
        assert (stats.hits, stats.misses) == (1, 2)

    def test_design_then_hls_reuses_the_design_artifact(self, spec, accel):
        engine = Engine()
        priced = engine.design(spec, accel)
        hls = engine.hls(spec, accel)
        assert hls.design is priced
        stats = engine.stats()
        assert (stats.hits, stats.misses) == (1, 2)

    def test_stats_uniform_across_lookup_order(self, spec, accel):
        """Same lookups, either order -> same counters (the PR-2 fix)."""
        price_first = Engine()
        price_first.design(spec, accel)
        price_first.hls(spec, accel)
        codegen_first = Engine()
        codegen_first.hls(spec, accel)
        codegen_first.design(spec, accel)
        assert price_first.stats() == codegen_first.stats()

    def test_contains_uses_the_same_key_as_the_verbs(self, spec, accel):
        engine = Engine()
        assert not engine.contains("design", spec, accel)
        engine.design(spec, accel, pe_efficiency=0.82)
        assert engine.contains("design", spec, accel, pe_efficiency=0.82)
        assert not engine.contains("design", spec, accel)  # pe is in the key
        assert not engine.contains("hls", spec, accel, pe_efficiency=0.82)

    def test_contains_does_not_perturb_stats(self, spec, accel):
        engine = Engine()
        engine.design(spec, accel)
        before = engine.stats()
        engine.contains("design", spec, accel)
        engine.contains("hls", spec, accel)
        ("design", spec, accel, 1.0) in engine  # raw-key protocol form
        assert engine.stats() == before

    def test_pe_efficiency_is_part_of_the_key(self, spec, accel):
        engine = Engine()
        engine.design(spec, accel, pe_efficiency=1.0)
        engine.design(spec, accel, pe_efficiency=0.82)
        assert engine.stats().misses == 2

    def test_lru_eviction(self, spec, accel):
        engine = Engine(maxsize=2)
        a = engine.design(spec, accel)
        engine.design(spec.with_block_sizes((16,)), accel)
        assert engine.design(spec, accel) is a  # refresh a's recency
        engine.design(spec.with_block_sizes((32,)), accel)  # evicts block-16
        assert engine.stats().evictions == 1
        assert engine.design(spec, accel) is a  # still cached
        engine.design(spec.with_block_sizes((16,)), accel)  # rebuilt: a miss
        assert engine.stats().misses == 4

    def test_clear_resets(self, spec, accel):
        engine = Engine()
        engine.design(spec, accel)
        engine.design(spec, accel)
        engine.clear()
        stats = engine.stats()
        assert (stats.hits, stats.misses, stats.size) == (0, 0, 0)

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            Engine(maxsize=0)


class TestEngineWiring:
    def test_design_verb_uses_pinned_engine(self):
        engine = Engine()
        design = Design.lstm(1024).blocks(8).peephole().project(512).using(engine)
        design.price()
        design.price()
        design.codegen()  # hls miss + a hit on the already-priced design
        stats = engine.stats()
        assert (stats.hits, stats.misses) == (2, 2)

    def test_default_engine_swap(self):
        replacement = Engine(maxsize=4)
        previous = set_default_engine(replacement)
        try:
            assert default_engine() is replacement
            Design.lstm(1024).blocks(8).peephole().project(512).price()
            assert replacement.stats().misses == 1
        finally:
            set_default_engine(previous)

    def test_stats_describe_mentions_counts(self):
        engine = Engine()
        text = engine.stats().describe()
        assert "0 hits" in text and "0 misses" in text
