"""Cache layers under contention: LRU thread safety, multi-process DiskCache."""

import json
import multiprocessing
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import DiskCache, Engine
from repro.config import AccelSpec, RNNSpec


def _spec(block: int) -> RNNSpec:
    return RNNSpec("lstm", 153, (512,), 39, block_sizes=(block,))


ACCEL = AccelSpec("XCKU060")
BLOCKS = (2, 4, 8, 16, 32, 64)


class TestEngineThreadSafety:
    def test_contended_lookups_preserve_counter_invariants(self):
        """hits + misses must equal total lookups even under contention."""
        engine = Engine(maxsize=16)
        lookups_per_thread = 30
        num_threads = 8

        def worker(seed: int) -> None:
            for i in range(lookups_per_thread):
                block = BLOCKS[(seed + i) % len(BLOCKS)]
                built = engine.design(_spec(block), ACCEL)
                assert built.spec.block_sizes == (block,)

        with ThreadPoolExecutor(max_workers=num_threads) as pool:
            list(pool.map(worker, range(num_threads)))

        stats = engine.stats()
        assert stats.hits + stats.misses == num_threads * lookups_per_thread
        # Racing threads may each build the same cold key once, but the
        # cache must never under-count a lookup or exceed its bound.
        assert stats.misses >= len(BLOCKS)
        assert stats.size <= engine.maxsize

    def test_contended_eviction_keeps_size_bounded(self):
        engine = Engine(maxsize=3)

        def worker(seed: int) -> None:
            for i in range(40):
                engine.design(_spec(BLOCKS[(seed * 7 + i) % len(BLOCKS)]), ACCEL)
                assert len(engine) <= 3

        with ThreadPoolExecutor(max_workers=6) as pool:
            list(pool.map(worker, range(6)))

        stats = engine.stats()
        assert stats.size <= 3
        assert stats.evictions > 0

    def test_concurrent_hits_return_the_same_artifact(self):
        engine = Engine()
        spec = _spec(8)
        canonical = engine.design(spec, ACCEL)
        results = []

        def worker() -> None:
            results.append(engine.design(spec, ACCEL))

        threads = [threading.Thread(target=worker) for _ in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r is canonical for r in results)

    def test_clear_while_reading_never_corrupts(self):
        engine = Engine(maxsize=8)
        stop = threading.Event()

        def churn() -> None:
            i = 0
            while not stop.is_set():
                engine.design(_spec(BLOCKS[i % len(BLOCKS)]), ACCEL)
                i += 1

        def clearer() -> None:
            for _ in range(20):
                engine.clear()

        churners = [threading.Thread(target=churn) for _ in range(3)]
        for t in churners:
            t.start()
        clearer()
        stop.set()
        for t in churners:
            t.join()
        stats = engine.stats()
        assert stats.hits + stats.misses >= 0  # counters stayed coherent
        assert len(engine) <= 8


def _hammer_diskcache(root: str, worker_id: int, rounds: int) -> None:
    """Write and read the same key set as the sibling process."""
    cache = DiskCache(root=root, namespace="shared")
    for i in range(rounds):
        key = cache.key("item", i % 10)
        cache.put(key, {"worker": worker_id, "round": i, "value": i * 1.5})
        read = cache.get(key)
        # Concurrent replace may serve either writer's artifact, but never
        # a torn or partial one.
        assert read is None or (
            isinstance(read, dict) and set(read) == {"worker", "round", "value"}
        )


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)
class TestDiskCacheMultiProcess:
    def test_two_processes_share_one_directory_without_corruption(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_hammer_diskcache, args=(str(tmp_path), w, 60))
            for w in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0

        cache = DiskCache(root=tmp_path, namespace="shared")
        assert len(cache) == 10
        # Every surviving artifact must be complete, valid JSON.
        for artifact in cache.path.glob("*/*.json"):
            payload = json.loads(artifact.read_text())
            assert set(payload) == {"worker", "round", "value"}
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_engine_disk_tier_shared_across_processes(self, tmp_path):
        def build(root: str, block: int) -> None:
            engine = Engine(disk=DiskCache(root=root))
            engine.design(_spec(block), ACCEL)

        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=build, args=(str(tmp_path), block))
            for block in (4, 8, 16, 4, 8, 16)  # contending duplicates
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0

        # A fresh engine in this process must be fully warm.
        engine = Engine(disk=DiskCache(root=tmp_path))
        for block in (4, 8, 16):
            engine.design(_spec(block), ACCEL)
        stats = engine.stats()
        assert stats.disk_hits == 3
        assert stats.builds == 0
