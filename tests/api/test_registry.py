"""Registry subsystem: lookup, aliasing, duplicates, extension hooks."""

import pytest

from repro.api.registry import (
    ACTIVATION_REGISTRY,
    CELL_REGISTRY,
    PLATFORM_REGISTRY,
    CellInfo,
    Registry,
)
from repro.errors import ConfigError, RegistryError


class TestRegistryCore:
    def test_register_and_get(self):
        registry = Registry("widget")
        registry.register("A", 1, aliases=("alpha",))
        assert registry.get("A") == 1
        assert registry.get("alpha") == 1
        assert registry.get("ALPHA") == 1  # aliases are case-insensitive

    def test_duplicate_name_raises(self):
        registry = Registry("widget")
        registry.register("A", 1)
        with pytest.raises(RegistryError, match="duplicate"):
            registry.register("A", 2)
        with pytest.raises(RegistryError, match="duplicate"):
            registry.register("a", 2)  # case-insensitive collision

    def test_duplicate_alias_raises(self):
        registry = Registry("widget")
        registry.register("A", 1, aliases=("alpha",))
        with pytest.raises(RegistryError, match="alias"):
            registry.register("B", 2, aliases=("alpha",))

    def test_unknown_name_raises_config_error_subclass(self):
        registry = Registry("widget")
        with pytest.raises(RegistryError, match="unknown widget"):
            registry.get("nope")
        # RegistryError must stay catchable as ConfigError for old callers.
        with pytest.raises(ConfigError):
            registry.get("nope")

    def test_mapping_protocol(self):
        registry = Registry("widget")
        registry.register("B", 2)
        registry.register("A", 1)
        assert sorted(registry) == ["A", "B"]
        assert len(registry) == 2
        assert "A" in registry and "a" in registry and "C" not in registry
        assert dict(registry.items()) == {"A": 1, "B": 2}
        with pytest.raises(KeyError):
            registry["missing"]

    def test_lazy_entries_resolve_on_first_get(self):
        registry = Registry("widget")
        registry.register_lazy("pi", "math:pi")
        assert registry.get("pi") == pytest.approx(3.14159, abs=1e-4)


class TestBuiltinRegistries:
    def test_platforms_seeded_with_table4_boards(self):
        assert PLATFORM_REGISTRY.names() == ("ADM-PCIE-7V3", "XCKU060")
        assert PLATFORM_REGISTRY.get("ku060").name == "XCKU060"
        assert PLATFORM_REGISTRY.get("7v3").name == "ADM-PCIE-7V3"

    def test_platform_registry_backs_legacy_dict(self):
        from repro.hw.platform import PLATFORMS, get_platform

        assert PLATFORMS is PLATFORM_REGISTRY
        assert get_platform("virtex-7").name == "ADM-PCIE-7V3"
        with pytest.raises(ConfigError):
            get_platform("unknown-board")

    def test_cells_seeded_with_capabilities(self):
        lstm = CELL_REGISTRY.get("lstm")
        gru = CELL_REGISTRY.get("gru")
        assert lstm.supports_peephole and lstm.supports_projection
        assert not gru.supports_peephole and not gru.supports_projection

    def test_activations_seeded(self):
        sigmoid = ACTIVATION_REGISTRY.get("sigmoid").builder(16)
        tanh = ACTIVATION_REGISTRY.get("tanh").builder(16)
        assert sigmoid.segments == 16
        assert tanh.segments == 16

    def test_spec_validation_uses_cell_registry(self):
        from repro.config import RNNSpec

        with pytest.raises(ConfigError, match="cell_type"):
            RNNSpec("mgu", 16, (32,), 5)

    def test_registered_cell_builds_models(self):
        """A cell registered at runtime validates in RNNSpec and builds."""
        import numpy as np

        from repro.api import register_cell
        from repro.config import RNNSpec
        from repro.nn.lstm import LSTMCell
        from repro.nn.rnn import StackedRNNClassifier

        name = "test-lstm-clone"
        if name not in CELL_REGISTRY:  # guard against test re-runs in-process
            @register_cell(name, supports_peephole=True,
                           supports_projection=True)
            def clone_factory(input_size, hidden_size, **kwargs):
                return LSTMCell(input_size, hidden_size, **kwargs)

        spec = RNNSpec(name, 8, (16,), 4)
        model = StackedRNNClassifier(spec, rng=np.random.default_rng(0))
        logits = model(np.zeros((3, 2, 8)))
        assert logits.shape == (3, 2, 4)

    def test_cell_info_frozen(self):
        info = CELL_REGISTRY.get("lstm")
        assert isinstance(info, CellInfo)
        with pytest.raises(AttributeError):
            info.supports_peephole = False
