"""Sweep builder, parallel execution determinism, Pareto/top-k, reports."""

import json

import pytest

from repro.api import Design, Engine, Sweep
from repro.api.explorer import SWEEP_AXES, EvaluatedPoint, PointMetrics
from repro.cli import main
from repro.errors import ConfigError


@pytest.fixture()
def base() -> Design:
    return Design.lstm(512).peephole().project(256)


@pytest.fixture(scope="module")
def small_result():
    sweep = (
        Sweep(Design.lstm(512).peephole().project(256))
        .over(blocks=[4, 8, 16], bits=[8, 12], platform=["XCKU060"])
    )
    return sweep.run(mode="serial", engine=Engine())


class TestSweepConstruction:
    def test_default_base(self):
        assert Sweep().base.layer_sizes == (1024,)

    def test_grid_size_is_the_product(self, base):
        sweep = Sweep(base).over(blocks=[4, 8], bits=[8, 12, 16])
        assert sweep.grid_size() == 6
        assert len(sweep) == 6

    def test_over_returns_a_new_sweep(self, base):
        first = Sweep(base)
        second = first.over(blocks=[4, 8])
        assert first.grid_size() == 1
        assert second.grid_size() == 2

    def test_axes_accumulate_across_over_calls(self, base):
        sweep = Sweep(base).over(blocks=[4, 8]).over(bits=[8, 12])
        assert [name for name, _ in sweep.axes] == ["blocks", "bits"]
        assert sweep.grid_size() == 4

    def test_unknown_axis_rejected(self, base):
        with pytest.raises(ConfigError, match="unknown sweep axis"):
            Sweep(base).over(voltage=[1, 2])

    def test_duplicate_axis_rejected(self, base):
        with pytest.raises(ConfigError, match="declared twice"):
            Sweep(base).over(blocks=[4]).over(blocks=[8])

    def test_empty_axis_rejected(self, base):
        with pytest.raises(ConfigError, match="no values"):
            Sweep(base).over(blocks=[])

    def test_every_declared_axis_applies(self, base):
        """Each axis name maps onto the matching fluent verb."""
        values = {
            "layers": (256, 256),  # layer axes apply before block axes
            "blocks": 8,
            "cell": "gru",
            "platform": "ADM-PCIE-7V3",
            "bits": 8,
            "clock": 150.0,
            "pwl": 32,
            "peephole": False,
            "projection": None,
            "io_block": None,
            "compute_units": 2,
            "efficiency": 0.82,
        }
        assert set(values) == set(SWEEP_AXES)
        design = base
        for name, value in values.items():
            design = SWEEP_AXES[name](design, value)
        assert design.cell_type == "gru"
        assert design.layer_sizes == (256, 256)
        assert design.block_sizes == (8, 8)
        assert design.platform == "ADM-PCIE-7V3"
        assert design.weight_bits == 8
        assert design.num_compute_units == 2
        assert design.pe_efficiency == 0.82

    def test_blocks_axis_none_means_dense(self, base):
        design = SWEEP_AXES["blocks"](base.blocks(8), None)
        assert design.block_sizes == ()

    def test_blocks_axis_accepts_per_layer_tuples(self):
        design = SWEEP_AXES["blocks"](Design.lstm(512, 256), (8, 4))
        assert design.block_sizes == (8, 4)


class TestCandidateEnumeration:
    def test_declaration_order_product(self, base):
        sweep = Sweep(base).over(blocks=[4, 8], bits=[8, 12])
        combos = [c.overrides for c in sweep.candidates()]
        assert combos == [
            (("blocks", 4), ("bits", 8)),
            (("blocks", 4), ("bits", 12)),
            (("blocks", 8), ("bits", 8)),
            (("blocks", 8), ("bits", 12)),
        ]

    def test_indices_are_sequential(self, base):
        sweep = Sweep(base).over(blocks=[4, 8, 16])
        assert [c.index for c in sweep.candidates()] == [0, 1, 2]

    def test_candidate_designs_carry_the_overrides(self, base):
        sweep = Sweep(base).over(blocks=[4], bits=[10], platform=["ADM-PCIE-7V3"])
        (candidate,) = sweep.candidates()
        assert candidate.design.block_sizes == (4,)
        assert candidate.design.weight_bits == 10
        assert candidate.design.platform == "ADM-PCIE-7V3"

    def test_random_sampling_is_deterministic(self, base):
        sweep = Sweep(base).over(blocks=[2, 4, 8, 16, 32], bits=[8, 10, 12, 16])
        a = sweep.random(5, seed=42).candidates()
        b = sweep.random(5, seed=42).candidates()
        assert [c.overrides for c in a] == [c.overrides for c in b]
        assert len(a) == 5

    def test_random_sampling_seed_changes_the_subset(self, base):
        sweep = Sweep(base).over(blocks=[2, 4, 8, 16, 32], bits=[8, 10, 12, 16])
        a = [c.overrides for c in sweep.random(5, seed=1).candidates()]
        b = [c.overrides for c in sweep.random(5, seed=2).candidates()]
        assert a != b

    def test_random_larger_than_grid_keeps_everything(self, base):
        sweep = Sweep(base).over(blocks=[4, 8]).random(100)
        assert len(sweep.candidates()) == 2

    def test_random_rejects_nonpositive(self, base):
        with pytest.raises(ConfigError):
            Sweep(base).random(0)

    def test_random_preserves_candidate_order(self, base):
        """Sampled candidates keep grid order (indices re-numbered 0..n-1)."""
        sweep = Sweep(base).over(blocks=[2, 4, 8, 16, 32]).random(3, seed=7)
        blocks = [dict(c.overrides)["blocks"] for c in sweep.candidates()]
        assert blocks == sorted(blocks)


class TestExecution:
    def test_serial_and_thread_byte_identical(self, base):
        sweep = Sweep(base).over(blocks=[4, 8, 16], bits=[8, 12])
        serial = sweep.run(mode="serial", engine=Engine())
        threaded = sweep.run(mode="thread", workers=4, engine=Engine())
        assert serial.to_json() == threaded.to_json()
        assert serial.to_csv() == threaded.to_csv()
        assert serial.describe() == threaded.describe()
        assert serial.points == threaded.points

    def test_describe_stats_flag_appends_cache_counters(self, small_result):
        assert "engine cache" not in small_result.describe()
        assert "engine cache" in small_result.describe(stats=True)

    def test_serial_and_process_byte_identical(self, base):
        sweep = Sweep(base).over(blocks=[4, 8], bits=[8, 12])
        serial = sweep.run(mode="serial", engine=Engine())
        processed = sweep.run(mode="process", workers=2)
        assert serial.to_json() == processed.to_json()
        assert serial.points == processed.points

    def test_invalid_mode_rejected(self, base):
        with pytest.raises(ConfigError, match="mode"):
            Sweep(base).over(blocks=[4]).run(mode="gpu")

    def test_results_in_candidate_order(self, small_result):
        assert [p.index for p in small_result.points] == list(range(6))

    def test_cell_axis_drops_unsupported_options(self):
        """with_cell drops projection/peephole for GRU, so the combination
        compiles instead of exploding the whole sweep."""
        sweep = Sweep(Design.lstm(512).blocks(8)).over(
            projection=[256], cell=["lstm", "gru"]
        )
        result = sweep.run(mode="serial", engine=Engine())
        assert len(result.failed()) == 0
        specs = {p.spec.cell_type: p.spec for p in result.points}
        assert specs["lstm"].projection_size == 256
        assert specs["gru"].projection_size is None

    def test_invalid_combination_is_captured_not_raised(self):
        """A block size that does not divide the layer is recorded, not raised."""
        bad = Sweep(Design.lstm(500)).over(blocks=[8]).run(
            mode="serial", engine=Engine()
        )
        assert len(bad.failed()) == 1
        assert "BlockSizeError" in bad.points[0].error
        assert bad.points[0].spec is None

    def test_invalid_axis_value_is_captured_not_raised(self):
        """An unknown cell name fails its own point, not the whole sweep."""
        result = (
            Sweep(Design.lstm(512).blocks(8))
            .over(cell=["lstm", "nosuchcell"])
            .run(mode="serial", engine=Engine())
        )
        assert len(result.ok()) == 1
        (bad,) = result.failed()
        assert dict(bad.overrides)["cell"] == "nosuchcell"
        assert "nosuchcell" in bad.error

    def test_structural_axes_apply_before_scalar_blocks(self):
        """blocks declared before layers must expand against the final
        layer count, whatever the declaration order."""
        result = (
            Sweep(Design.lstm(64))
            .over(blocks=[4], layers=[(32, 32)])
            .run(mode="serial", engine=Engine())
        )
        (point,) = result.points
        assert point.error is None
        assert point.spec.layer_sizes == (32, 32)
        assert point.spec.block_sizes == (4, 4)

    def test_engine_and_disk_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ConfigError, match="not both"):
            Sweep(Design.lstm(512)).over(blocks=[8]).run(
                engine=Engine(), disk=tmp_path
            )

    def test_no_cache_env_kills_explicit_disk_tiers(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        engine = Engine(disk=tmp_path)
        assert engine.disk is None
        result = (
            Sweep(Design.lstm(512)).over(blocks=[8])
            .run(mode="serial", disk=tmp_path)
        )
        assert len(result.ok()) == 1
        assert list(tmp_path.rglob("*.json")) == []

    def test_unfittable_design_prices_as_error_with_metrics(self):
        """Too-big model: fit/bounds metrics survive, pricing fails."""
        result = (
            Sweep(Design.lstm(4096, 4096, 4096, 4096).bits(16))
            .over(blocks=[2])
            .run(mode="serial", engine=Engine())
        )
        (point,) = result.points
        assert point.metrics is not None
        assert point.metrics.fits is False
        assert point.metrics.feasible is False
        assert point.metrics.latency_us is None
        assert point.error is not None
        assert not point.ok

    def test_run_uses_shared_default_engine_when_unpinned(self, base):
        from repro.api import default_engine

        before = default_engine().stats().misses
        Sweep(base).over(blocks=[4]).run(mode="serial")
        assert default_engine().stats().misses >= before

    def test_single_job_runs_inline_in_parallel_modes(self, base):
        result = Sweep(base).over(blocks=[8]).run(mode="process")
        assert len(result) == 1 and result.points[0].ok


class TestSelection:
    def test_ok_excludes_failures(self, small_result):
        assert len(small_result.ok()) == len(small_result)
        assert small_result.failed() == ()

    def test_pareto_points_are_mutually_nondominated(self, small_result):
        front = small_result.pareto()
        for p in front:
            for q in front:
                if p is q:
                    continue
                dominates = (
                    q.metrics.per_proxy <= p.metrics.per_proxy
                    and q.metrics.latency_us <= p.metrics.latency_us
                    and (
                        q.metrics.per_proxy < p.metrics.per_proxy
                        or q.metrics.latency_us < p.metrics.latency_us
                    )
                )
                assert not dominates

    def test_pareto_covers_every_point(self, small_result):
        """Every non-frontier point is dominated by some frontier point."""
        front = small_result.pareto()
        for p in small_result.ok():
            if p in front:
                continue
            assert any(
                q.metrics.per_proxy <= p.metrics.per_proxy
                and q.metrics.latency_us <= p.metrics.latency_us
                for q in front
            )

    def test_pareto_maximize_prefix(self, small_result):
        front = small_result.pareto(objectives=("per_proxy", "-fps"))
        best_fps = max(p.metrics.fps for p in small_result.ok())
        assert any(p.metrics.fps == best_fps for p in front)

    def test_pareto_unknown_objective_rejected(self, small_result):
        with pytest.raises(ConfigError, match="unknown objective"):
            small_result.pareto(objectives=("latency_us", "beauty"))

    def test_top_k_orders_descending_by_default(self, small_result):
        top = small_result.top_k(3, key="fps")
        values = [p.metrics.fps for p in top]
        assert values == sorted(values, reverse=True)

    def test_top_k_smallest(self, small_result):
        top = small_result.top_k(2, key="latency_us", largest=False)
        all_latencies = sorted(p.metrics.latency_us for p in small_result.ok())
        assert [p.metrics.latency_us for p in top] == all_latencies[:2]

    def test_best_returns_single_point(self, small_result):
        best = small_result.best(key="energy_efficiency")
        assert best.metrics.energy_efficiency == max(
            p.metrics.energy_efficiency for p in small_result.ok()
        )

    def test_best_none_when_nothing_priced(self):
        result = (
            Sweep(Design.lstm(500)).over(blocks=[8])
            .run(mode="serial", engine=Engine())
        )
        assert result.best() is None


class TestMetrics:
    def test_per_proxy_monotone_in_block_size(self, small_result):
        by_block = {
            dict(p.overrides)["blocks"]: p.metrics.per_proxy
            for p in small_result.ok()
            if dict(p.overrides)["bits"] == 12
        }
        assert by_block[4] < by_block[8] < by_block[16]

    def test_normalized_mults_decrease_with_block_size(self, small_result):
        by_block = {
            dict(p.overrides)["blocks"]: p.metrics.normalized_mults
            for p in small_result.ok()
            if dict(p.overrides)["bits"] == 12
        }
        assert by_block[4] > by_block[8] > by_block[16]

    def test_quantization_degrades_per_proxy(self, small_result):
        pairs = {
            (dict(p.overrides)["blocks"], dict(p.overrides)["bits"]):
                p.metrics.per_proxy
            for p in small_result.ok()
        }
        assert pairs[(8, 8)] > pairs[(8, 12)]

    def test_metrics_match_direct_price(self, base):
        result = (
            Sweep(base).over(blocks=[8]).run(mode="serial", engine=Engine())
        )
        (point,) = result.points
        priced = base.blocks(8).price()
        assert point.metrics.latency_us == pytest.approx(priced.latency_us)
        assert point.metrics.fps == pytest.approx(priced.fps)
        assert point.metrics.num_pes == priced.num_pes


class TestReports:
    def test_json_round_trips(self, small_result):
        payload = json.loads(small_result.to_json())
        assert len(payload["points"]) == len(small_result)
        assert payload["axes"][0][0] == "blocks"
        first = payload["points"][0]
        assert first["metrics"]["fits"] is True

    def test_csv_has_header_and_all_rows(self, small_result):
        lines = small_result.to_csv().strip().split("\n")
        assert lines[0].startswith("index,design,platform")
        assert len(lines) == len(small_result) + 1

    def test_describe_mentions_counts_and_frontier(self, small_result):
        text = small_result.describe()
        assert "6 candidates" in text
        assert "Pareto" in text
        assert "top" in text

    def test_describe_lists_failures(self):
        result = (
            Sweep(Design.lstm(500)).over(blocks=[8])
            .run(mode="serial", engine=Engine())
        )
        assert "failed" in result.describe()

    def test_point_label(self, small_result):
        assert "blocks=" in small_result.points[0].label()

    def test_metric_accessor_none_for_uncompiled(self):
        point = EvaluatedPoint(0, (), None, None, 1.0, None, "boom")
        assert point.metric("fps") is None
        assert not point.ok

    def test_point_metrics_priced_property(self):
        m = PointMetrics(
            fits=True, weight_megabytes=1.0, feasible=True,
            bound_lower=4, bound_upper=64, normalized_mults=0.2,
            per_proxy=20.2,
        )
        assert not m.priced


class TestCLIExplore:
    def test_explore_default_grid_is_at_least_27_points(self, capsys):
        code = main([
            "explore", "--layers", "512", "--no-cache",
            "--mode", "serial", "--top", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        count = int(out.split(" candidates")[0].rsplit(" ", 1)[-1])
        assert count >= 27

    def test_explore_json_output(self, capsys):
        code = main([
            "explore", "--layers", "512", "--no-cache", "--mode", "serial",
            "--sweep-blocks", "8", "--sweep-bits", "12",
            "--sweep-platforms", "XCKU060", "--format", "json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["points"]) == 1

    def test_explore_csv_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "sweep.csv"
        code = main([
            "explore", "--layers", "512", "--no-cache", "--mode", "serial",
            "--sweep-blocks", "4", "8", "--sweep-bits", "12",
            "--sweep-platforms", "XCKU060",
            "--format", "csv", "-o", str(out_file),
        ])
        assert code == 0
        assert out_file.read_text().count("\n") == 3  # header + 2 rows

    def test_explore_random_subsample(self, capsys):
        code = main([
            "explore", "--layers", "512", "--no-cache", "--mode", "serial",
            "--random", "5", "--seed", "3",
        ])
        assert code == 0
        assert "5 candidates" in capsys.readouterr().out

    def test_explore_custom_objectives(self, capsys):
        code = main([
            "explore", "--layers", "512", "--no-cache", "--mode", "serial",
            "--sweep-blocks", "4", "8", "--sweep-bits", "12",
            "--objectives", "per_proxy,-fps",
        ])
        assert code == 0
        assert "per_proxy vs -fps" in capsys.readouterr().out

    def test_explore_uses_disk_cache_dir(self, tmp_path, capsys):
        args = [
            "explore", "--layers", "512", "--mode", "serial",
            "--sweep-blocks", "8", "--sweep-bits", "12",
            "--sweep-platforms", "XCKU060",
            "--cache-dir", str(tmp_path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert (tmp_path / "explorer").exists()
        assert main(args) == 0  # warm rerun reads the same artifacts
        assert "1 priced" in capsys.readouterr().out

    def test_explore_all_failed_exits_nonzero(self, capsys):
        code = main([
            "explore", "--layers", "500", "--no-cache", "--mode", "serial",
            "--sweep-blocks", "8", "--sweep-bits", "12",
            "--sweep-platforms", "XCKU060",
        ])
        assert code == 1
