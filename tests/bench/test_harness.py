"""The shared benchmark harness: timing core, registry, artifact format."""

import json

import pytest

from repro.bench import (
    BenchResult,
    TimingStats,
    benchmark_names,
    run_benchmarks,
    time_callable,
    write_result,
)
from repro.errors import ConfigError


class TestTimeCallable:
    def test_counts_and_stats(self):
        calls = []
        stats = time_callable(lambda: calls.append(1), warmup=2, repeats=5)
        assert len(calls) == 7
        assert stats.repeats == 5 and len(stats.times_s) == 5
        assert stats.best_s <= stats.median_s
        assert stats.best_s <= stats.mean_s
        assert all(t >= 0 for t in stats.times_s)

    def test_setup_runs_outside_timing(self):
        order = []
        time_callable(
            lambda: order.append("fn"),
            warmup=1,
            repeats=2,
            setup=lambda: order.append("setup"),
        )
        assert order == ["setup", "fn", "setup", "fn", "setup", "fn"]

    def test_validation(self):
        with pytest.raises(ConfigError):
            time_callable(lambda: None, warmup=-1)
        with pytest.raises(ConfigError):
            time_callable(lambda: None, repeats=0)

    def test_median_odd(self):
        stats = TimingStats(warmup=0, repeats=3, times_s=(3.0, 1.0, 2.0))
        assert stats.median_s == 2.0
        assert stats.best_s == 1.0


class TestRegistry:
    def test_builtin_suites_registered(self):
        names = benchmark_names()
        for expected in (
            "emulator_forward",
            "fft_matvec",
            "spectral_matvec",
            "engine_cache",
            "quantize_state",
            "per_eval",
        ):
            assert expected in names

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError, match="unknown benchmark"):
            run_benchmarks(["no-such-suite"])

    def test_quick_suite_runs(self):
        (result,) = run_benchmarks(["quantize_state"], quick=True)
        assert result.name == "quantize_state"
        assert result.quick
        assert result.metrics["speedup"] > 0
        assert set(result.timings) == {"refit_every_width", "stats_cache"}


class TestArtifacts:
    def test_write_result_schema(self, tmp_path):
        result = BenchResult("demo", metrics={"speedup": 2.0}, notes="n")
        result.add_timing(
            "fast", TimingStats(warmup=1, repeats=2, times_s=(0.1, 0.2))
        )
        path = write_result(result, tmp_path)
        assert path.name == "BENCH_demo.json"
        payload = json.loads(path.read_text())
        assert payload["name"] == "demo"
        assert payload["metrics"]["speedup"] == 2.0
        assert payload["timings"]["fast"]["repeats"] == 2
        assert payload["timings"]["fast"]["median_s"] == pytest.approx(0.15)
        assert payload["timings"]["fast"]["times_s"] == [0.1, 0.2]
        assert "python" in payload["environment"]
        assert "cpus" in payload["environment"]
        assert payload["created_unix"] > 0

    def test_describe_mentions_timings_and_metrics(self):
        result = BenchResult("demo", metrics={"speedup": 2.0})
        result.add_timing(
            "fast", TimingStats(warmup=0, repeats=1, times_s=(0.5,))
        )
        text = result.describe()
        assert "demo" in text and "fast" in text and "speedup" in text


class TestScalingPeak:
    """Worker-scaling is only reportable when the box has the cores.

    The guard behind the netserver suite's ``scaling_peak_vs_1w``: a
    1-CPU container once recorded a straight-faced ``1.0``, which reads
    as "scaling is broken" when it actually means "nothing was measured".
    """

    def test_measurable_box_reports_peak_ratio(self):
        from repro.bench.suites import _scaling_peak

        peak, note = _scaling_peak(8, (1, 2, 4), {1: 100.0, 2: 180.0, 4: 310.0})
        assert peak == 3.1
        assert note is None

    def test_underprovisioned_box_reports_null_with_reason(self):
        from repro.bench.suites import _scaling_peak

        peak, note = _scaling_peak(1, (1, 2), {1: 100.0, 2: 101.0})
        assert peak is None
        assert "1 CPU(s) < 2 workers" in note
        assert "re-record" in note

    def test_unknown_cpu_count_is_not_measurable(self):
        from repro.bench.suites import _scaling_peak

        peak, note = _scaling_peak(None, (1, 2), {1: 100.0, 2: 150.0})
        assert peak is None
        assert note is not None

    def test_exact_core_match_is_measurable(self):
        from repro.bench.suites import _scaling_peak

        peak, note = _scaling_peak(2, (1, 2), {1: 100.0, 2: 150.0})
        assert peak == 1.5
        assert note is None
