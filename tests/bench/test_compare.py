"""The bench-trajectory regression gate (`repro bench --compare`)."""

import json

import pytest

from repro.bench.compare import (
    DEFAULT_TIMING_THRESHOLD,
    ComparisonReport,
    compare_files,
    compare_results,
)
from repro.errors import ConfigError


def _artifact(name="suite", quick=False, cpus=4, timings=None, metrics=None):
    return {
        "name": name,
        "quick": quick,
        "environment": {"cpus": cpus, "python": "3.x"},
        "timings": {
            label: {"median_s": median, "repeats": 3}
            for label, median in (timings or {}).items()
        },
        "metrics": dict(metrics or {}),
    }


class TestVerdicts:
    def test_identical_artifacts_pass(self):
        art = _artifact(timings={"fwd": 0.5}, metrics={"w1_fps": 100.0})
        report = compare_results(art, art)
        assert report.ok
        assert report.timings_judged

    def test_timing_regression_fails(self):
        old = _artifact(timings={"fwd": 0.5})
        new = _artifact(timings={"fwd": 0.5 * (1 + DEFAULT_TIMING_THRESHOLD)
                                 * 1.05})
        report = compare_results(old, new)
        assert not report.ok
        [delta] = report.regressions
        assert delta.name == "timings.fwd"
        assert delta.kind == "regression"

    def test_slowdown_within_threshold_passes(self):
        old = _artifact(timings={"fwd": 0.5})
        new = _artifact(timings={"fwd": 0.55})  # 10% — noise
        assert compare_results(old, new).ok

    def test_improvement_is_reported_not_gated(self):
        old = _artifact(timings={"fwd": 1.0})
        new = _artifact(timings={"fwd": 0.2})
        report = compare_results(old, new)
        assert report.ok
        assert any(d.kind == "improvement" for d in report.deltas)


class TestMetricDirections:
    def test_lower_is_better_suffixes_gate_increases(self):
        old = _artifact(metrics={"p50_ms": 10.0})
        new = _artifact(metrics={"p50_ms": 20.0})
        assert not compare_results(old, new).ok
        # decreasing a latency is an improvement, not a regression
        assert compare_results(new, old).ok

    def test_higher_is_better_gates_decreases(self):
        old = _artifact(metrics={"w1_fps": 1000.0, "p50_speedup": 2.0})
        worse = _artifact(metrics={"w1_fps": 400.0, "p50_speedup": 2.0})
        report = compare_results(old, worse)
        assert [d.name for d in report.regressions] == ["metrics.w1_fps"]

    def test_undirected_metrics_only_need_presence(self):
        old = _artifact(metrics={"clients": 8, "note": "hi", "peak": None})
        new = _artifact(metrics={"clients": 99, "note": "other", "peak": 3})
        assert compare_results(old, new).ok  # values differ, no direction


class TestStructuralChecks:
    def test_missing_timing_fails_even_when_quick_differs(self):
        old = _artifact(timings={"fwd": 0.5, "bwd": 0.4})
        new = _artifact(quick=True, timings={"fwd": 0.1})
        report = compare_results(old, new)
        assert not report.ok
        [delta] = report.regressions
        assert delta.name == "timings.bwd"
        assert delta.kind == "missing"

    def test_missing_metric_fails(self):
        old = _artifact(metrics={"w1_fps": 100.0})
        new = _artifact(metrics={})
        assert not compare_results(old, new).ok

    def test_new_metric_is_a_note(self):
        old = _artifact(metrics={})
        new = _artifact(metrics={"w1_fps": 100.0})
        report = compare_results(old, new)
        assert report.ok
        assert any(d.kind == "note" for d in report.deltas)

    def test_suite_name_mismatch_is_an_error(self):
        with pytest.raises(ConfigError, match="like against like"):
            compare_results(_artifact(name="a"), _artifact(name="b"))


class TestNoiseAwareness:
    def test_quick_mismatch_skips_timing_judgement(self):
        old = _artifact(timings={"fwd": 0.5})
        new = _artifact(quick=True, timings={"fwd": 5.0})  # 10x "slower"
        report = compare_results(old, new)
        assert report.ok
        assert not report.timings_judged
        assert any("quick" in note for note in report.notes)

    def test_cpu_mismatch_skips_timing_judgement(self):
        old = _artifact(cpus=1, timings={"fwd": 0.5})
        new = _artifact(cpus=16, timings={"fwd": 5.0})
        report = compare_results(old, new)
        assert report.ok
        assert not report.timings_judged

    def test_sub_noise_floor_timings_never_gate(self):
        old = _artifact(timings={"tiny": 2e-5})
        new = _artifact(timings={"tiny": 2e-4})  # 10x, but microseconds
        report = compare_results(old, new)
        assert report.ok

    def test_custom_threshold(self):
        old = _artifact(timings={"fwd": 1.0})
        new = _artifact(timings={"fwd": 1.2})
        assert compare_results(old, new).ok
        assert not compare_results(old, new, timing_threshold=0.1).ok


class TestFilesAndFormat:
    def test_compare_files_roundtrip(self, tmp_path):
        old = _artifact(timings={"fwd": 1.0})
        new = _artifact(timings={"fwd": 5.0})
        old_path = tmp_path / "BENCH_old.json"
        new_path = tmp_path / "BENCH_new.json"
        old_path.write_text(json.dumps(old))
        new_path.write_text(json.dumps(new))
        report = compare_files(old_path, new_path)
        assert not report.ok
        text = report.format()
        assert "FAIL" in text and "timings.fwd" in text

    def test_missing_file_is_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="does not exist"):
            compare_files(tmp_path / "nope.json", tmp_path / "nope2.json")

    def test_non_bench_json_is_config_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]")
        with pytest.raises(ConfigError, match="name"):
            compare_files(bad, bad)

    def test_format_mentions_unjudged_timings(self):
        old = _artifact(timings={"fwd": 1.0})
        new = _artifact(quick=True, timings={"fwd": 1.0})
        report = compare_results(old, new)
        assert isinstance(report, ComparisonReport)
        assert "timings not judged" in report.format()
