"""Linear, DiagonalLinear and CirculantLinear layer tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.nn.autograd import Tensor, gradcheck
from repro.nn.circulant_layer import CirculantLinear
from repro.nn.linear import DiagonalLinear, Linear


class TestLinear:
    def test_forward_shape_and_value(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = rng.standard_normal((2, 4))
        out = layer(Tensor(x))
        assert out.shape == (2, 3)
        assert np.allclose(out.data, x @ layer.weight.data.T + layer.bias.data)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, bias=False, rng=rng)
        assert layer.bias is None

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ShapeError):
            Linear(4, 3, rng=rng)(Tensor(np.ones((2, 5))))

    def test_gradcheck(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        assert gradcheck(lambda t: layer(t), [x])


class TestDiagonalLinear:
    def test_is_pointwise_multiplication(self, rng):
        layer = DiagonalLinear(5, rng=rng)
        x = rng.standard_normal((3, 5))
        assert np.allclose(layer(Tensor(x)).data, x * layer.weight.data)

    def test_equals_diagonal_matrix_product(self, rng):
        layer = DiagonalLinear(4, rng=rng)
        x = rng.standard_normal(4)
        expected = np.diag(layer.weight.data) @ x
        assert np.allclose(layer(Tensor(x)).data, expected)

    def test_wrong_width_raises(self, rng):
        with pytest.raises(ShapeError):
            DiagonalLinear(4, rng=rng)(Tensor(np.ones(5)))


class TestCirculantLinear:
    def test_forward_matches_dense_materialization(self, rng):
        layer = CirculantLinear(8, 12, block_size=4, rng=rng)
        x = rng.standard_normal((3, 8))
        expected = x @ layer.weight_matrix().T + layer.bias.data
        assert np.allclose(layer(Tensor(x)).data, expected)

    def test_padding_of_ragged_dims(self, rng):
        layer = CirculantLinear(6, 10, block_size=4, rng=rng)
        assert layer.padded_in == 8 and layer.padded_out == 12
        out = layer(Tensor(rng.standard_normal((2, 6))))
        assert out.shape == (2, 10)

    def test_compression_ratio(self, rng):
        layer = CirculantLinear(16, 16, block_size=4, rng=rng)
        assert layer.compression_ratio() == pytest.approx(4.0)

    def test_from_dense_projection_is_exact_for_circulant_input(self, rng):
        original = CirculantLinear(8, 8, block_size=4, rng=rng)
        rebuilt = CirculantLinear.from_dense(original.weight_matrix(), 4)
        assert np.allclose(
            rebuilt.weight_vectors.data, original.weight_vectors.data
        )

    def test_from_dense_bias_shape_checked(self, rng):
        with pytest.raises(ShapeError):
            CirculantLinear.from_dense(np.ones((4, 4)), 2, bias=np.ones(3))

    def test_gradcheck_through_layer(self, rng):
        layer = CirculantLinear(4, 4, block_size=2, rng=rng)
        x = Tensor(rng.standard_normal((2, 4)), requires_grad=True)
        assert gradcheck(lambda t: layer(t), [x])

    def test_training_reduces_loss(self, rng):
        """The circulant parametrization must be trainable end to end."""
        from repro.nn.optim import Adam

        layer = CirculantLinear(8, 8, block_size=4, rng=rng)
        x = rng.standard_normal((16, 8))
        target = rng.standard_normal((16, 8))
        optimizer = Adam(layer.parameters(), lr=0.05)
        first_loss = None
        for _ in range(50):
            optimizer.zero_grad()
            diff = layer(Tensor(x)) - Tensor(target)
            loss = (diff * diff).sum()
            loss.backward()
            optimizer.step()
            if first_loss is None:
                first_loss = loss.item()
        assert loss.item() < 0.5 * first_loss

    @settings(max_examples=10, deadline=None)
    @given(
        log_block=st.integers(1, 3),
        p=st.integers(1, 3),
        q=st.integers(1, 3),
        seed=st.integers(0, 1000),
    )
    def test_property_forward_equals_dense(self, log_block, p, q, seed):
        block = 2**log_block
        local = np.random.default_rng(seed)
        layer = CirculantLinear(q * block, p * block, block, rng=local)
        x = local.standard_normal((2, q * block))
        expected = x @ layer.weight_matrix().T + layer.bias.data
        assert np.allclose(layer(Tensor(x)).data, expected, atol=1e-9)
