"""LSTM/GRU cell semantics: shapes, gating behaviour, options, gradients."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn.autograd import Tensor, gradcheck
from repro.nn.circulant_layer import CirculantLinear
from repro.nn.gru import GRUCell
from repro.nn.linear import Linear
from repro.nn.lstm import LSTMCell, make_weight_layer


class TestMakeWeightLayer:
    def test_dense_for_block_one(self, rng):
        assert isinstance(make_weight_layer(4, 8, 1, rng), Linear)

    def test_circulant_for_larger_blocks(self, rng):
        layer = make_weight_layer(4, 8, 4, rng)
        assert isinstance(layer, CirculantLinear)
        assert layer.block_size == 4


class TestLSTMCell:
    def test_output_shapes(self, rng):
        cell = LSTMCell(5, 8, rng=rng)
        state = cell.initial_state(3)
        out, (y, c) = cell(Tensor(rng.standard_normal((3, 5))), state)
        assert out.shape == (3, 8)
        assert y.shape == (3, 8) and c.shape == (3, 8)

    def test_projection_shapes(self, rng):
        cell = LSTMCell(5, 8, projection_size=4, rng=rng)
        out, (y, c) = cell(
            Tensor(rng.standard_normal((2, 5))), cell.initial_state(2)
        )
        assert out.shape == (2, 4)
        assert c.shape == (2, 8)

    def test_peephole_changes_output(self, rng):
        x = rng.standard_normal((2, 5))
        plain = LSTMCell(5, 8, peephole=False, rng=np.random.default_rng(3))
        peep = LSTMCell(5, 8, peephole=True, rng=np.random.default_rng(3))
        # Run two steps so the nonzero cell state engages the peepholes.
        state_a = plain.initial_state(2)
        state_b = peep.initial_state(2)
        for _ in range(2):
            out_a, state_a = plain(Tensor(x), state_a)
            out_b, state_b = peep(Tensor(x), state_b)
        assert not np.allclose(out_a.data, out_b.data)

    def test_outputs_bounded_by_gates(self, rng):
        """|m_t| = |o_t * tanh(c_t)| <= 1 always."""
        cell = LSTMCell(4, 6, rng=rng)
        state = cell.initial_state(2)
        for _ in range(20):
            out, state = cell(Tensor(10 * rng.standard_normal((2, 4))), state)
        assert np.all(np.abs(out.data) <= 1.0 + 1e-12)

    def test_forget_gate_zero_kills_memory(self, rng):
        """With saturated-off forget and input gates, the cell state dies."""
        cell = LSTMCell(3, 4, rng=rng)
        cell.bias.data[:] = 0.0
        cell.bias.data[4:8] = -50.0  # forget gate off
        cell.bias.data[0:4] = -50.0  # input gate off
        state = (Tensor(np.zeros((1, 4))), Tensor(np.ones((1, 4))))
        _, (_, c) = cell(Tensor(np.zeros((1, 3))), state)
        assert np.all(np.abs(c.data) < 1e-10)

    def test_candidate_activation_option(self, rng):
        sig = LSTMCell(3, 4, candidate_activation="sigmoid",
                       rng=np.random.default_rng(1))
        tan = LSTMCell(3, 4, candidate_activation="tanh",
                       rng=np.random.default_rng(1))
        x = Tensor(rng.standard_normal((1, 3)))
        out_s, _ = sig(x, sig.initial_state(1))
        out_t, _ = tan(x, tan.initial_state(1))
        assert not np.allclose(out_s.data, out_t.data)

    def test_unknown_activation_rejected(self, rng):
        with pytest.raises(ConfigError):
            LSTMCell(3, 4, candidate_activation="relu", rng=rng)

    def test_block_circulant_cell_runs(self, rng):
        cell = LSTMCell(8, 8, block_size=4, rng=rng)
        out, _ = cell(Tensor(rng.standard_normal((2, 8))), cell.initial_state(2))
        assert out.shape == (2, 8)

    def test_separate_io_block_size(self, rng):
        cell = LSTMCell(8, 8, block_size=4, input_block_size=8, rng=rng)
        assert cell.w_x.block_size == 8
        assert cell.w_r.block_size == 4

    def test_weight_layer_roles(self, rng):
        cell = LSTMCell(8, 8, projection_size=4, rng=rng)
        roles = dict((name, role) for name, _, role in cell.weight_layer_roles())
        assert roles == {"w_x": "input", "w_r": "recurrent", "w_ym": "output"}

    def test_gradient_flows_through_time(self, rng):
        cell = LSTMCell(3, 4, rng=rng)

        def unroll(x):
            state = cell.initial_state(1)
            out = None
            for t in range(3):
                out, state = cell(x[t], state)
            return out

        x = Tensor(rng.standard_normal((3, 1, 3)), requires_grad=True)
        assert gradcheck(unroll, [x], atol=1e-5)


class TestGRUCell:
    def test_output_is_state(self, rng):
        cell = GRUCell(5, 6, rng=rng)
        out, state = cell(Tensor(rng.standard_normal((2, 5))), cell.initial_state(2))
        assert out is state
        assert out.shape == (2, 6)

    def test_update_gate_convex_combination(self, rng):
        """c_t lies between c_{t-1} and c̃_t elementwise."""
        cell = GRUCell(4, 5, rng=rng)
        c_prev = Tensor(rng.standard_normal((3, 5)))
        out, _ = cell(Tensor(rng.standard_normal((3, 4))), c_prev)
        # |c_t| cannot exceed max(|c_prev|, 1) since |c̃| <= 1.
        bound = np.maximum(np.abs(c_prev.data), 1.0)
        assert np.all(np.abs(out.data) <= bound + 1e-12)

    def test_saturated_update_gate_keeps_state(self, rng):
        cell = GRUCell(3, 4, rng=rng)
        cell.bias_zr.data[0:4] = -50.0  # z ~ 0 -> keep previous state
        c_prev = Tensor(rng.standard_normal((1, 4)))
        out, _ = cell(Tensor(np.zeros((1, 3))), c_prev)
        assert np.allclose(out.data, c_prev.data, atol=1e-6)

    def test_block_circulant_gru(self, rng):
        cell = GRUCell(8, 8, block_size=4, rng=rng)
        out, _ = cell(Tensor(rng.standard_normal((2, 8))), cell.initial_state(2))
        assert out.shape == (2, 8)

    def test_weight_layer_roles(self, rng):
        roles = {r for _, _, r in GRUCell(4, 4, rng=rng).weight_layer_roles()}
        assert roles == {"input", "recurrent"}

    def test_gradient_flows_through_time(self, rng):
        cell = GRUCell(3, 4, rng=rng)

        def unroll(x):
            state = cell.initial_state(1)
            out = None
            for t in range(3):
                out, state = cell(x[t], state)
            return out

        x = Tensor(rng.standard_normal((3, 1, 3)), requires_grad=True)
        assert gradcheck(unroll, [x], atol=1e-5)
