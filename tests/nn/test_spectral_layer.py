"""FFT-domain circulant layer (the C-LSTM parametrization)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.autograd import Tensor, gradcheck, no_grad
from repro.nn.circulant_layer import CirculantLinear
from repro.nn.spectral_layer import SpectralCirculantLinear


class TestEquivalence:
    def test_from_circulant_is_exact(self, rng):
        time_layer = CirculantLinear(8, 12, block_size=4, rng=rng)
        spectral = SpectralCirculantLinear.from_circulant(time_layer)
        x = rng.standard_normal((3, 8))
        with no_grad():
            a = time_layer(Tensor(x)).data
            b = spectral(Tensor(x)).data
        assert np.allclose(a, b, atol=1e-10)

    def test_round_trip_conversion(self, rng):
        spectral = SpectralCirculantLinear(8, 8, 4, rng=rng)
        rebuilt = SpectralCirculantLinear.from_circulant(spectral.to_circulant())
        x = rng.standard_normal((2, 8))
        with no_grad():
            assert np.allclose(
                spectral(Tensor(x)).data, rebuilt(Tensor(x)).data, atol=1e-10
            )

    def test_padding_of_ragged_dims(self, rng):
        layer = SpectralCirculantLinear(6, 10, block_size=4, rng=rng)
        out = layer(Tensor(rng.standard_normal((2, 6))))
        assert out.shape == (2, 10)

    def test_shape_check(self, rng):
        layer = SpectralCirculantLinear(8, 8, 4, rng=rng)
        with pytest.raises(ShapeError):
            layer(Tensor(np.zeros((1, 9))))


class TestGradients:
    def test_gradcheck_input(self, rng):
        layer = SpectralCirculantLinear(4, 4, block_size=2, bias=False, rng=rng)
        x = Tensor(rng.standard_normal((2, 4)), requires_grad=True)
        assert gradcheck(lambda t: layer(t), [x], atol=1e-5)

    def test_gradcheck_spectra(self, rng):
        layer = SpectralCirculantLinear(8, 8, block_size=4, bias=False, rng=rng)
        x = rng.standard_normal((3, 8))

        def fn(spec_re, spec_im):
            layer.spec_re.data = spec_re.data
            layer.spec_im.data = spec_im.data
            # Route gradients through the layer's parameters.
            layer.spec_re.zero_grad()
            layer.spec_im.zero_grad()
            out = layer(Tensor(x))
            return out

        # gradcheck on the layer's own parameters directly:
        layer.spec_re.zero_grad()
        layer.spec_im.zero_grad()
        out = layer(Tensor(x))
        out.sum().backward()
        analytic_re = layer.spec_re.grad.copy()
        analytic_im = layer.spec_im.grad.copy()

        eps = 1e-6
        for param, analytic in (
            (layer.spec_re, analytic_re),
            (layer.spec_im, analytic_im),
        ):
            numeric = np.zeros_like(param.data)
            flat = param.data.reshape(-1)
            numeric_flat = numeric.reshape(-1)
            for k in range(flat.size):
                original = flat[k]
                flat[k] = original + eps
                with no_grad():
                    plus = float(layer(Tensor(x)).sum().item())
                flat[k] = original - eps
                with no_grad():
                    minus = float(layer(Tensor(x)).sum().item())
                flat[k] = original
                numeric_flat[k] = (plus - minus) / (2 * eps)
            assert np.allclose(analytic, numeric, atol=1e-5), (
                "spectral-parameter gradient mismatch"
            )

    def test_edge_bins_have_no_imaginary_gradient(self, rng):
        """DC/Nyquist imaginary parts are not degrees of freedom."""
        layer = SpectralCirculantLinear(4, 4, block_size=4, bias=False, rng=rng)
        out = layer(Tensor(rng.standard_normal((2, 4))))
        out.sum().backward()
        assert np.allclose(layer.spec_im.grad[..., 0], 0.0)
        assert np.allclose(layer.spec_im.grad[..., -1], 0.0)


class TestTraining:
    def test_spectral_training_reduces_loss(self, rng):
        from repro.nn.optim import Adam

        layer = SpectralCirculantLinear(8, 8, block_size=4, rng=rng)
        x = rng.standard_normal((16, 8))
        target = rng.standard_normal((16, 8))
        optimizer = Adam(layer.parameters(), lr=0.05)
        first = None
        for _ in range(60):
            optimizer.zero_grad()
            diff = layer(Tensor(x)) - Tensor(target)
            loss = (diff * diff).sum()
            loss.backward()
            optimizer.step()
            if first is None:
                first = loss.item()
        assert loss.item() < 0.5 * first

    def test_matches_time_domain_optimum(self, rng):
        """Both parametrizations reach the same least-squares optimum."""
        from repro.nn.optim import Adam

        x = rng.standard_normal((32, 8))
        target = rng.standard_normal((32, 8))

        def train(layer):
            optimizer = Adam(layer.parameters(), lr=0.05)
            for _ in range(300):
                optimizer.zero_grad()
                diff = layer(Tensor(x)) - Tensor(target)
                (diff * diff).sum().backward()
                optimizer.step()
            with no_grad():
                diff = layer(Tensor(x)) - Tensor(target)
                return (diff * diff).sum().item()

        time_loss = train(CirculantLinear(8, 8, 4, rng=np.random.default_rng(1)))
        spec_loss = train(
            SpectralCirculantLinear(8, 8, 4, rng=np.random.default_rng(1))
        )
        assert spec_loss == pytest.approx(time_loss, rel=0.05)
