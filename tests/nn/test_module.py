"""Module/Parameter container semantics."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.linear import Linear
from repro.nn.module import Module, Parameter


class Toy(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones((2, 3)))
        self.inner = Linear(3, 2)

    def forward(self, x):
        return self.inner(x)


class TestModule:
    def test_parameter_requires_grad(self):
        assert Parameter(np.ones(3)).requires_grad

    def test_named_parameters_recursive(self):
        names = dict(Toy().named_parameters())
        assert "weight" in names
        assert "inner.weight" in names
        assert "inner.bias" in names

    def test_num_parameters(self):
        toy = Toy()
        assert toy.num_parameters() == 6 + 6 + 2

    def test_state_dict_round_trip(self, rng):
        source, target = Toy(), Toy()
        for param in source.parameters():
            param.data = rng.standard_normal(param.data.shape)
        target.load_state_dict(source.state_dict())
        for (_, a), (_, b) in zip(
            source.named_parameters(), target.named_parameters()
        ):
            assert np.array_equal(a.data, b.data)

    def test_state_dict_copies_not_aliases(self):
        toy = Toy()
        state = toy.state_dict()
        state["weight"][0, 0] = 99.0
        assert toy.weight.data[0, 0] == 1.0

    def test_load_rejects_missing_keys(self):
        toy = Toy()
        state = toy.state_dict()
        del state["weight"]
        with pytest.raises(ShapeError):
            toy.load_state_dict(state)

    def test_load_rejects_bad_shape(self):
        toy = Toy()
        state = toy.state_dict()
        state["weight"] = np.zeros((1, 1))
        with pytest.raises(ShapeError):
            toy.load_state_dict(state)

    def test_zero_grad_clears_all(self, rng):
        toy = Toy()
        out = toy(np.ones((1, 3))).sum()
        out.backward()
        assert any(p.grad is not None for p in toy.parameters())
        toy.zero_grad()
        assert all(p.grad is None for p in toy.parameters())

    def test_named_modules(self):
        names = [name for name, _ in Toy().named_modules()]
        assert "" in names and "inner" in names
