"""Weight initializers: statistical and structural properties."""

import numpy as np
import pytest

from repro.nn.init import orthogonal, uniform, xavier_uniform, zeros


class TestXavier:
    def test_bound_respected(self, rng):
        weights = xavier_uniform(rng, (64, 32))
        bound = np.sqrt(6.0 / (64 + 32))
        assert np.abs(weights).max() <= bound

    def test_gain_scales(self, rng):
        a = np.abs(xavier_uniform(rng, (64, 64), gain=1.0)).max()
        b = np.abs(
            xavier_uniform(np.random.default_rng(1234), (64, 64), gain=2.0)
        ).max()
        assert b > a

    def test_1d_shape(self, rng):
        assert xavier_uniform(rng, (16,)).shape == (16,)

    def test_deterministic_per_generator_state(self):
        a = xavier_uniform(np.random.default_rng(5), (8, 8))
        b = xavier_uniform(np.random.default_rng(5), (8, 8))
        assert np.array_equal(a, b)


class TestOrthogonal:
    def test_square_is_orthogonal(self, rng):
        q = orthogonal(rng, (32, 32))
        assert np.allclose(q @ q.T, np.eye(32), atol=1e-10)

    def test_rectangular_has_orthonormal_rows_or_cols(self, rng):
        tall = orthogonal(rng, (32, 16))
        assert np.allclose(tall.T @ tall, np.eye(16), atol=1e-10)

    def test_gain(self, rng):
        q = orthogonal(rng, (16, 16), gain=3.0)
        assert np.allclose(q @ q.T, 9.0 * np.eye(16), atol=1e-9)


class TestOthers:
    def test_uniform_bound(self, rng):
        values = uniform(rng, (100,), 0.25)
        assert np.abs(values).max() <= 0.25

    def test_zeros(self):
        assert not zeros((3, 4)).any()
        assert zeros((3, 4)).shape == (3, 4)
