"""Tests for stateless NN functions (softmax family, one-hot)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.nn.autograd import Tensor, gradcheck
from repro.nn.functional import log_softmax, one_hot, sigmoid, softmax, tanh


class TestActivations:
    def test_sigmoid_range_and_symmetry(self, rng):
        x = rng.standard_normal(100) * 10
        y = sigmoid(Tensor(x)).data
        assert np.all((y > 0) & (y < 1))
        assert np.allclose(y + sigmoid(Tensor(-x)).data, 1.0)

    def test_sigmoid_extreme_values_stable(self):
        y = sigmoid(Tensor([-1000.0, 1000.0])).data
        assert np.all(np.isfinite(y))
        assert y[0] < 1e-10 and y[1] > 1 - 1e-10

    def test_tanh_matches_numpy(self, rng):
        x = rng.standard_normal(50)
        assert np.allclose(tanh(Tensor(x)).data, np.tanh(x))


class TestSoftmax:
    def test_softmax_sums_to_one(self, rng):
        probs = softmax(Tensor(rng.standard_normal((4, 7)))).data
        assert np.allclose(probs.sum(axis=-1), 1.0)
        assert np.all(probs >= 0)

    def test_log_softmax_shift_invariance(self, rng):
        x = rng.standard_normal((3, 5))
        a = log_softmax(Tensor(x)).data
        b = log_softmax(Tensor(x + 100.0)).data
        assert np.allclose(a, b)

    def test_log_softmax_stable_for_large_logits(self):
        out = log_softmax(Tensor([[1e4, 0.0, -1e4]])).data
        assert np.all(np.isfinite(out))

    def test_log_softmax_gradcheck(self, rng):
        x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        assert gradcheck(lambda t: log_softmax(t) * 0.1, [x])

    def test_log_softmax_axis(self, rng):
        x = rng.standard_normal((3, 4))
        out = log_softmax(Tensor(x), axis=0).data
        assert np.allclose(np.exp(out).sum(axis=0), 1.0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(2, 10))
    def test_property_softmax_is_exp_log_softmax(self, seed, n):
        x = np.random.default_rng(seed).standard_normal(n)
        assert np.allclose(
            softmax(Tensor(x)).data, np.exp(log_softmax(Tensor(x)).data)
        )


class TestOneHot:
    def test_round_trip(self):
        labels = np.array([0, 2, 1])
        encoded = one_hot(labels, 3)
        assert encoded.shape == (3, 3)
        assert np.array_equal(encoded.argmax(axis=-1), labels)

    def test_out_of_range_rejected(self):
        with pytest.raises(ShapeError):
            one_hot(np.array([3]), 3)
        with pytest.raises(ShapeError):
            one_hot(np.array([-1]), 3)

    def test_multidim_labels(self):
        labels = np.array([[0, 1], [2, 0]])
        assert one_hot(labels, 3).shape == (2, 2, 3)
