"""Stacked classifier: construction from specs, targets, conversion."""

import numpy as np
import pytest

from repro.config import RNNSpec
from repro.errors import ConfigError, ShapeError
from repro.nn.autograd import Tensor, no_grad
from repro.nn.circulant_layer import CirculantLinear
from repro.nn.linear import Linear
from repro.nn.rnn import StackedRNNClassifier, convert_to_circulant


def spec_dense(cell="lstm"):
    return RNNSpec(cell, 6, (8, 8), 5)


def spec_circ(cell="lstm"):
    return RNNSpec(cell, 6, (8, 8), 5, block_sizes=(4, 4))


class TestConstruction:
    def test_dense_model_uses_linear(self, rng):
        model = StackedRNNClassifier(spec_circ(), structured=False, rng=rng)
        assert isinstance(model.cells[0].w_r, Linear)

    def test_structured_model_uses_circulant(self, rng):
        model = StackedRNNClassifier(spec_circ(), structured=True, rng=rng)
        assert isinstance(model.cells[0].w_r, CirculantLinear)
        assert model.cells[0].w_r.block_size == 4

    def test_gru_stack(self, rng):
        model = StackedRNNClassifier(spec_dense("gru"), rng=rng)
        out = model(np.random.default_rng(0).standard_normal((4, 2, 6)))
        assert out.shape == (4, 2, 5)

    def test_io_block_size_applied_to_input_matrices(self, rng):
        spec = spec_circ().with_io_block_size(8)
        model = StackedRNNClassifier(spec, structured=True, rng=rng)
        assert model.cells[0].w_x.block_size == 8
        assert model.cells[0].w_r.block_size == 4

    def test_forward_shape(self, rng):
        model = StackedRNNClassifier(spec_dense(), rng=rng)
        out = model(np.random.default_rng(0).standard_normal((7, 3, 6)))
        assert out.shape == (7, 3, 5)

    def test_forward_rejects_2d(self, rng):
        model = StackedRNNClassifier(spec_dense(), rng=rng)
        with pytest.raises(ShapeError):
            model(np.zeros((3, 6)))


class TestStructuredTargets:
    def test_targets_only_for_blocked_matrices(self, rng):
        model = StackedRNNClassifier(spec_circ(), rng=rng)
        names = {t.name for t in model.structured_targets()}
        assert names == {
            "cell0.w_x.weight",
            "cell0.w_r.weight",
            "cell1.w_x.weight",
            "cell1.w_r.weight",
        }

    def test_dense_spec_yields_no_targets(self, rng):
        model = StackedRNNClassifier(spec_dense(), rng=rng)
        assert model.structured_targets() == []

    def test_structured_model_rejects_targets(self, rng):
        model = StackedRNNClassifier(spec_circ(), structured=True, rng=rng)
        with pytest.raises(ConfigError):
            model.structured_targets()

    def test_target_block_sizes(self, rng):
        spec = spec_circ().with_io_block_size(8)
        model = StackedRNNClassifier(spec, rng=rng)
        blocks = {t.name: t.block_size for t in model.structured_targets()}
        assert blocks["cell0.w_x.weight"] == 8
        assert blocks["cell0.w_r.weight"] == 4


class TestConversion:
    def test_convert_preserves_output_when_weights_circulant(self, rng):
        """Projection of an already-circulant dense model is lossless.

        Dimensions are multiples of the block size here: with ragged dims the
        zero-padding makes double projection non-idempotent by design (the
        padded region participates in the diagonal means).
        """
        from repro.core.projection import project_to_block_circulant

        spec = RNNSpec("lstm", 8, (8, 8), 5, block_sizes=(4, 4))
        dense = StackedRNNClassifier(spec, rng=rng)
        for target in dense.structured_targets():
            target.parameter.data = project_to_block_circulant(
                target.parameter.data, target.block_size
            )
        structured = convert_to_circulant(dense)
        x = np.random.default_rng(1).standard_normal((4, 2, 8))
        with no_grad():
            a = dense(x).data
            b = structured(x).data
        assert np.allclose(a, b, atol=1e-8)

    def test_convert_copies_untargeted_parameters(self, rng):
        dense = StackedRNNClassifier(spec_circ(), rng=rng)
        structured = convert_to_circulant(dense)
        assert np.array_equal(
            structured.classifier.weight.data, dense.classifier.weight.data
        )
        assert np.array_equal(
            structured.cells[0].bias.data, dense.cells[0].bias.data
        )

    def test_param_count_shrinks_by_block_size(self, rng):
        dense = StackedRNNClassifier(spec_circ(), rng=rng)
        structured = convert_to_circulant(dense)
        dense_w = dense.cells[0].w_r.weight.size
        struct_w = structured.cells[0].w_r.weight_vectors.size
        assert dense_w == 4 * struct_w
