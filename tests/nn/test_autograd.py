"""Autograd engine tests: every primitive gradchecked against finite diffs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.nn.autograd import (
    Tensor,
    as_tensor,
    block_circulant_matvec,
    concat,
    gradcheck,
    is_grad_enabled,
    no_grad,
)


def _param(rng, *shape):
    return Tensor(rng.standard_normal(shape), requires_grad=True)


class TestBasicOps:
    def test_add_values(self, rng):
        a, b = rng.standard_normal(5), rng.standard_normal(5)
        assert np.allclose((Tensor(a) + Tensor(b)).data, a + b)

    def test_scalar_radd_rmul(self):
        t = Tensor([1.0, 2.0])
        assert np.allclose((3.0 + t).data, [4.0, 5.0])
        assert np.allclose((3.0 * t).data, [3.0, 6.0])

    def test_sub_and_div(self, rng):
        a, b = rng.standard_normal(4), rng.standard_normal(4) + 2.0
        assert np.allclose((Tensor(a) - Tensor(b)).data, a - b)
        assert np.allclose((Tensor(a) / Tensor(b)).data, a / b)

    def test_pow_rejects_array_exponent(self, rng):
        with pytest.raises(ShapeError):
            _param(rng, 3) ** np.ones(3)

    def test_matmul_2d(self, rng):
        a, b = rng.standard_normal((3, 4)), rng.standard_normal((4, 2))
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_getitem(self, rng):
        a = _param(rng, 4, 6)
        assert a[1:3].shape == (2, 6)

    def test_reshape_transpose(self, rng):
        a = Tensor(rng.standard_normal((2, 6)))
        assert a.reshape(3, 4).shape == (3, 4)
        assert a.T.shape == (6, 2)


class TestGradients:
    def test_add_gradcheck(self, rng):
        assert gradcheck(lambda a, b: a + b, [_param(rng, 3, 4), _param(rng, 3, 4)])

    def test_broadcast_add_gradcheck(self, rng):
        assert gradcheck(lambda a, b: a + b, [_param(rng, 3, 4), _param(rng, 4)])

    def test_mul_gradcheck(self, rng):
        assert gradcheck(lambda a, b: a * b, [_param(rng, 2, 5), _param(rng, 2, 5)])

    def test_div_gradcheck(self, rng):
        b = Tensor(rng.standard_normal((3,)) + 3.0, requires_grad=True)
        assert gradcheck(lambda a, b: a / b, [_param(rng, 3), b])

    def test_matmul_gradcheck(self, rng):
        assert gradcheck(lambda a, b: a @ b, [_param(rng, 3, 4), _param(rng, 4, 2)])

    def test_matvec_gradcheck(self, rng):
        assert gradcheck(lambda a, b: a @ b, [_param(rng, 3, 4), _param(rng, 4)])

    def test_vecmat_gradcheck(self, rng):
        assert gradcheck(lambda a, b: a @ b, [_param(rng, 4), _param(rng, 4, 3)])

    def test_tanh_gradcheck(self, rng):
        assert gradcheck(lambda a: a.tanh(), [_param(rng, 6)])

    def test_sigmoid_gradcheck(self, rng):
        assert gradcheck(lambda a: a.sigmoid(), [_param(rng, 6)])

    def test_exp_log_gradcheck(self, rng):
        positive = Tensor(np.abs(rng.standard_normal(5)) + 0.5, requires_grad=True)
        assert gradcheck(lambda a: a.exp(), [_param(rng, 5)])
        assert gradcheck(lambda a: a.log(), [positive])

    def test_relu_gradcheck(self, rng):
        # Keep values away from the kink where finite differences break.
        data = rng.standard_normal(8)
        data[np.abs(data) < 0.1] += 0.5
        assert gradcheck(lambda a: a.relu(), [Tensor(data, requires_grad=True)])

    def test_sum_axis_gradcheck(self, rng):
        assert gradcheck(lambda a: a.sum(axis=1), [_param(rng, 3, 5)])

    def test_mean_gradcheck(self, rng):
        assert gradcheck(lambda a: a.mean(axis=0, keepdims=True), [_param(rng, 4, 3)])

    def test_reshape_gradcheck(self, rng):
        assert gradcheck(lambda a: a.reshape(6, 2) * 2.0, [_param(rng, 3, 4)])

    def test_transpose_gradcheck(self, rng):
        assert gradcheck(lambda a: a.transpose(1, 0).sum(axis=0), [_param(rng, 3, 4)])

    def test_getitem_gradcheck(self, rng):
        assert gradcheck(lambda a: a[1:3] * 3.0, [_param(rng, 5, 2)])

    def test_concat_gradcheck(self, rng):
        assert gradcheck(
            lambda a, b: concat([a, b], axis=-1),
            [_param(rng, 2, 3), _param(rng, 2, 4)],
        )

    def test_composite_expression_gradcheck(self, rng):
        def fn(a, b, c):
            return ((a @ b).tanh() * c).sigmoid().sum(axis=0)

        assert gradcheck(
            fn, [_param(rng, 2, 3), _param(rng, 3, 4), _param(rng, 2, 4)]
        )

    def test_grad_accumulates_over_reuse(self, rng):
        a = _param(rng, 3)
        out = (a * 2.0 + a * 3.0).sum()
        out.backward()
        assert np.allclose(a.grad, 5.0 * np.ones(3))


class TestBlockCirculantOp:
    def test_matches_dense_blockcirculant(self, rng):
        from repro.core.block_matrix import BlockCirculantMatrix

        vectors = rng.standard_normal((2, 3, 4))
        x = rng.standard_normal((5, 12))
        out = block_circulant_matvec(Tensor(vectors), Tensor(x))
        expected = BlockCirculantMatrix(vectors).matvec(x)
        assert np.allclose(out.data, expected)

    def test_vector_input_squeezes(self, rng):
        vectors = rng.standard_normal((2, 2, 4))
        x = rng.standard_normal(8)
        out = block_circulant_matvec(Tensor(vectors), Tensor(x))
        assert out.shape == (8,)

    def test_gradcheck_weights_and_inputs(self, rng):
        weights = _param(rng, 2, 2, 4)
        x = _param(rng, 3, 8)
        assert gradcheck(block_circulant_matvec, [weights, x], atol=1e-5)

    def test_shape_errors(self, rng):
        with pytest.raises(ShapeError):
            block_circulant_matvec(Tensor(rng.standard_normal((2, 3))), Tensor(np.ones(6)))
        with pytest.raises(ShapeError):
            block_circulant_matvec(
                Tensor(rng.standard_normal((2, 3, 4))), Tensor(np.ones((1, 5)))
            )

    @settings(max_examples=15, deadline=None)
    @given(
        p=st.integers(1, 3),
        q=st.integers(1, 3),
        log_block=st.integers(1, 3),
        batch=st.integers(1, 3),
        seed=st.integers(0, 10_000),
    )
    def test_property_fft_equals_dense(self, p, q, log_block, batch, seed):
        from repro.core.block_matrix import BlockCirculantMatrix

        block = 2**log_block
        local = np.random.default_rng(seed)
        vectors = local.standard_normal((p, q, block))
        x = local.standard_normal((batch, q * block))
        out = block_circulant_matvec(Tensor(vectors), Tensor(x))
        dense = BlockCirculantMatrix(vectors).to_dense()
        assert np.allclose(out.data, x @ dense.T, atol=1e-9)


class TestGraphMechanics:
    def test_backward_requires_scalar_or_grad(self, rng):
        a = _param(rng, 3)
        with pytest.raises(ShapeError):
            (a * 2.0).backward()

    def test_backward_on_nograd_tensor_raises(self):
        with pytest.raises(ShapeError):
            Tensor([1.0]).backward()

    def test_no_grad_blocks_graph(self, rng):
        a = _param(rng, 3)
        with no_grad():
            assert not is_grad_enabled()
            out = (a * 2.0).sum()
        assert not out.requires_grad

    def test_detach_breaks_graph(self, rng):
        a = _param(rng, 3)
        d = a.detach()
        assert not d.requires_grad

    def test_no_grad_is_thread_local(self, rng):
        """One thread's inference mode must not drop another's gradients."""
        import threading

        a = _param(rng, 3)
        entered = threading.Event()
        release = threading.Event()
        seen: dict[str, bool] = {}

        def inference_worker():
            with no_grad():
                entered.set()
                release.wait(timeout=5)
                seen["worker"] = is_grad_enabled()

        thread = threading.Thread(target=inference_worker)
        thread.start()
        assert entered.wait(timeout=5)
        # The worker sits inside no_grad(); this thread must still build
        # graphs.
        assert is_grad_enabled()
        out = (a * 2.0).sum()
        assert out.requires_grad
        release.set()
        thread.join()
        assert seen["worker"] is False

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)

    def test_zero_grad(self, rng):
        a = _param(rng, 3)
        (a * 2.0).sum().backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None
