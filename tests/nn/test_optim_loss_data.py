"""Optimizers, losses and batching utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError, TrainingError
from repro.nn.autograd import Tensor
from repro.nn.data import iterate_batches, pad_batch
from repro.nn.loss import cross_entropy, frame_accuracy, sequence_cross_entropy
from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam, clip_grad_norm


def quadratic_descent(optimizer_factory, steps=60):
    """Minimize ||w - target||^2; returns the final distance."""
    target = np.array([1.0, -2.0, 3.0])
    w = Parameter(np.zeros(3))
    optimizer = optimizer_factory([w])
    for _ in range(steps):
        optimizer.zero_grad()
        diff = w - Tensor(target)
        (diff * diff).sum().backward()
        optimizer.step()
    return float(np.max(np.abs(w.data - target)))


class TestOptimizers:
    def test_sgd_converges(self):
        assert quadratic_descent(lambda p: SGD(p, lr=0.1)) < 1e-3

    def test_sgd_momentum_converges(self):
        factory = lambda p: SGD(p, lr=0.01, momentum=0.9)  # noqa: E731
        assert quadratic_descent(factory, steps=150) < 1e-3

    def test_adam_converges(self):
        assert quadratic_descent(lambda p: Adam(p, lr=0.2), steps=300) < 1e-3

    def test_weight_decay_shrinks_solution(self):
        def factory(p):
            return SGD(p, lr=0.1, weight_decay=1.0)

        distance = quadratic_descent(factory)
        assert distance > 0.1  # decay biases the optimum toward zero

    def test_bad_lr_rejected(self):
        with pytest.raises(TrainingError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_empty_params_rejected(self):
        with pytest.raises(TrainingError):
            Adam([], lr=0.1)

    def test_bad_momentum_rejected(self):
        with pytest.raises(TrainingError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.0)

    def test_step_skips_gradless_params(self):
        p = Parameter(np.ones(2))
        SGD([p], lr=0.1).step()
        assert np.array_equal(p.data, np.ones(2))


class TestClipGradNorm:
    def test_clips_to_max_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        pre = clip_grad_norm([p], max_norm=1.0)
        assert pre == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.3, 0.4])
        clip_grad_norm([p], max_norm=1.0)
        assert np.allclose(p.grad, [0.3, 0.4])

    def test_handles_no_grads(self):
        assert clip_grad_norm([Parameter(np.zeros(2))], 1.0) == 0.0


class TestLosses:
    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        assert cross_entropy(logits, np.array([0, 1])).item() < 1e-6

    def test_cross_entropy_uniform_is_log_classes(self):
        logits = Tensor(np.zeros((4, 7)))
        value = cross_entropy(logits, np.zeros(4, dtype=int)).item()
        assert value == pytest.approx(np.log(7))

    def test_sequence_ce_ignores_padding(self, rng):
        logits = rng.standard_normal((5, 2, 3))
        labels = rng.integers(0, 3, size=(5, 2))
        mask = np.ones((5, 2))
        mask[3:, 1] = 0.0
        full = sequence_cross_entropy(Tensor(logits), labels, mask).item()
        # Corrupt only the padded region; the loss must not change.
        corrupted = logits.copy()
        corrupted[3:, 1, :] = 1e3
        same = sequence_cross_entropy(Tensor(corrupted), labels, mask).item()
        assert full == pytest.approx(same)

    def test_empty_mask_rejected(self, rng):
        with pytest.raises(ShapeError):
            sequence_cross_entropy(
                Tensor(np.zeros((2, 1, 3))),
                np.zeros((2, 1), dtype=int),
                np.zeros((2, 1)),
            )

    def test_frame_accuracy(self):
        logits = np.zeros((2, 1, 3))
        logits[0, 0, 1] = 5.0
        logits[1, 0, 2] = 5.0
        labels = np.array([[1], [0]])
        mask = np.ones((2, 1), dtype=bool)
        assert frame_accuracy(Tensor(logits), labels, mask) == pytest.approx(0.5)


class TestBatching:
    def test_pad_batch_shapes_and_mask(self, rng):
        feats = [rng.standard_normal((t, 3)) for t in (4, 2, 6)]
        labels = [np.zeros(t, dtype=int) for t in (4, 2, 6)]
        batch = pad_batch(feats, labels)
        assert batch.features.shape == (6, 3, 3)
        assert batch.lengths == (4, 2, 6)
        assert batch.mask.sum() == 12
        assert batch.mask[5, 0] == 0.0 and batch.mask[5, 2] == 1.0

    def test_pad_batch_rejects_mismatched(self, rng):
        with pytest.raises(ShapeError):
            pad_batch([rng.standard_normal((3, 2))], [np.zeros(4, dtype=int)])

    def test_iterate_batches_covers_everything(self, rng):
        feats = [rng.standard_normal((t, 2)) for t in range(2, 12)]
        labels = [np.full(t, i, dtype=int) for i, t in enumerate(range(2, 12))]
        seen = set()
        for batch in iterate_batches(feats, labels, batch_size=3, rng=rng):
            for b, length in enumerate(batch.lengths):
                seen.add(int(batch.labels[0, b]))
        assert seen == set(range(10))

    @settings(max_examples=15, deadline=None)
    @given(
        lengths=st.lists(st.integers(1, 9), min_size=1, max_size=8),
        batch_size=st.integers(1, 4),
    )
    def test_property_mask_total_equals_frames(self, lengths, batch_size):
        local = np.random.default_rng(0)
        feats = [local.standard_normal((t, 2)) for t in lengths]
        labels = [np.zeros(t, dtype=int) for t in lengths]
        total = 0.0
        for batch in iterate_batches(feats, labels, batch_size):
            total += batch.mask.sum()
        assert total == sum(lengths)
