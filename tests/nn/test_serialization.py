"""Checkpoint round trips."""

import numpy as np
import pytest

from repro.config import RNNSpec
from repro.errors import ShapeError
from repro.nn.autograd import no_grad
from repro.nn.rnn import StackedRNNClassifier
from repro.nn.serialization import load_model, save_model, spec_from_dict, spec_to_dict


class TestSpecCodec:
    def test_round_trip_full_spec(self):
        spec = RNNSpec(
            "lstm", 39, (32, 32), 16, block_sizes=(4, 8),
            peephole=True, projection_size=16, io_block_size=8,
        )
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_round_trip_dense_gru(self):
        spec = RNNSpec("gru", 8, (16,), 5)
        assert spec_from_dict(spec_to_dict(spec)) == spec


class TestCheckpoint:
    def test_dense_round_trip(self, tmp_path, rng):
        spec = RNNSpec("lstm", 8, (16,), 5, peephole=True)
        model = StackedRNNClassifier(spec, rng=rng)
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.spec == spec
        x = np.random.default_rng(1).standard_normal((4, 2, 8))
        with no_grad():
            assert np.allclose(model(x).data, loaded(x).data)

    def test_structured_round_trip(self, tmp_path, rng):
        spec = RNNSpec("gru", 8, (16,), 5, block_sizes=(4,))
        model = StackedRNNClassifier(spec, structured=True, rng=rng)
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.structured
        x = np.random.default_rng(1).standard_normal((3, 1, 8))
        with no_grad():
            assert np.allclose(model(x).data, loaded(x).data)

    def test_rejects_non_checkpoint(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(ShapeError):
            load_model(path)
