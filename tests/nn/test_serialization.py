"""Checkpoint round trips."""

import json

import numpy as np
import pytest

from repro.config import RNNSpec
from repro.errors import SerializationError
from repro.nn.autograd import no_grad
from repro.nn.rnn import StackedRNNClassifier
from repro.nn.serialization import (
    MODEL_SCHEMA,
    MODEL_VERSION,
    load_model,
    read_header,
    save_model,
    spec_from_dict,
    spec_to_dict,
)


class TestSpecCodec:
    def test_round_trip_full_spec(self):
        spec = RNNSpec(
            "lstm", 39, (32, 32), 16, block_sizes=(4, 8),
            peephole=True, projection_size=16, io_block_size=8,
        )
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_round_trip_dense_gru(self):
        spec = RNNSpec("gru", 8, (16,), 5)
        assert spec_from_dict(spec_to_dict(spec)) == spec


class TestCheckpoint:
    def test_dense_round_trip(self, tmp_path, rng):
        spec = RNNSpec("lstm", 8, (16,), 5, peephole=True)
        model = StackedRNNClassifier(spec, rng=rng)
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.spec == spec
        x = np.random.default_rng(1).standard_normal((4, 2, 8))
        with no_grad():
            assert np.allclose(model(x).data, loaded(x).data)

    def test_structured_round_trip(self, tmp_path, rng):
        spec = RNNSpec("gru", 8, (16,), 5, block_sizes=(4,))
        model = StackedRNNClassifier(spec, structured=True, rng=rng)
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.structured
        x = np.random.default_rng(1).standard_normal((3, 1, 8))
        with no_grad():
            assert np.allclose(model(x).data, loaded(x).data)

    def test_rejects_non_checkpoint(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(SerializationError):
            load_model(path)


class TestSchemaVersioning:
    """Checkpoints fail loudly across schema/version revisions."""

    def _checkpoint(self, tmp_path, rng):
        spec = RNNSpec("lstm", 8, (16,), 5)
        model = StackedRNNClassifier(spec, rng=rng)
        path = tmp_path / "model.npz"
        save_model(model, path)
        return path

    def _rewrite_header(self, path, **overrides):
        with np.load(path, allow_pickle=False) as archive:
            header = json.loads(str(archive["__header__"]))
            arrays = {
                name: archive[name]
                for name in archive.files
                if name != "__header__"
            }
        header.update(overrides)
        np.savez(path, __header__=np.array(json.dumps(header)), **arrays)

    def test_header_records_schema_and_version(self, tmp_path, rng):
        header = read_header(self._checkpoint(tmp_path, rng))
        assert header["schema"] == MODEL_SCHEMA
        assert header["version"] == MODEL_VERSION

    def test_future_version_raises_runtime_error(self, tmp_path, rng):
        path = self._checkpoint(tmp_path, rng)
        self._rewrite_header(path, version=MODEL_VERSION + 99)
        with pytest.raises(RuntimeError, match="version"):
            load_model(path)

    def test_foreign_schema_names_both_schemas(self, tmp_path, rng):
        path = self._checkpoint(tmp_path, rng)
        self._rewrite_header(path, schema="repro/compiled-model")
        with pytest.raises(SerializationError, match="compiled-model"):
            load_model(path)

    def test_legacy_v1_header_without_schema_loads(self, tmp_path, rng):
        """PR-1 checkpoints (version 1, no schema field) stay loadable."""
        path = self._checkpoint(tmp_path, rng)
        with np.load(path, allow_pickle=False) as archive:
            header = json.loads(str(archive["__header__"]))
            arrays = {
                name: archive[name]
                for name in archive.files
                if name != "__header__"
            }
        header.pop("schema")
        header["version"] = 1
        np.savez(path, __header__=np.array(json.dumps(header)), **arrays)
        assert load_model(path).spec.layer_sizes == (16,)

    def test_serialization_error_is_runtime_error(self):
        assert issubclass(SerializationError, RuntimeError)
