"""RNNSpec / AccelSpec validation and derived properties."""

import pytest

from repro.config import AccelSpec, RNNSpec, is_power_of_two, validate_block_size
from repro.errors import BlockSizeError, ConfigError


class TestHelpers:
    def test_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(64)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)
        assert not is_power_of_two(-4)

    def test_validate_block_size(self):
        validate_block_size(8, 64, 128)
        with pytest.raises(BlockSizeError):
            validate_block_size(3)
        with pytest.raises(BlockSizeError):
            validate_block_size(8, 20)
        with pytest.raises(BlockSizeError):
            validate_block_size(0)


class TestRNNSpec:
    def test_valid_lstm(self):
        spec = RNNSpec(
            "lstm", 153, (1024, 1024), 39, block_sizes=(8, 16),
            peephole=True, projection_size=512,
        )
        assert spec.num_layers == 2
        assert spec.is_block_circulant
        assert spec.effective_block_sizes == (8, 16)

    def test_dense_spec(self):
        spec = RNNSpec("gru", 16, (32,), 5)
        assert not spec.is_block_circulant
        assert spec.effective_block_sizes == (1,)

    def test_rejects_unknown_cell(self):
        with pytest.raises(ConfigError):
            RNNSpec("rnn", 16, (32,), 5)

    def test_rejects_block_layer_mismatch(self):
        with pytest.raises(ConfigError):
            RNNSpec("lstm", 16, (32, 32), 5, block_sizes=(4,))

    def test_rejects_indivisible_block(self):
        with pytest.raises(BlockSizeError):
            RNNSpec("lstm", 16, (20,), 5, block_sizes=(8,))

    def test_rejects_gru_projection_and_peephole(self):
        with pytest.raises(ConfigError):
            RNNSpec("gru", 16, (32,), 5, projection_size=16)
        with pytest.raises(ConfigError):
            RNNSpec("gru", 16, (32,), 5, peephole=True)

    def test_with_block_sizes(self):
        spec = RNNSpec("lstm", 16, (32,), 5)
        blocked = spec.with_block_sizes((8,))
        assert blocked.is_block_circulant
        assert not spec.is_block_circulant  # original untouched

    def test_with_cell_type_strips_lstm_features(self):
        spec = RNNSpec(
            "lstm", 16, (32,), 5, peephole=True, projection_size=16
        )
        gru = spec.with_cell_type("gru")
        assert gru.cell_type == "gru"
        assert not gru.peephole
        assert gru.projection_size is None

    def test_io_block_size_round_trip(self):
        spec = RNNSpec("lstm", 16, (32,), 5, block_sizes=(4,))
        assert spec.with_io_block_size(8).io_block_size == 8
        assert spec.with_io_block_size(8).with_io_block_size(None).io_block_size is None

    def test_describe(self):
        spec = RNNSpec(
            "lstm", 16, (32, 32), 5, block_sizes=(4, 8),
            peephole=True,
        )
        text = spec.describe()
        assert "LSTM" in text and "32-32" in text and "4-8" in text
        assert "peephole" in text

    def test_frozen(self):
        spec = RNNSpec("lstm", 16, (32,), 5)
        with pytest.raises(Exception):
            spec.input_size = 99


class TestAccelSpec:
    def test_defaults(self):
        accel = AccelSpec("XCKU060")
        assert accel.weight_bits == 12
        assert accel.clock_period_ns == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            AccelSpec("XCKU060", weight_bits=1)
        with pytest.raises(ConfigError):
            AccelSpec("XCKU060", clock_mhz=0)
        with pytest.raises(ConfigError):
            AccelSpec("XCKU060", pwl_segments=1)
        with pytest.raises(ConfigError):
            AccelSpec("XCKU060", num_compute_units=0)
