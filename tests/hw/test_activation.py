"""Piecewise-linear activation approximations."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hw.activation import PiecewiseLinearActivation, pwl_sigmoid, pwl_tanh


def sigmoid(x):
    return 1.0 / (1.0 + np.exp(-x))


class TestConstruction:
    def test_from_function(self):
        pwl = PiecewiseLinearActivation.from_function(
            "tanh", np.tanh, 8, (-4, 4), (-1, 1)
        )
        assert pwl.segments == 8
        assert pwl.breakpoints[0] == -4.0

    def test_rejects_bad_segments(self):
        with pytest.raises(ConfigError):
            PiecewiseLinearActivation.from_function(
                "tanh", np.tanh, 1, (-4, 4), (-1, 1)
            )

    def test_rejects_bad_range(self):
        with pytest.raises(ConfigError):
            PiecewiseLinearActivation.from_function(
                "tanh", np.tanh, 4, (4, -4), (-1, 1)
            )


class TestAccuracy:
    def test_exact_at_breakpoints(self):
        pwl = pwl_tanh(16)
        assert np.allclose(pwl(pwl.breakpoints), np.tanh(pwl.breakpoints))

    def test_saturation_outside_range(self):
        pwl = pwl_sigmoid(16)
        assert pwl(np.array([-100.0]))[0] == 0.0
        assert pwl(np.array([100.0]))[0] == 1.0

    def test_monotone_nondecreasing(self, rng):
        pwl = pwl_tanh(16)
        grid = np.linspace(-6, 6, 500)
        values = pwl(grid)
        assert np.all(np.diff(values) >= -1e-12)

    def test_error_shrinks_with_segments(self):
        errors = [pwl_tanh(s).max_error(np.tanh) for s in (4, 8, 16, 32, 64)]
        assert all(a > b for a, b in zip(errors, errors[1:]))

    def test_16_segments_good_to_3e_2(self):
        assert pwl_sigmoid(16).max_error(sigmoid) < 1.5e-2
        assert pwl_tanh(16).max_error(np.tanh) < 3e-2

    def test_128_segments_good_to_1e_3(self):
        assert pwl_sigmoid(128).max_error(sigmoid) < 1e-3
        assert pwl_tanh(128).max_error(np.tanh) < 1e-3


class TestInterpContract:
    """The slope-table evaluation against the np.interp reference."""

    @staticmethod
    def _interp_reference(pwl, x):
        inside = np.interp(x, pwl.breakpoints, pwl.values)
        result = np.where(x < pwl.breakpoints[0], pwl.saturate_low, inside)
        return np.where(x > pwl.breakpoints[-1], pwl.saturate_high, result)

    def test_identical_away_from_breakpoints(self):
        rng = np.random.default_rng(0)
        for pwl in (pwl_sigmoid(16), pwl_tanh(64)):
            x = rng.uniform(-12, 12, 50_000)
            assert np.array_equal(pwl(x), self._interp_reference(pwl, x))

    def test_exact_breakpoints_and_saturation(self):
        for pwl in (pwl_sigmoid(16), pwl_tanh(16)):
            x = np.concatenate(
                [pwl.breakpoints, [pwl.breakpoints[0] - 5, pwl.breakpoints[-1] + 5]]
            )
            assert np.array_equal(pwl(x), self._interp_reference(pwl, x))

    def test_within_one_ulp_at_breakpoint_neighbours(self):
        """Arithmetic segment selection may pick the adjacent segment for
        inputs one ULP from a breakpoint; continuity bounds the value gap."""
        for pwl in (pwl_sigmoid(16), pwl_tanh(64)):
            x = np.concatenate([
                np.nextafter(pwl.breakpoints, -np.inf),
                np.nextafter(pwl.breakpoints, np.inf),
            ])
            got = pwl(x)
            want = self._interp_reference(pwl, x)
            gap = np.abs(got - want)
            assert np.all(gap <= np.spacing(np.abs(want)) + np.spacing(1.0))


class TestResources:
    def test_no_dsp_no_bram(self):
        resources = pwl_sigmoid(16).resources()
        assert resources.dsp == 0
        assert resources.bram_blocks == 0
        assert resources.lut > 0

    def test_cost_grows_with_segments(self):
        assert pwl_tanh(64).resources().lut > pwl_tanh(8).resources().lut
