"""Model quantization pass: round trips, PWL swapping, degradation sweep."""

import numpy as np
import pytest

from repro.runtime import evaluate_per
from repro.hw.quantize import (
    apply_pwl_activations,
    quantization_sweep,
    quantize_features,
    quantize_state,
    quantized_copy,
    quantized_dataset,
)
from repro.nn.autograd import no_grad


class TestQuantizeState:
    def test_all_parameters_on_grid(self, trained_dense):
        state, formats = quantize_state(trained_dense.state_dict(), 10)
        for name, values in state.items():
            fmt = formats[name]
            assert np.allclose(fmt.quantize(values), values)

    def test_error_bounded(self, trained_dense):
        original = trained_dense.state_dict()
        state, formats = quantize_state(original, 12)
        for name in state:
            error = np.max(np.abs(state[name] - original[name]))
            assert error <= 0.5 * formats[name].resolution + 1e-15


class TestQuantizedCopy:
    def test_copy_structure_matches(self, trained_dense):
        copy = quantized_copy(trained_dense, 12)
        assert copy.spec == trained_dense.spec
        assert set(dict(copy.named_parameters())) == set(
            dict(trained_dense.named_parameters())
        )

    def test_original_untouched(self, trained_dense):
        before = trained_dense.state_dict()
        quantized_copy(trained_dense, 6)
        after = trained_dense.state_dict()
        for name in before:
            assert np.array_equal(before[name], after[name])

    def test_outputs_close_at_12_bits(self, trained_dense, micro_datasets):
        _, test = micro_datasets
        copy = quantized_copy(trained_dense, 12)
        x = test.features[0][:, None, :]
        with no_grad():
            a = trained_dense(x).data
            b = copy(x).data
        assert np.max(np.abs(a - b)) < 0.2

    def test_pwl_activations_installed(self, trained_dense):
        copy = quantized_copy(trained_dense, 12, pwl_segments=16)
        assert copy.cells[0].sigmoid_fn is not None
        assert copy.cells[0].tanh_fn is not None

    def test_pwl_model_still_runs(self, trained_dense, micro_datasets):
        _, test = micro_datasets
        copy = apply_pwl_activations(quantized_copy(trained_dense, 12), 16)
        per = evaluate_per(copy, test)
        assert 0 <= per <= 200


class TestFeatureQuantization:
    def test_features_on_grid(self, rng):
        features = rng.standard_normal((20, 8))
        quantized = quantize_features(features, 10)
        assert np.max(np.abs(quantized - features)) < 0.1

    def test_dataset_quantization_preserves_labels(self, micro_datasets):
        _, test = micro_datasets
        quantized = quantized_dataset(test, 12)
        assert quantized.frame_labels is test.frame_labels
        assert quantized.phone_sequences is test.phone_sequences


class TestSweep:
    def test_sweep_shape_and_degradation_knee(self, trained_dense, micro_datasets):
        """Sec. VII-D: high bit widths cost ~nothing; very low widths blow up."""
        _, test = micro_datasets
        float_per = evaluate_per(trained_dense, test)
        sweep = quantization_sweep(
            trained_dense, test, bits_list=(16, 12, 4), pwl_segments=None
        )
        assert set(sweep) == {16, 12, 4}
        # The micro test set quantizes PER in ~6% steps (one token); allow
        # one-token noise around the float PER at high bit widths.
        one_token = 7.0
        assert abs(sweep[16] - float_per) <= 4 * one_token
        assert abs(sweep[12] - float_per) <= 4 * one_token
        assert sweep[4] >= sweep[16] - one_token  # 4-bit is never really better
