"""Fixed-point formats: representability, fitting, round-trip bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.hw.fixed_point import FixedPointFormat, quantization_snr_db


class TestFormat:
    def test_resolution_and_range(self):
        fmt = FixedPointFormat(8, 4)
        assert fmt.resolution == pytest.approx(1 / 16)
        assert fmt.min_value == -8.0
        assert fmt.max_value == pytest.approx(127 / 16)

    def test_rejects_silly_widths(self):
        with pytest.raises(QuantizationError):
            FixedPointFormat(1, 0)
        with pytest.raises(QuantizationError):
            FixedPointFormat(128, 0)

    def test_quantize_is_idempotent(self, rng):
        fmt = FixedPointFormat(12, 8)
        values = rng.standard_normal(100)
        once = fmt.quantize(values)
        assert np.array_equal(fmt.quantize(once), once)

    def test_quantize_saturates(self):
        fmt = FixedPointFormat(8, 4)
        assert fmt.quantize(np.array([100.0]))[0] == fmt.max_value
        assert fmt.quantize(np.array([-100.0]))[0] == fmt.min_value

    def test_round_trip_int_codes(self, rng):
        fmt = FixedPointFormat(10, 6)
        values = rng.uniform(-5, 5, size=50)
        codes = fmt.to_int(values)
        assert np.array_equal(fmt.to_int(fmt.from_int(codes)), codes)

    def test_from_int_range_checked(self):
        fmt = FixedPointFormat(8, 4)
        with pytest.raises(QuantizationError):
            fmt.from_int(np.array([1000]))

    @settings(max_examples=30, deadline=None)
    @given(
        total=st.integers(4, 16),
        frac=st.integers(-2, 14),
        seed=st.integers(0, 1000),
    )
    def test_property_error_bounded_by_half_lsb(self, total, frac, seed):
        fmt = FixedPointFormat(total, frac)
        values = np.random.default_rng(seed).uniform(
            fmt.min_value, fmt.max_value, size=20
        )
        error = np.abs(fmt.quantize(values) - values)
        assert np.all(error <= 0.5 * fmt.resolution + 1e-15)


class TestFit:
    def test_fit_covers_range(self, rng):
        values = rng.uniform(-3, 3, size=100)
        fmt = FixedPointFormat.fit(values, 12)
        assert fmt.max_value >= np.abs(values).max()

    def test_fit_maximizes_precision(self, rng):
        """One fewer fractional bit would waste range."""
        values = np.array([0.9, -0.5])
        fmt = FixedPointFormat.fit(values, 8)
        finer = FixedPointFormat(8, fmt.frac_bits + 1)
        assert finer.max_value < 0.9  # the next-finer format would clip

    def test_fit_zero_array(self):
        fmt = FixedPointFormat.fit(np.zeros(5), 8)
        assert fmt.total_bits == 8

    def test_fit_empty_rejected(self):
        with pytest.raises(QuantizationError):
            FixedPointFormat.fit(np.array([]), 8)

    def test_fit_large_values_uses_negative_frac(self):
        fmt = FixedPointFormat.fit(np.array([1e6]), 8)
        assert fmt.quantize(np.array([1e6]))[0] == pytest.approx(1e6, rel=0.02)

    @settings(max_examples=30, deadline=None)
    @given(total=st.integers(6, 16), seed=st.integers(0, 1000))
    def test_property_more_bits_never_worse(self, total, seed):
        values = np.random.default_rng(seed).standard_normal(50)
        coarse = FixedPointFormat.fit(values, total)
        fine = FixedPointFormat.fit(values, total + 2)
        assert fine.max_error(values) <= coarse.max_error(values) + 1e-15


class TestSNR:
    def test_12bit_snr_is_high(self, rng):
        values = rng.standard_normal(1000)
        fmt = FixedPointFormat.fit(values, 12)
        assert quantization_snr_db(values, fmt) > 50.0

    def test_snr_improves_with_bits(self, rng):
        values = rng.standard_normal(1000)
        snr8 = quantization_snr_db(values, FixedPointFormat.fit(values, 8))
        snr12 = quantization_snr_db(values, FixedPointFormat.fit(values, 12))
        assert snr12 > snr8 + 15  # ~6 dB per bit
