"""BRAM storage model and the Phase-I sanity check."""

import pytest

from repro.config import RNNSpec
from repro.errors import FitError
from repro.hw.bram import (
    fits_bram,
    min_block_size_for_bram,
    storage_breakdown,
    weight_storage_bits,
)
from repro.hw.platform import ADM_PCIE_7V3, XCKU060


def full_network():
    """The paper's 2-layer, 1024-unit LSTM with projection."""
    return RNNSpec(
        "lstm", 153, (1024, 1024), 39, peephole=True, projection_size=512
    )


class TestStorageModel:
    def test_compression_shrinks_weights(self):
        dense = weight_storage_bits(full_network(), 12)
        blocked = weight_storage_bits(
            full_network().with_block_sizes((8, 8)), 12
        )
        assert blocked < dense / 6  # ~8x minus spectrum expansion

    def test_spectrum_expansion_charged(self):
        spec = full_network().with_block_sizes((8, 8))
        fft = weight_storage_bits(spec, 12, fft_domain=True)
        raw = weight_storage_bits(spec, 12, fft_domain=False)
        assert fft == pytest.approx(raw * 10 / 8, rel=0.01)

    def test_breakdown_totals(self):
        breakdown = storage_breakdown(full_network().with_block_sizes((8, 8)), 12)
        assert breakdown.total == pytest.approx(
            breakdown.weights + breakdown.vectors + breakdown.buffers
        )
        assert breakdown.weights > breakdown.vectors

    def test_more_bits_more_storage(self):
        spec = full_network().with_block_sizes((8, 8))
        assert storage_breakdown(spec, 16).total > storage_breakdown(spec, 12).total


class TestPaperSanityCheck:
    """Sec. VI-B Step One: 'a block size of 4 or 8 will fit the whole RNN
    model into BRAM. A block size 8 will be safer.'"""

    def test_dense_model_does_not_fit(self):
        assert not fits_bram(full_network(), XCKU060)
        assert not fits_bram(full_network(), ADM_PCIE_7V3)

    def test_block4_fits_7v3_but_not_ku060(self):
        spec = full_network().with_block_sizes((4, 4))
        assert fits_bram(spec, ADM_PCIE_7V3)
        assert not fits_bram(spec, XCKU060)

    def test_block8_fits_both(self):
        spec = full_network().with_block_sizes((8, 8))
        assert fits_bram(spec, ADM_PCIE_7V3)
        assert fits_bram(spec, XCKU060)

    def test_min_block_sizes_match_paper(self):
        assert min_block_size_for_bram(full_network(), ADM_PCIE_7V3) == 4
        assert min_block_size_for_bram(full_network(), XCKU060) == 8

    def test_tiny_model_fits_dense(self):
        tiny = RNNSpec("lstm", 16, (32,), 5)
        assert min_block_size_for_bram(tiny, XCKU060) == 1

    def test_impossible_fit_raises(self):
        huge = RNNSpec("lstm", 153, (16384, 16384), 39)
        with pytest.raises(FitError):
            min_block_size_for_bram(huge, XCKU060, max_block=4)
