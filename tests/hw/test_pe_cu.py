"""PE resource/timing model and the CU cycle algebra."""

import pytest

from repro.config import AccelSpec, RNNSpec
from repro.core.compression import MatrixShape
from repro.errors import ConfigError
from repro.hw.cu import (
    GRU_TDM_SPEEDUP,
    ComputeUnitModel,
    matrix_block_grid,
)
from repro.hw.fft_unit import FFTUnit
from repro.hw.pe import ProcessingElement


class TestFFTUnit:
    def test_stage_count(self):
        assert FFTUnit(8).stages == 3
        assert FFTUnit(16).multiplier_stages == 2

    def test_minimum_dsp(self):
        assert FFTUnit(4).dsp == 3  # at least one complex multiplier

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigError):
            FFTUnit(12)

    def test_latency_grows_with_size(self):
        assert FFTUnit(64).latency_cycles > FFTUnit(8).latency_cycles


class TestProcessingElement:
    def test_calibrated_dsp_counts(self):
        """ΔDSP = 2·Lb + 3·max(log2 Lb − 2, 1)."""
        assert ProcessingElement(8).dsp == 19
        assert ProcessingElement(16).dsp == 38

    def test_ii_is_two_cycles(self):
        """The Hermitian product pipelines at two cycles for all block sizes
        — this is what makes Table III's FFT16/FFT8 latency ratio ~1.9."""
        for block in (4, 8, 16, 32):
            assert ProcessingElement(block).cycles_per_block == 2

    def test_bram_banks_equal_block_size(self):
        assert ProcessingElement(8).bram_banks == 8

    def test_resources_scale_with_block(self):
        small, large = ProcessingElement(8), ProcessingElement(32)
        assert large.dsp > small.dsp
        assert large.lut > small.lut

    def test_resources_scale_with_bits(self):
        assert ProcessingElement(8, 16).lut > ProcessingElement(8, 12).lut

    def test_rejects_block_one(self):
        with pytest.raises(ConfigError):
            ProcessingElement(1)


def lstm_spec(block=8):
    return RNNSpec(
        "lstm", 153, (1024,), 39, block_sizes=(block,),
        peephole=True, projection_size=512,
    )


def gru_spec(block=8):
    return RNNSpec("gru", 153, (1024,), 39, block_sizes=(block,))


class TestBlockGrid:
    def test_exact_division(self):
        shape = MatrixShape("m", 4096, 672, 8, "input", 0)
        assert matrix_block_grid(shape) == (512, 84)

    def test_padding(self):
        shape = MatrixShape("m", 4096, 153, 8, "input", 0)
        assert matrix_block_grid(shape) == (512, 20)


class TestComputeUnit:
    def test_block_op_counts_lstm(self):
        cu = ComputeUnitModel(lstm_spec(8), AccelSpec("XCKU060"), 40)
        # W(ifco)(xr): 512 x (20+64) + W_ym: 64 x 128 = 51200 blocks.
        assert cu.total_block_ops() == 512 * 84 + 64 * 128

    def test_block_ops_scale_inverse_square_of_block(self):
        ops8 = ComputeUnitModel(lstm_spec(8), AccelSpec("XCKU060"), 40)
        ops16 = ComputeUnitModel(lstm_spec(16), AccelSpec("XCKU060"), 40)
        ratio = ops8.total_block_ops() / ops16.total_block_ops()
        assert ratio == pytest.approx(4.0, rel=0.05)

    def test_more_pes_reduce_latency(self):
        slow = ComputeUnitModel(lstm_spec(8), AccelSpec("XCKU060"), 10)
        fast = ComputeUnitModel(lstm_spec(8), AccelSpec("XCKU060"), 40)
        assert fast.frame_cycles() < slow.frame_cycles()

    def test_gru_gets_tdm_fusion(self):
        cu = ComputeUnitModel(gru_spec(8), AccelSpec("XCKU060"), 40)
        assert cu.tdm_speedup == GRU_TDM_SPEEDUP
        assert cu.num_cgpipe_stages == 2

    def test_lstm_three_stages(self):
        cu = ComputeUnitModel(lstm_spec(8), AccelSpec("XCKU060"), 40)
        assert cu.num_cgpipe_stages == 3

    def test_wider_bits_slow_pointwise(self):
        narrow = ComputeUnitModel(lstm_spec(8), AccelSpec("XCKU060", weight_bits=12), 40)
        wide = ComputeUnitModel(
            lstm_spec(8), AccelSpec("XCKU060", weight_bits=16, input_bits=16), 40
        )
        assert wide.timing().pointwise_cycles > narrow.timing().pointwise_cycles

    def test_rejects_dense_spec(self):
        dense = RNNSpec("lstm", 153, (1024,), 39, peephole=True, projection_size=512)
        with pytest.raises(ConfigError):
            ComputeUnitModel(dense, AccelSpec("XCKU060"), 40)

    def test_rejects_zero_pes(self):
        with pytest.raises(ConfigError):
            ComputeUnitModel(lstm_spec(8), AccelSpec("XCKU060"), 0)

    def test_pointwise_ops_peephole_dependence(self):
        with_peep = ComputeUnitModel(lstm_spec(8), AccelSpec("XCKU060"), 40)
        spec_no_peep = RNNSpec(
            "lstm", 153, (1024,), 39, block_sizes=(8,), projection_size=512
        )
        without = ComputeUnitModel(spec_no_peep, AccelSpec("XCKU060"), 40)
        assert with_peep.pointwise_ops() > without.pointwise_ops()
