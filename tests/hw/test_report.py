"""ImplementationReport formatting."""

import pytest

from repro.hw.report import ImplementationReport, format_table


def make_report(label="E-RNN FFT8", power=24.0):
    return ImplementationReport(
        label=label,
        cell="LSTM-1024",
        platform="XCKU060",
        quant_bits=12,
        params_top_layer_m=0.41,
        compression_ratio=8.0,
        utilization={"dsp": 0.95, "bram": 0.88, "lut": 0.77, "ff": 0.61},
        latency_us=13.7,
        fps=231_514,
        power_watts=power,
        per_degradation=0.14,
    )


class TestReport:
    def test_energy_efficiency(self):
        report = make_report()
        assert report.energy_efficiency == pytest.approx(231_514 / 24.0)

    def test_energy_efficiency_none_without_power(self):
        assert make_report(power=None).energy_efficiency is None

    def test_format_single(self):
        text = format_table([make_report()], title="Table III")
        assert "Table III" in text
        assert "12bit fixed" in text
        assert "231,514" in text
        assert "95.0" in text

    def test_format_multiple_columns(self):
        text = format_table([make_report("A"), make_report("B")])
        header = text.splitlines()[0]
        assert "A" in header and "B" in header

    def test_format_empty(self):
        assert format_table([]) == "(no reports)"

    def test_missing_power_renders_dash(self):
        text = format_table([make_report(power=None)])
        assert "-" in text
