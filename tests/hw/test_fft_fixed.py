"""Bit-accurate fixed-point FFT datapath."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circulant import circulant_matvec
from repro.errors import QuantizationError
from repro.hw.fft_fixed import FixedPointFFT, fixed_point_circulant_matvec


class TestFixedPointFFT:
    def test_rejects_bad_sizes(self):
        with pytest.raises(QuantizationError):
            FixedPointFFT(12)
        with pytest.raises(QuantizationError):
            FixedPointFFT(8, bits=2)

    def test_matches_float_fft_at_high_precision(self, rng):
        fft = FixedPointFFT(16, bits=24)
        x = rng.uniform(-1, 1, 16)
        exact = np.fft.fft(x) / 16
        assert np.max(np.abs(fft.forward(x) - exact)) < 1e-5

    def test_12bit_error_within_one_percent(self, rng):
        for size in (8, 16, 32):
            fft = FixedPointFFT(size, bits=12)
            assert fft.max_error_vs_float(trials=20) < 1e-2

    def test_error_grows_as_bits_shrink(self):
        errors = [
            FixedPointFFT(16, bits=bits).max_error_vs_float(trials=10)
            for bits in (16, 12, 8)
        ]
        assert errors[0] < errors[1] < errors[2]

    def test_shape_check(self, rng):
        with pytest.raises(QuantizationError):
            FixedPointFFT(8).forward(rng.uniform(-1, 1, 7))

    def test_batched_input(self, rng):
        fft = FixedPointFFT(8, bits=16)
        x = rng.uniform(-1, 1, (5, 8))
        out = fft.forward(x)
        assert out.shape == (5, 8)
        exact = np.fft.fft(x, axis=-1) / 8
        assert np.max(np.abs(out - exact)) < 1e-3

    def test_linearity_of_datapath(self, rng):
        """FFT must stay linear despite quantization (within noise)."""
        fft = FixedPointFFT(16, bits=16)
        a, b = rng.uniform(-0.5, 0.5, 16), rng.uniform(-0.5, 0.5, 16)
        combined = fft.forward(a + b)
        separate = fft.forward(a) + fft.forward(b)
        assert np.max(np.abs(combined - separate)) < 1e-3


class TestFixedPointMatvec:
    """The paper's Sec. VII-D claim at the datapath level: 12-bit is safe."""

    def test_12bit_relative_error_below_one_percent(self, rng):
        w, x = rng.uniform(-1, 1, 8), rng.uniform(-1, 1, 8)
        exact = circulant_matvec(w, x)
        got = fixed_point_circulant_matvec(w, x, bits=12)
        rel = np.max(np.abs(got - exact)) / np.max(np.abs(exact))
        assert rel < 1e-2

    def test_6bit_collapses(self, rng):
        w, x = rng.uniform(-1, 1, 16), rng.uniform(-1, 1, 16)
        exact = circulant_matvec(w, x)
        got = fixed_point_circulant_matvec(w, x, bits=6)
        rel = np.max(np.abs(got - exact)) / np.max(np.abs(exact))
        assert rel > 3e-2  # visibly degraded — 6 bits is not a safe design

    @settings(max_examples=15, deadline=None)
    @given(log_size=st.integers(2, 5), seed=st.integers(0, 1000))
    def test_property_monotone_in_bits(self, log_size, seed):
        size = 2**log_size
        local = np.random.default_rng(seed)
        w, x = local.uniform(-1, 1, size), local.uniform(-1, 1, size)
        exact = circulant_matvec(w, x)
        scale = np.max(np.abs(exact)) + 1e-12
        errors = [
            np.max(np.abs(fixed_point_circulant_matvec(w, x, bits) - exact))
            / scale
            for bits in (16, 10, 6)
        ]
        assert errors[0] <= errors[1] * 1.5 + 1e-6
        assert errors[1] <= errors[2] * 1.5 + 1e-6
