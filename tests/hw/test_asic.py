"""ASIC projection model (the paper's stated framework extension)."""

import pytest

from repro.config import AccelSpec, RNNSpec
from repro.errors import ConfigError
from repro.hw.accelerator import AcceleratorModel
from repro.hw.asic import TSMC28_LIKE, ASICProcess, project_to_asic


@pytest.fixture(scope="module")
def fpga_design():
    spec = RNNSpec(
        "lstm", 153, (1024,), 39, block_sizes=(8,),
        peephole=True, projection_size=512,
    )
    return AcceleratorModel(spec, AccelSpec("XCKU060")).build()


class TestProjection:
    def test_asic_is_faster(self, fpga_design):
        asic = project_to_asic(fpga_design)
        assert asic.latency_us < fpga_design.latency_us
        assert asic.fps > fpga_design.fps

    def test_cycle_count_preserved(self, fpga_design):
        """Same microarchitecture: the speedup is pure clock."""
        asic = project_to_asic(fpga_design)
        ratio = fpga_design.latency_us / asic.latency_us
        assert ratio == pytest.approx(TSMC28_LIKE.frequency_factor)

    def test_more_efficient_than_fpga(self, fpga_design):
        asic = project_to_asic(fpga_design)
        assert asic.energy_efficiency > fpga_design.energy_efficiency

    def test_area_plausible(self, fpga_design):
        """An RNN accelerator at 28 nm should be a few to tens of mm^2."""
        asic = project_to_asic(fpga_design)
        assert 1.0 < asic.area_mm2 < 100.0

    def test_describe(self, fpga_design):
        text = project_to_asic(fpga_design).describe()
        assert "mm^2" in text and "FPS" in text

    def test_process_validation(self):
        with pytest.raises(ConfigError):
            ASICProcess("bad", 28, 1e-3, 1e-2, 1e-3, 8.0, 0.0, 0.3)

    def test_custom_process_scales(self, fpga_design):
        slow = ASICProcess("half-speed", 28, 9e-4, 1.2e-2, 6e-4, 8.0, 2.0, 0.28)
        asic_fast = project_to_asic(fpga_design)
        asic_slow = project_to_asic(fpga_design, slow)
        assert asic_slow.fps < asic_fast.fps
