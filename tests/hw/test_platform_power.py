"""Platform specs (Table IV) and the power model."""

import pytest

from repro.errors import ConfigError
from repro.hw.platform import (
    ADM_PCIE_7V3,
    PLATFORMS,
    XCKU060,
    ResourceVector,
    get_platform,
)
from repro.hw.power import OFFCHIP_SUBSYSTEM_WATTS, energy_efficiency, power_watts


class TestTableIV:
    """Resource totals must match the published Table IV exactly."""

    def test_7v3_row(self):
        assert (ADM_PCIE_7V3.dsp, ADM_PCIE_7V3.bram_blocks) == (3600, 1470)
        assert (ADM_PCIE_7V3.lut, ADM_PCIE_7V3.ff) == (859_200, 429_600)
        assert ADM_PCIE_7V3.process_nm == 28

    def test_ku060_row(self):
        assert (XCKU060.dsp, XCKU060.bram_blocks) == (2760, 1080)
        assert (XCKU060.lut, XCKU060.ff) == (331_680, 663_360)
        assert XCKU060.process_nm == 20

    def test_bram_capacity_in_paper_range(self):
        """Sec. VI-B: 'the FPGAs we test on ... have 4-8MB BRAM'."""
        for platform in PLATFORMS.values():
            assert 4e6 <= platform.bram_bytes <= 8e6


class TestLookup:
    def test_aliases(self):
        assert get_platform("ku060") is XCKU060
        assert get_platform("7v3") is ADM_PCIE_7V3
        assert get_platform("XCKU060") is XCKU060

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            get_platform("virtex-9000")


class TestResourceVector:
    def test_add_and_scale(self):
        a = ResourceVector(dsp=1, bram_blocks=2, lut=3, ff=4)
        b = (a + a).scale(0.5)
        assert (b.dsp, b.bram_blocks, b.lut, b.ff) == (1, 2, 3, 4)

    def test_utilization_and_fits(self):
        used = ResourceVector(dsp=2760, bram_blocks=0, lut=0, ff=0)
        assert XCKU060.utilization(used)["dsp"] == pytest.approx(1.0)
        assert XCKU060.fits(used)
        assert not XCKU060.fits(ResourceVector(dsp=2761))


class TestPower:
    def test_static_floor(self):
        assert power_watts(XCKU060, ResourceVector()) == pytest.approx(
            XCKU060.static_watts
        )

    def test_monotone_in_usage(self):
        low = power_watts(XCKU060, ResourceVector(dsp=100))
        high = power_watts(XCKU060, ResourceVector(dsp=1000))
        assert high > low

    def test_offchip_adder(self):
        base = power_watts(XCKU060, ResourceVector())
        with_ddr = power_watts(XCKU060, ResourceVector(), offchip=True)
        assert with_ddr - base == pytest.approx(OFFCHIP_SUBSYSTEM_WATTS)

    def test_energy_efficiency(self):
        assert energy_efficiency(1000.0, 10.0) == pytest.approx(100.0)
        with pytest.raises(ValueError):
            energy_efficiency(1.0, 0.0)

    def test_paper_7v3_operating_range(self):
        """E-RNN designs measured 22-29 W on the 7V3 (Table III)."""
        from repro.config import AccelSpec, RNNSpec
        from repro.hw.accelerator import AcceleratorModel

        spec = RNNSpec(
            "lstm", 153, (1024,), 39, block_sizes=(8,),
            peephole=True, projection_size=512,
        )
        design = AcceleratorModel(spec, AccelSpec("ADM-PCIE-7V3")).build()
        assert 20.0 <= design.power_watts <= 30.0
