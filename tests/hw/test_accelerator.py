"""Whole-accelerator model: the Table III shape assertions."""

import pytest

from repro.config import AccelSpec, RNNSpec
from repro.errors import FitError
from repro.hw.accelerator import CLSTM_PE_EFFICIENCY, DEFAULT_NUM_CUS, AcceleratorModel


def lstm_spec(block=8):
    return RNNSpec(
        "lstm", 153, (1024,), 39, block_sizes=(block,),
        peephole=True, projection_size=512,
    )


def gru_spec(block=8):
    return RNNSpec("gru", 153, (1024,), 39, block_sizes=(block,))


def build(spec, platform="XCKU060", bits=12, pe_efficiency=1.0, cus=None):
    accel = AccelSpec(platform, weight_bits=bits, input_bits=bits,
                      num_compute_units=cus)
    return AcceleratorModel(spec, accel, pe_efficiency=pe_efficiency).build()


class TestAllocation:
    def test_rejects_dense_spec(self):
        dense = RNNSpec("lstm", 153, (1024,), 39, peephole=True,
                        projection_size=512)
        with pytest.raises(FitError):
            AcceleratorModel(dense, AccelSpec("XCKU060"))

    def test_three_cus_by_default(self):
        design = build(lstm_spec())
        assert design.num_cus == DEFAULT_NUM_CUS
        assert design.num_pes == design.pes_per_cu * design.num_cus

    def test_cu_override(self):
        design = build(lstm_spec(), cus=2)
        assert design.num_cus == 2

    def test_design_fits_platform(self):
        for platform in ("XCKU060", "ADM-PCIE-7V3"):
            design = build(lstm_spec(), platform)
            assert all(v <= 1.0 for v in design.utilization.values())

    def test_dsp_heavily_utilized(self):
        """The paper's designs are DSP-bound (Table III: 79-96%)."""
        design = build(lstm_spec(), "XCKU060")
        assert design.utilization["dsp"] > 0.75


class TestTableIIIShape:
    def test_latency_in_paper_ballpark_ku060(self):
        """KU060 FFT8: paper 13.7 us; the model must land within 25%."""
        design = build(lstm_spec(8), "XCKU060")
        assert design.latency_us == pytest.approx(13.7, rel=0.25)

    def test_fft16_roughly_halves_latency(self):
        fft8 = build(lstm_spec(8))
        fft16 = build(lstm_spec(16))
        ratio = fft8.latency_us / fft16.latency_us
        assert 1.5 <= ratio <= 2.3  # paper: 13.7/7.4 = 1.85

    def test_gru_faster_than_lstm(self):
        """Paper Sec. VIII-B3: GRU ≈ 1.2x LSTM at the same block size."""
        lstm = build(lstm_spec(8))
        gru = build(gru_spec(8))
        assert gru.latency_us < lstm.latency_us

    def test_clstm_slower_than_ernn(self):
        """Paper: E-RNN ≈ 1.3x C-LSTM performance at block 8 on the 7V3."""
        ernn = build(lstm_spec(8), "ADM-PCIE-7V3", bits=12)
        clstm = build(
            lstm_spec(8), "ADM-PCIE-7V3", bits=16,
            pe_efficiency=CLSTM_PE_EFFICIENCY,
        )
        ratio = clstm.latency_us / ernn.latency_us
        assert 1.1 <= ratio <= 1.8

    def test_concurrency_is_num_cus(self):
        """Table III: FPS x latency ≈ 3 for every configuration."""
        design = build(lstm_spec(8))
        concurrency = design.fps * design.latency_us * 1e-6
        assert concurrency == pytest.approx(design.num_cus, rel=1e-9)

    def test_more_cus_trade_latency_for_throughput(self):
        three = build(lstm_spec(8), cus=3)
        six = build(lstm_spec(8), cus=6)
        assert six.fps < three.fps * 2  # fewer PEs per CU
        assert six.latency_us > three.latency_us

    def test_energy_efficiency_beats_ese_by_over_20x(self):
        from repro.baselines.ese import ESEAcceleratorModel

        ese = ESEAcceleratorModel(lstm_spec(1).with_block_sizes(())).build()
        ernn = build(lstm_spec(8), "ADM-PCIE-7V3")
        ratio = ernn.energy_efficiency / ese.energy_efficiency
        assert ratio > 20.0  # paper: 23.4x

    def test_7v3_and_ku060_comparable(self):
        """The paper's two platforms land within ~35% of each other."""
        ku = build(lstm_spec(8), "XCKU060")
        v7 = build(lstm_spec(8), "ADM-PCIE-7V3")
        assert 0.5 < ku.latency_us / v7.latency_us < 2.0
