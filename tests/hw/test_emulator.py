"""Functional CU emulator: hardware-faithful inference matches the model."""

import numpy as np
import pytest

from repro.asr.pipeline import TrainConfig, train_model
from repro.runtime import evaluate_per
from repro.config import RNNSpec
from repro.core.flow import ernn_compress
from repro.errors import ConfigError
from repro.hw.emulator import CUEmulator, SpectralWeights
from repro.nn.autograd import no_grad
from repro.nn.circulant_layer import CirculantLinear
from repro.nn.rnn import StackedRNNClassifier


@pytest.fixture(scope="module")
def structured_model(trained_dense, micro_datasets):
    train, _ = micro_datasets
    result = ernn_compress(
        trained_dense,
        trained_dense.spec.with_block_sizes((4,)),
        train,
        admm_train=TrainConfig(epochs=2, learning_rate=2e-3),
        retrain=TrainConfig(epochs=3, learning_rate=2e-3),
    )
    return result.model


class TestSpectralWeights:
    def test_matvec_matches_layer_at_high_precision(self, rng):
        layer = CirculantLinear(8, 12, block_size=4, bias=False, rng=rng)
        weights = SpectralWeights.from_layer(layer, bits=24)
        x = rng.standard_normal((3, 8))
        from repro.nn.autograd import Tensor

        with no_grad():
            expected = layer(Tensor(x)).data
        assert np.allclose(weights.matvec(x, bits=24), expected, atol=1e-4)

    def test_quantization_noise_bounded_at_12_bits(self, rng):
        layer = CirculantLinear(16, 16, block_size=8, bias=False, rng=rng)
        weights = SpectralWeights.from_layer(layer, bits=12)
        x = rng.standard_normal((2, 16))
        from repro.nn.autograd import Tensor

        with no_grad():
            expected = layer(Tensor(x)).data
        got = weights.matvec(x, bits=12)
        scale = np.max(np.abs(expected)) + 1e-12
        assert np.max(np.abs(got - expected)) / scale < 0.05

    def test_input_width_checked(self, rng):
        layer = CirculantLinear(8, 8, block_size=4, bias=False, rng=rng)
        weights = SpectralWeights.from_layer(layer, bits=12)
        with pytest.raises(ConfigError):
            weights.matvec(np.zeros((1, 7)), bits=12)

    def test_bram_bits_accounting(self, rng):
        layer = CirculantLinear(8, 8, block_size=4, bias=False, rng=rng)
        weights = SpectralWeights.from_layer(layer, bits=12)
        # 2x2 blocks x 3 half-spectrum bins x 2 words x 12 bits.
        assert weights.bram_bits == 2 * 2 * 3 * 2 * 12


class TestCUEmulator:
    def test_rejects_dense_model(self, trained_dense):
        with pytest.raises(ConfigError):
            CUEmulator(trained_dense)

    def test_logits_close_to_float_model(self, structured_model, micro_datasets):
        _, test = micro_datasets
        emulator = CUEmulator(structured_model, weight_bits=14, pwl_segments=64)
        x = test.features[0][:, None, :]
        with no_grad():
            float_logits = structured_model(x).data
        hw_logits = emulator.forward(x)
        assert hw_logits.shape == float_logits.shape
        # Logit-level agreement within quantization + PWL tolerance.
        scale = np.max(np.abs(float_logits)) + 1e-12
        assert np.max(np.abs(hw_logits - float_logits)) / scale < 0.25

    def test_decisions_mostly_agree(self, structured_model, micro_datasets):
        _, test = micro_datasets
        emulator = CUEmulator(structured_model, weight_bits=12)
        x = test.features[0][:, None, :]
        with no_grad():
            float_choice = structured_model(x).data.argmax(-1)
        hw_choice = emulator.forward(x).argmax(-1)
        assert (hw_choice == float_choice).mean() > 0.85

    def test_per_close_to_quantized_model(self, structured_model, micro_datasets):
        """The emulator's PER is the number the FPGA would score."""
        from repro.asr.decoder import FrameDecoder, collapse_repeats
        from repro.asr.metrics import corpus_error_rate

        _, test = micro_datasets
        emulator = CUEmulator(structured_model, weight_bits=12)
        decoder = FrameDecoder(test.phone_set)
        refs, hyps = [], []
        for features, labels in zip(test.features, test.frame_labels):
            logits = emulator.forward(features[:, None, :])[:, 0, :]
            hyps.append(decoder.decode_utterance(logits))
            refs.append(
                decoder.reference(
                    test.phone_set.decode(collapse_repeats(list(labels)))
                )
            )
        hw_per = corpus_error_rate(refs, hyps)
        float_per = evaluate_per(structured_model, test)
        assert abs(hw_per - float_per) < 30.0  # micro-scale token noise

    def test_gru_emulation(self, micro_datasets):
        train, _ = micro_datasets
        spec = RNNSpec(
            "gru", train.feature_dim, (16,), len(train.phone_set),
            block_sizes=(4,),
        )
        model = StackedRNNClassifier(spec, structured=True,
                                     rng=np.random.default_rng(2))
        train_model(model, train, TrainConfig(epochs=2, seed=2))
        emulator = CUEmulator(model, weight_bits=14, pwl_segments=64)
        x = train.features[0][:6][:, None, :]
        with no_grad():
            float_logits = model(x).data
        hw_logits = emulator.forward(x)
        scale = np.max(np.abs(float_logits)) + 1e-12
        assert np.max(np.abs(hw_logits - float_logits)) / scale < 0.25

    def test_bram_accounting_positive(self, structured_model):
        emulator = CUEmulator(structured_model)
        assert emulator.bram_weight_bits() > 0
