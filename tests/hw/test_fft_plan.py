"""FFT plan cache: cached and cold transforms are byte-identical."""

import numpy as np
import pytest

from repro.hw import fft_fixed
from repro.hw.fft_fixed import (
    FixedPointFFT,
    clear_plan_cache,
    fixed_point_circulant_matvec,
    get_plan,
    plan_cache_info,
)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_plan_cache()
    fft_fixed._SPECTRUM_CACHE.clear()
    yield
    clear_plan_cache()
    fft_fixed._SPECTRUM_CACHE.clear()


class TestPlanCache:
    @pytest.mark.parametrize("size", [4, 16, 64, 256])
    @pytest.mark.parametrize("bits", [6, 12, 24])
    def test_cold_and_warm_spectra_identical(self, size, bits):
        x = np.random.default_rng(size + bits).uniform(-2, 2, (5, size))
        cold = FixedPointFFT(size, bits).forward(x)
        assert plan_cache_info()["misses"] == 1
        warm = FixedPointFFT(size, bits).forward(x)
        assert plan_cache_info()["hits"] >= 1
        assert np.array_equal(cold, warm)

    def test_plans_keyed_on_config(self):
        get_plan(16, 12)
        get_plan(16, 12)
        get_plan(16, 8)
        get_plan(32, 12)
        get_plan(16, 12, twiddle_bits=10)
        info = plan_cache_info()
        assert info["plans"] == 4
        assert info["hits"] == 1
        assert info["misses"] == 4

    def test_plan_tables_match_formulas(self):
        """The plan ROMs hold exactly what the unplanned code rebuilt."""
        plan = get_plan(16, 12)
        fft = FixedPointFFT(16, 12)
        k = np.arange(8)
        exact = np.exp(-2j * np.pi * k / 16)
        fmt = fft._twiddle_format()
        expected = fmt.quantize(exact.real) + 1j * fmt.quantize(exact.imag)
        assert np.array_equal(plan.twiddles, expected)
        # Bit reversal of 0..15 over 4 stages.
        expected_rev = [int(f"{i:04b}"[::-1], 2) for i in range(16)]
        assert plan.bit_reversal.tolist() == expected_rev
        assert len(plan.stage_twiddles) == plan.stages == 4
        half = 1
        for w in plan.stage_twiddles:
            assert np.array_equal(
                w, plan.twiddles[np.arange(half) * (16 // (2 * half))]
            )
            half *= 2

    def test_plan_tables_read_only(self):
        plan = get_plan(8, 12)
        with pytest.raises(ValueError):
            plan.twiddles[0] = 0
        with pytest.raises(ValueError):
            plan.bit_reversal[0] = 1

    def test_clear_resets_counters(self):
        get_plan(8, 12)
        clear_plan_cache()
        assert plan_cache_info() == {"plans": 0, "hits": 0, "misses": 0}


class TestSpectrumCache:
    def test_matvec_cached_and_cold_identical(self):
        rng = np.random.default_rng(7)
        w, x = rng.uniform(-1, 1, 16), rng.uniform(-1, 1, 16)
        cold = fixed_point_circulant_matvec(w, x, 12)
        assert len(fft_fixed._SPECTRUM_CACHE) == 1
        warm = fixed_point_circulant_matvec(w, x, 12)
        assert np.array_equal(cold, warm)

    def test_distinct_weights_distinct_entries(self):
        rng = np.random.default_rng(7)
        x = rng.uniform(-1, 1, 16)
        fixed_point_circulant_matvec(rng.uniform(-1, 1, 16), x, 12)
        fixed_point_circulant_matvec(rng.uniform(-1, 1, 16), x, 12)
        assert len(fft_fixed._SPECTRUM_CACHE) == 2

    def test_eviction_bounds_the_cache(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, 8)
        for _ in range(fft_fixed._SPECTRUM_CACHE_MAX + 10):
            fixed_point_circulant_matvec(rng.uniform(-1, 1, 8), x, 12)
        assert len(fft_fixed._SPECTRUM_CACHE) <= fft_fixed._SPECTRUM_CACHE_MAX

    def test_seed_baseline_matches_current(self):
        from repro.bench.baselines import seed_circulant_matvec

        rng = np.random.default_rng(3)
        for size in (8, 32):
            for bits in (6, 12, 16):
                w, x = rng.uniform(-1, 1, size), rng.uniform(-1, 1, size)
                assert np.array_equal(
                    fixed_point_circulant_matvec(w, x, bits),
                    seed_circulant_matvec(w, x, bits),
                ), (size, bits)


class TestBatchedErrorSweep:
    def test_max_error_vs_float_is_batched_and_sane(self):
        fft = FixedPointFFT(16, bits=12)
        error = fft.max_error_vs_float(trials=20)
        assert 0 < error < 1e-2

    def test_error_still_monotone_in_bits(self):
        errors = [
            FixedPointFFT(16, bits=bits).max_error_vs_float(trials=10)
            for bits in (16, 12, 8)
        ]
        assert errors[0] < errors[1] < errors[2]
