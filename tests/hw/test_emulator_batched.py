"""Bit-exactness of the batched emulator against the per-frame oracle.

The batched (layer-major, hoisted input products) and per-frame
(frame-major, one matvec per matrix) execution strategies must produce
*byte-identical* logits — quantization tolerance is not tolerated here,
because the batched path claims to be the same computation, not a close
one.
"""

import numpy as np
import pytest

from repro.config import RNNSpec
from repro.hw.emulator import CUEmulator, SpectralWeights
from repro.nn.circulant_layer import CirculantLinear
from repro.nn.rnn import StackedRNNClassifier


def _emulator(spec: RNNSpec, bits: int = 12) -> CUEmulator:
    model = StackedRNNClassifier(spec, structured=True,
                                 rng=np.random.default_rng(0))
    return CUEmulator(model, weight_bits=bits)


SPECS = {
    "lstm": RNNSpec("lstm", 20, (64,), 10, block_sizes=(8,)),
    "lstm-stack": RNNSpec("lstm", 20, (64, 32), 10, block_sizes=(8, 8)),
    "lstm-peep-proj": RNNSpec(
        "lstm", 20, (64,), 10, block_sizes=(8,),
        peephole=True, projection_size=32,
    ),
    "gru": RNNSpec("gru", 20, (64,), 10, block_sizes=(8,)),
    "gru-stack": RNNSpec("gru", 20, (64, 32), 10, block_sizes=(8, 4)),
}


class TestBatchedEqualsPerFrame:
    @pytest.mark.parametrize("name", sorted(SPECS))
    @pytest.mark.parametrize("batch", [1, 8])
    def test_byte_identical_logits(self, name, batch):
        emulator = _emulator(SPECS[name])
        x = np.random.default_rng(9).standard_normal((25, batch, 20))
        batched = emulator.forward(x)
        reference = emulator.forward_reference(x)
        assert batched.shape == reference.shape
        assert batched.dtype == reference.dtype
        assert np.array_equal(batched, reference)

    @pytest.mark.parametrize("bits", [6, 12, 16])
    def test_byte_identical_across_bit_widths(self, bits):
        emulator = _emulator(SPECS["lstm-peep-proj"], bits=bits)
        x = np.random.default_rng(3).standard_normal((12, 4, 20))
        assert np.array_equal(
            emulator.forward(x), emulator.forward_reference(x)
        )

    def test_single_frame(self):
        emulator = _emulator(SPECS["gru"])
        x = np.random.default_rng(1).standard_normal((1, 3, 20))
        assert np.array_equal(
            emulator.forward(x), emulator.forward_reference(x)
        )

    def test_shape_validation_matches(self):
        emulator = _emulator(SPECS["lstm"])
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            emulator.forward(np.zeros((4, 20)))
        with pytest.raises(ConfigError):
            emulator.forward_reference(np.zeros((4, 20)))


class TestSpectralWeightsVariants:
    """matvec_step and matvec_frames against the oracle matvec."""

    @pytest.mark.parametrize(
        "in_features,out_features,block,bits,batch",
        [
            (153, 128, 8, 12, 8),   # padded input width
            (16, 16, 4, 12, 1),     # B=1 (the GEMM's degenerate shape)
            (32, 64, 8, 6, 3),      # coarse quantization
            (24, 24, 8, 16, 8),     # wide words
        ],
    )
    def test_all_variants_byte_identical(
        self, rng, in_features, out_features, block, bits, batch
    ):
        layer = CirculantLinear(
            in_features, out_features, block_size=block, bias=False, rng=rng
        )
        weights = SpectralWeights.from_layer(layer, bits)
        x = rng.standard_normal((7, batch, in_features)) * 3
        per_frame = np.stack([weights.matvec(x[t], bits) for t in range(7)])
        stepped = np.stack([weights.matvec_step(x[t], bits) for t in range(7)])
        hoisted = weights.matvec_frames(x, bits)
        assert np.array_equal(per_frame, stepped)
        assert np.array_equal(per_frame, hoisted)

    def test_matvec_frames_rejects_2d(self, rng):
        layer = CirculantLinear(8, 8, block_size=4, bias=False, rng=rng)
        weights = SpectralWeights.from_layer(layer, 12)
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            weights.matvec_frames(np.zeros((3, 8)), 12)

    def test_width_check_consistent(self, rng):
        layer = CirculantLinear(8, 8, block_size=4, bias=False, rng=rng)
        weights = SpectralWeights.from_layer(layer, 12)
        from repro.errors import ConfigError

        for call in (
            lambda: weights.matvec(np.zeros((1, 7)), 12),
            lambda: weights.matvec_step(np.zeros((1, 7)), 12),
            lambda: weights.matvec_frames(np.zeros((2, 1, 7)), 12),
        ):
            with pytest.raises(ConfigError):
                call()


class TestSeedBaselineAgreement:
    """The frozen benchmark baselines still compute today's numbers."""

    def test_seed_emulator_matches_current(self):
        from repro.bench.baselines import seed_emulator_forward

        emulator = _emulator(SPECS["lstm-peep-proj"])
        x = np.random.default_rng(4).standard_normal((10, 4, 20))
        assert np.array_equal(
            seed_emulator_forward(emulator, x), emulator.forward(x)
        )

    def test_seed_emulator_matches_current_gru(self):
        from repro.bench.baselines import seed_emulator_forward

        emulator = _emulator(SPECS["gru-stack"])
        x = np.random.default_rng(5).standard_normal((10, 2, 20))
        assert np.array_equal(
            seed_emulator_forward(emulator, x), emulator.forward(x)
        )

    def test_seed_matvec_matches_current(self, rng):
        from repro.bench.baselines import seed_matvec

        layer = CirculantLinear(32, 64, block_size=8, bias=False, rng=rng)
        weights = SpectralWeights.from_layer(layer, 12)
        x = rng.standard_normal((5, 32))
        assert np.array_equal(
            seed_matvec(weights, x, 12), weights.matvec(x, 12)
        )
