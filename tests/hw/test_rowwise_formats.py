"""Vectorized format fitting must replicate the scalar fit bit-exactly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.hw.fixed_point import (
    FixedPointFormat,
    fit_frac_bits_from_stats,
    rowwise_fit_frac_bits,
    rowwise_quantize,
)


class TestRowwiseFit:
    @settings(max_examples=80, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        bits=st.integers(4, 24),
        scale_exp=st.integers(-8, 8),
    )
    def test_matches_scalar_fit(self, seed, bits, scale_exp):
        rng = np.random.default_rng(seed)
        values = rng.uniform(-4, 4, size=(4, 9)) * 2.0**scale_exp
        frac = rowwise_fit_frac_bits(values, bits)
        for row in range(len(values)):
            fmt = FixedPointFormat.fit(values[row], bits)
            assert frac[row] == fmt.frac_bits
            assert np.array_equal(
                rowwise_quantize(values[row][None], frac[row : row + 1], bits)[0],
                fmt.quantize(values[row]),
            )

    def test_negative_power_of_two_boundary(self):
        """The guard case: the most negative value rounds onto -2^(b-1)."""
        for exponent in (-3, 0, 5, 11):
            values = np.array([[-(2.0**exponent), 2.0**exponent / 3]])
            bits = 8
            fmt = FixedPointFormat.fit(values[0], bits)
            assert rowwise_fit_frac_bits(values, bits)[0] == fmt.frac_bits

    def test_zero_row(self):
        frac = rowwise_fit_frac_bits(np.zeros((2, 5)), 12)
        assert frac.tolist() == [11, 11]

    def test_mixed_rows(self):
        values = np.stack([np.zeros(6), np.full(6, 100.0), np.full(6, 1e-3)])
        frac = rowwise_fit_frac_bits(values, 12)
        for row in range(3):
            assert frac[row] == FixedPointFormat.fit(values[row], 12).frac_bits

    def test_empty_raises(self):
        with pytest.raises(QuantizationError):
            rowwise_fit_frac_bits(np.zeros((3, 0)), 12)


class TestFitFromStats:
    @settings(max_examples=80, deadline=None)
    @given(seed=st.integers(0, 10_000), bits=st.integers(4, 24))
    def test_matches_scalar_fit(self, seed, bits):
        rng = np.random.default_rng(seed)
        values = rng.uniform(-4, 4, size=17) * 10.0 ** rng.integers(-5, 5)
        fmt = FixedPointFormat.fit(values, bits)
        got = fit_frac_bits_from_stats(
            float(np.max(np.abs(values))), float(values.min()), bits
        )
        assert got == fmt.frac_bits

    def test_positive_only_never_trips_guard(self):
        values = np.array([2.0**5 - 1e-9])
        fmt = FixedPointFormat.fit(values, 8)
        assert (
            fit_frac_bits_from_stats(float(values[0]), float(values[0]), 8)
            == fmt.frac_bits
        )

    def test_zero_peak(self):
        assert fit_frac_bits_from_stats(0.0, 0.0, 12) == 11
