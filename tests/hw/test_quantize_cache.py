"""FitStatsCache: cached re-quantization is byte-identical to refitting."""

import numpy as np
import pytest

from repro.config import RNNSpec
from repro.errors import QuantizationError
from repro.hw.quantize import FitStatsCache, quantize_state, quantized_copy
from repro.nn.rnn import StackedRNNClassifier


@pytest.fixture(scope="module")
def model_state():
    spec = RNNSpec("lstm", 20, (32,), 10, block_sizes=(4,))
    model = StackedRNNClassifier(spec, structured=True,
                                 rng=np.random.default_rng(2))
    return model, model.state_dict()


class TestFitStatsCache:
    def test_cached_equals_uncached_across_widths(self, model_state):
        _, state = model_state
        cache = FitStatsCache()
        for bits in (16, 12, 8, 6):
            cached_q, cached_f = quantize_state(state, bits, cache)
            plain_q, plain_f = quantize_state(state, bits)
            assert cached_f == plain_f
            for name in plain_q:
                assert np.array_equal(cached_q[name], plain_q[name]), (name, bits)

    def test_stats_scanned_once(self, model_state):
        _, state = model_state
        cache = FitStatsCache()
        quantize_state(state, 12, cache)
        assert cache.misses == len(state)
        assert cache.hits == 0
        quantize_state(state, 8, cache)
        quantize_state(state, 6, cache)
        assert cache.misses == len(state)
        assert cache.hits == 2 * len(state)

    def test_shape_change_is_a_miss(self):
        cache = FitStatsCache()
        cache.fit("w", np.ones(4), 12)
        cache.fit("w", np.ones(5), 12)
        assert cache.misses == 2

    def test_empty_still_raises(self):
        cache = FitStatsCache()
        with pytest.raises(QuantizationError):
            cache.fit("w", np.zeros(0), 12)

    def test_quantized_copy_with_cache(self, model_state):
        model, _ = model_state
        cache = FitStatsCache()
        cached = quantized_copy(model, 12, fit_cache=cache)
        plain = quantized_copy(model, 12)
        for (name, a), (_, b) in zip(
            sorted(cached.state_dict().items()),
            sorted(plain.state_dict().items()),
        ):
            assert np.array_equal(a, b), name
        assert cache.misses > 0
