"""Every deprecated shim warns once, pointing at the *caller's* line.

``stacklevel=2`` is the contract: a user seeing the warning should see
their own file and line, not the shim's.  These tests pin that for the
PR-1 build-side shims (AcceleratorModel, HLSFramework, ERNNFramework) and
the PR-4 pipeline shims, and check each shim still does its job.
"""

import warnings

import numpy as np
import pytest

from repro.config import AccelSpec, RNNSpec

SPEC = RNNSpec("lstm", 12, (32,), 8, block_sizes=(4,))


def _sole_deprecation(caught):
    records = [w for w in caught if w.category is DeprecationWarning]
    assert len(records) == 1
    return records[0]


class TestWarningsPointAtCaller:
    def test_accelerator_model(self):
        from repro.hw.accelerator import AcceleratorModel

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            model = AcceleratorModel(SPEC, AccelSpec("XCKU060"))
        record = _sole_deprecation(caught)
        assert record.filename == __file__
        assert model.build().num_pes > 0  # the shim still works

    def test_hls_framework(self):
        from repro.hls.framework import HLSFramework

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            framework = HLSFramework(SPEC, AccelSpec("XCKU060"))
        assert _sole_deprecation(caught).filename == __file__
        assert framework.build().code

    def test_ernn_framework(self):
        from repro.core.ernn import ERNNFramework

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ERNNFramework(SPEC, trainer=lambda spec: 20.0)
        assert _sole_deprecation(caught).filename == __file__

    @pytest.mark.parametrize(
        "name", ["evaluate_per", "evaluate_frame_accuracy"]
    )
    def test_pipeline_evaluation_shims(self, name, micro_datasets):
        from repro.asr import pipeline
        from repro.nn.rnn import StackedRNNClassifier

        train, _ = micro_datasets
        spec = RNNSpec(
            "lstm", train.feature_dim, (16,), len(train.phone_set)
        )
        model = StackedRNNClassifier(spec, rng=np.random.default_rng(0))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            value = getattr(pipeline, name)(model, train, batch_size=4)
        assert _sole_deprecation(caught).filename == __file__
        assert np.isfinite(value)


class TestInternalPathsStayQuiet:
    """Library internals route around the shims: no warnings leak."""

    def test_design_price_warns_nothing(self):
        from repro.api import Design

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("error", DeprecationWarning)
            Design.lstm(64).blocks(8).io(12, 8).on("XCKU060").price()
        assert not caught

    def test_runtime_evaluate_warns_nothing(self, trained_dense, micro_datasets):
        from repro.runtime import evaluate_per

        _, test = micro_datasets
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("error", DeprecationWarning)
            evaluate_per(trained_dense, test, batch_size=4)
        assert not caught
