"""compile() sources, Engine memoization, immutability, persistence."""

import numpy as np
import pytest

from repro.api import Design, Engine
from repro.asr.phones import PhoneSet
from repro.config import RNNSpec
from repro.errors import ConfigError, SerializationError
from repro.nn.rnn import StackedRNNClassifier
from repro.nn.serialization import load_model, save_model
from repro.runtime import BACKEND_REGISTRY, CompiledModel, compile

SPEC = RNNSpec("lstm", 12, (32,), 8, block_sizes=(4,))


@pytest.fixture
def model():
    return StackedRNNClassifier(SPEC, structured=True, rng=np.random.default_rng(3))


class TestCompileSources:
    def test_from_model(self, model):
        compiled = compile(model, backend="fixed", cache=False)
        assert compiled.spec == SPEC
        assert compiled.backend == "fixed"
        assert compiled.options["weight_bits"] == 12
        # weights snapshot, not a live reference
        frame = np.zeros((1, 12))
        before = compiled.session().push(frame)
        model.classifier.bias.data += 1.0
        assert np.array_equal(compiled.session().push(frame), before)

    def test_from_spec_builds_untrained_model(self):
        compiled = compile(SPEC, backend="fixed", cache=False)
        assert compiled.structured  # block sizes -> structured init
        x = np.random.default_rng(0).standard_normal((4, 2, 12))
        assert compiled.run(x).shape == (4, 2, 8)

    def test_from_design_inherits_accel_bits(self):
        design = Design.lstm(64).blocks(8).io(12, 8).on("XCKU060").bits(8)
        compiled = compile(design, backend="fixed", cache=False)
        assert compiled.options["weight_bits"] == 8

    def test_retarget_compiled_keeps_weights_and_meta(self, model):
        phones = PhoneSet.folded().subset(8)
        float_compiled = compile(
            model, backend="float", phone_set=phones, cache=False
        )
        fixed_compiled = compile(float_compiled, backend="fixed", cache=False)
        assert fixed_compiled.backend == "fixed"
        assert fixed_compiled.meta == float_compiled.meta
        for name, values in float_compiled.state.items():
            assert np.array_equal(values, fixed_compiled.state[name])

    def test_fixed_backend_rejects_dense_model(self):
        dense = StackedRNNClassifier(
            SPEC.with_block_sizes(()), rng=np.random.default_rng(0)
        )
        with pytest.raises(ConfigError, match="block-circulant"):
            compile(dense, backend="fixed", cache=False)

    def test_unknown_backend_and_source(self, model):
        from repro.errors import RegistryError

        with pytest.raises(RegistryError):
            compile(model, backend="tpu")
        with pytest.raises(ConfigError, match="compile\\(\\) accepts"):
            compile(42)

    def test_registry_lists_builtins(self):
        assert set(BACKEND_REGISTRY.names()) >= {"float", "fixed"}


class TestEngineMemoization:
    def test_same_weights_reuse_artifact(self, model):
        engine = Engine(maxsize=8)
        first = compile(model, backend="fixed", engine=engine)
        again = compile(model, backend="fixed", engine=engine)
        assert first is again
        assert engine.stats().hits == 1

    def test_weight_change_invalidates(self, model):
        engine = Engine(maxsize=8)
        first = compile(model, backend="fixed", engine=engine)
        model.classifier.bias.data = model.classifier.bias.data + 0.5
        second = compile(model, backend="fixed", engine=engine)
        assert first is not second
        assert first.fingerprint != second.fingerprint

    def test_backend_and_options_partition_cache(self, model):
        engine = Engine(maxsize=8)
        fixed12 = compile(model, backend="fixed", engine=engine)
        fixed8 = compile(model, backend="fixed", weight_bits=8, engine=engine)
        floaty = compile(model, backend="float", engine=engine)
        assert len({fixed12.fingerprint, fixed8.fingerprint, floaty.fingerprint}) == 3

    def test_cache_false_bypasses(self, model):
        engine = Engine(maxsize=8)
        compile(model, backend="float", cache=False, engine=engine)
        assert engine.stats().misses == 0


class TestImmutability:
    def test_state_arrays_write_protected(self, model):
        compiled = compile(model, backend="float", cache=False)
        with pytest.raises(ValueError):
            compiled.state["classifier.bias"][0] = 1.0

    def test_to_model_copy_is_detached(self, model):
        compiled = compile(model, backend="float", cache=False)
        rebuilt = compiled.to_model()
        rebuilt.classifier.bias.data += 5.0  # mutable copy, artifact untouched
        assert np.array_equal(
            compiled.state["classifier.bias"],
            model.state_dict()["classifier.bias"],
        )


class TestPersistence:
    def test_round_trip_is_byte_identical(self, model, tmp_path):
        phones = PhoneSet.folded().subset(8)
        compiled = compile(
            model, backend="fixed", phone_set=phones, cache=False
        )
        path = compiled.save(tmp_path / "artifact.npz")
        loaded = CompiledModel.load(path)
        assert loaded.fingerprint == compiled.fingerprint
        assert loaded.meta == compiled.meta
        assert tuple(loaded.phone_set().phones) == tuple(phones.phones)
        x = np.random.default_rng(1).standard_normal((6, 2, 12))
        assert np.array_equal(loaded.run(x), compiled.run(x))

    def test_artifact_dir_acts_as_disk_cache(self, model, tmp_path):
        first = compile(
            model, backend="fixed", artifact_dir=tmp_path, cache=False
        )
        assert (tmp_path / f"{first.fingerprint}.npz").is_file()
        again = compile(
            model, backend="fixed", artifact_dir=tmp_path, cache=False
        )
        x = np.random.default_rng(2).standard_normal((3, 1, 12))
        assert np.array_equal(first.run(x), again.run(x))

    def test_load_rejects_training_checkpoint(self, model, tmp_path):
        path = tmp_path / "checkpoint.npz"
        save_model(model, path)
        with pytest.raises(SerializationError, match="load_model"):
            CompiledModel.load(path)

    def test_load_model_rejects_compiled_artifact(self, model, tmp_path):
        compiled = compile(model, backend="float", cache=False)
        path = compiled.save(tmp_path / "artifact.npz")
        with pytest.raises(SerializationError, match="CompiledModel.load"):
            load_model(path)

    def test_tampered_weights_fail_fingerprint(self, model, tmp_path):
        import json

        compiled = compile(model, backend="float", cache=False)
        path = compiled.save(tmp_path / "artifact.npz")
        with np.load(path, allow_pickle=False) as archive:
            arrays = {n: archive[n] for n in archive.files}
        name = next(n for n in arrays if n.startswith("param/"))
        arrays[name] = arrays[name] + 1.0
        np.savez(path, **arrays)
        with pytest.raises(SerializationError, match="corrupt"):
            CompiledModel.load(path)

    def test_decoder_requires_metadata(self, model):
        compiled = compile(model, backend="float", cache=False)
        with pytest.raises(ConfigError, match="phone_set"):
            compiled.decoder()
