"""Streaming ≡ batched: the runtime's defining byte-identity invariants.

`Session.push` frame by frame must equal the one-shot batched
`CompiledModel.run` on the same frames — for both backends, LSTM and GRU,
single and stacked layers, multiple bit widths — and for the fixed
backend both must equal `CUEmulator.forward_reference`, the per-frame
hardware oracle.  Quantization tolerance is not tolerated: the streaming
path claims to be the same computation, not a close one.
"""

import numpy as np
import pytest

from repro.config import RNNSpec
from repro.errors import ConfigError
from repro.nn.rnn import StackedRNNClassifier
from repro.runtime import check_conformance, compile
from repro.runtime.backends import ConformanceError, Executor

SPECS = {
    "lstm": RNNSpec("lstm", 20, (64,), 10, block_sizes=(8,)),
    "lstm-stack": RNNSpec("lstm", 20, (64, 32), 10, block_sizes=(8, 8)),
    "lstm-peep-proj": RNNSpec(
        "lstm", 20, (64,), 10, block_sizes=(8,),
        peephole=True, projection_size=32,
    ),
    "gru": RNNSpec("gru", 20, (64,), 10, block_sizes=(8,)),
    "gru-stack": RNNSpec("gru", 20, (64, 32), 10, block_sizes=(8, 4)),
}
BACKENDS = ("float", "fixed")


def _compiled(name: str, backend: str, bits: int = 12):
    model = StackedRNNClassifier(
        SPECS[name], structured=True, rng=np.random.default_rng(0)
    )
    return compile(model, backend=backend, weight_bits=bits, cache=False)


def _frames(name: str, frames: int = 15, batch: int = 3, seed: int = 9):
    return np.random.default_rng(seed).standard_normal(
        (frames, batch, SPECS[name].input_size)
    )


class TestStreamingEqualsBatched:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", sorted(SPECS))
    def test_push_byte_identical_to_run(self, name, backend):
        compiled = _compiled(name, backend)
        x = _frames(name)
        batched = compiled.run(x)
        session = compiled.session(batch_size=x.shape[1])
        for t in range(x.shape[0]):
            assert np.array_equal(session.push(x[t]), batched[t]), (
                f"{backend}/{name}: frame {t} diverged"
            )
        assert session.frames_pushed == x.shape[0]

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("bits", [6, 12, 16])
    def test_across_bit_widths(self, backend, bits):
        compiled = _compiled("lstm-peep-proj", backend, bits=bits)
        x = _frames("lstm-peep-proj", frames=10, batch=2, seed=3)
        streamed = compiled.session(batch_size=2).run(x)
        assert np.array_equal(streamed, compiled.run(x))

    @pytest.mark.parametrize("name", sorted(SPECS))
    def test_fixed_matches_forward_reference(self, name):
        """The fixed backend is the CU: streaming == the per-frame oracle."""
        compiled = _compiled(name, "fixed")
        x = _frames(name)
        oracle = compiled.executor().emulator.forward_reference(x)
        streamed = compiled.session(batch_size=x.shape[1]).run(x)
        assert np.array_equal(streamed, oracle)

    def test_float_matches_nn_forward(self):
        """The float backend replays ``model(x)`` bit for bit."""
        from repro.nn.autograd import no_grad

        model = StackedRNNClassifier(
            SPECS["lstm"], structured=True, rng=np.random.default_rng(0)
        )
        compiled = compile(model, backend="float", cache=False)
        x = _frames("lstm")
        with no_grad():
            legacy = model(x).data
        assert np.array_equal(compiled.run(x), legacy)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_width_one_vector_push(self, backend):
        compiled = _compiled("gru", backend)
        x = _frames("gru", frames=8, batch=1)
        batched = compiled.run(x)
        session = compiled.session()
        for t in range(8):
            logits = session.push(x[t, 0])  # bare (D,) in, (C,) out
            assert logits.shape == (10,)
            assert np.array_equal(logits, batched[t, 0])


class TestSessionState:
    def test_reset_restores_initial_stream(self):
        compiled = _compiled("lstm", "fixed")
        x = _frames("lstm", frames=6, batch=2)
        first = compiled.session(batch_size=2).run(x)
        session = compiled.session(batch_size=2)
        session.run(_frames("lstm", frames=4, batch=2, seed=77))
        session.reset()
        assert session.frames_pushed == 0
        assert np.array_equal(session.run(x), first)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sessions_are_isolated(self, backend):
        """Interleaved sessions never contaminate each other's state."""
        compiled = _compiled("gru-stack", backend)
        a = _frames("gru-stack", frames=10, batch=1, seed=1)
        b = _frames("gru-stack", frames=10, batch=1, seed=2)
        ref_a, ref_b = compiled.run(a), compiled.run(b)
        sess_a = compiled.session(batch_size=1)
        sess_b = compiled.session(batch_size=1)
        for t in range(10):
            out_a = sess_a.push(a[t])
            out_b = sess_b.push(b[t])
            assert np.array_equal(out_a, ref_a[t])
            assert np.array_equal(out_b, ref_b[t])

    def test_push_validates_shape(self):
        compiled = _compiled("lstm", "float")
        session = compiled.session(batch_size=2)
        with pytest.raises(ConfigError):
            session.push(np.zeros(20))  # bare vector on a width-2 session
        with pytest.raises(ConfigError):
            session.push(np.zeros((2, 21)))  # wrong feature width
        with pytest.raises(ConfigError):
            compiled.session(batch_size=0)


class TestConformanceChecker:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_builtin_backends_conform(self, backend):
        compiled = _compiled("lstm-stack", backend)
        check_conformance(
            compiled.executor(), _frames("lstm-stack", frames=5, batch=4)
        )

    def test_detects_row_coupling(self):
        """An executor whose rows interact must fail the contract."""

        class Coupled(Executor):
            input_size = 4
            num_classes = 4

            def initial_state(self, batch):
                return None

            def step(self, frames, state):
                return frames + frames.sum(), None

            def step_rows(self, frames, states):
                # Vectorized across rows without isolating them: each row
                # now sees the *whole* coalesced batch's sum.
                return frames + frames.sum(), list(states)

        with pytest.raises(ConformanceError, match="step_rows"):
            check_conformance(
                Coupled(), np.random.default_rng(0).standard_normal((3, 4, 4))
            )

    def test_detects_streaming_mismatch(self):
        class Drifting(Executor):
            input_size = 4
            num_classes = 4

            def initial_state(self, batch):
                return None

            def step(self, frames, state):
                return frames * 2.0, None

            def run(self, inputs):  # claims to be hoisted, computes else
                return np.asarray(inputs) * 2.000001

        with pytest.raises(ConformanceError, match="byte-identical"):
            check_conformance(
                Drifting(), np.random.default_rng(0).standard_normal((3, 2, 4))
            )
