"""Self-healing NetServer: supervision, lifecycle, and client reattach.

Every test here runs a real server with real worker processes and kills,
stalls, caps or evicts something, then pins the PR 8 contracts:

* a dead worker is respawned and only *its* sessions ever notice
  (blast radius);
* in-flight requests on the dead worker fail with structured
  **retryable** error frames — never a hang, never silent loss;
* a reattaching :class:`NetSession` replays its journal and the final
  stream is byte-identical to a standalone session;
* past the restart budget the shard degrades to non-retryable
  ``unavailable`` answers while the rest of the fleet keeps serving;
* idle TTL, per-worker session caps with LRU shedding, and the
  ``sessions`` / ``evict`` / ``health`` admin ops behave as documented.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.config import RNNSpec
from repro.errors import ConfigError
from repro.nn.rnn import StackedRNNClassifier
from repro.runtime import compile
from repro.runtime.net import (
    Client,
    NetError,
    NetServer,
    RetryableError,
    UnknownSessionError,
    route_session,
)

SPEC = RNNSpec("lstm", 10, (32,), 6, block_sizes=(4,))
TIMEOUT = 15.0


@pytest.fixture(scope="module")
def fixed_compiled():
    model = StackedRNNClassifier(
        SPEC, structured=True, rng=np.random.default_rng(0)
    )
    return compile(model, backend="fixed", cache=False)


def _stream(frames: int, seed: int = 7) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal(
        (frames, SPEC.input_size)
    )


def _standalone(compiled, stream: np.ndarray) -> np.ndarray:
    return compiled.session().run(stream[:, None, :])[:, 0]


def _name_routed_to(worker: int, workers: int, hint: str = "s") -> str:
    """A session name whose stable hash routes to ``worker``."""
    for attempt in range(10_000):
        name = f"{hint}-{attempt}"
        if route_session(name, workers) == worker:
            return name
    raise AssertionError("no session name found for worker")


def _wait_for(predicate, timeout: float, what: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {what}")


class TestKnobs:
    def test_spawn_timeout_must_be_positive(self, fixed_compiled):
        with pytest.raises(ConfigError, match="spawn_timeout_s"):
            NetServer(fixed_compiled, spawn_timeout_s=0)

    def test_spawn_timeout_is_enforced(self, fixed_compiled):
        """An interpreter cannot spawn + import + load in 10ms, so a
        tiny budget must surface as a ConfigError naming the knob —
        not a 120s hang (the old hardcoded wait)."""
        server = NetServer(fixed_compiled, workers=1, spawn_timeout_s=0.01)
        try:
            with pytest.raises(ConfigError, match="spawn_timeout_s"):
                server.start()
        finally:
            server.close()

    @pytest.mark.parametrize("kwargs", [
        {"restart_budget": -1},
        {"restart_window_s": 0},
        {"heartbeat_timeout_s": 0},
        {"session_ttl_s": 0},
        {"session_cap": 0},
    ])
    def test_supervision_knob_validation(self, fixed_compiled, kwargs):
        with pytest.raises(ConfigError):
            NetServer(fixed_compiled, **kwargs)


class TestSupervision:
    def test_respawn_and_blast_radius(self, fixed_compiled):
        """SIGKILL one worker mid-stream: its session reattaches and
        stays byte-identical; the OTHER worker's session never even
        reconnects.  Afterwards health shows the restart."""
        victim, survivor = 0, 1
        victim_name = _name_routed_to(victim, 2, "victim")
        survivor_name = _name_routed_to(survivor, 2, "survivor")
        stream = _stream(24)
        want = _standalone(fixed_compiled, stream)
        with NetServer(fixed_compiled, workers=2) as server:
            with Client(*server.address, timeout=TIMEOUT) as client:
                bad = client.session(victim_name)
                good = client.session(survivor_name)
                out_bad, out_good = [], []
                for index, frame in enumerate(stream):
                    if index == 9:
                        os.kill(server._procs[victim].pid, signal.SIGKILL)
                    out_bad.append(bad.push(frame))
                    out_good.append(good.push(frame))
                assert np.stack(out_bad).tobytes() == want.tobytes()
                assert np.stack(out_good).tobytes() == want.tobytes()
                # Blast radius: only the dead worker's session recovered.
                assert bad.recoveries >= 1 and bad.replayed_frames >= 1
                assert good.recoveries == 0
                health = client.health()
                states = {w["worker"]: w for w in health["workers"]}
                assert states[victim]["restarts"] >= 1
                assert states[victim]["state"] == "up"
                assert states[survivor]["restarts"] == 0
                assert health["restarts_total"] >= 1
        events = [event["event"] for event in server.events]
        assert "worker_down" in events and "worker_restarted" in events

    def test_inflight_failure_is_retryable_not_a_hang(self, fixed_compiled):
        """With reattach disabled the dead worker's session gets exactly
        one structured retryable error, promptly."""
        name = _name_routed_to(0, 1)
        with NetServer(fixed_compiled, workers=1) as server:
            with Client(*server.address, timeout=TIMEOUT) as client:
                session = client.session(name, reattach=False)
                session.push(_stream(1)[0])
                os.kill(server._procs[0].pid, signal.SIGKILL)
                began = time.monotonic()
                with pytest.raises(RetryableError, match="died"):
                    for frame in _stream(8, seed=11):
                        session.push(frame)
                assert time.monotonic() - began < TIMEOUT
        assert server.retryable_errors_total >= 0  # counter exists

    def test_restart_budget_exhaustion_degrades_only_that_shard(
        self, fixed_compiled
    ):
        """restart_budget=0: the first death degrades the shard — its
        sessions answer non-retryable ``unavailable`` errors (no retry
        storm, no hang) while the other worker keeps serving."""
        victim, survivor = 0, 1
        victim_name = _name_routed_to(victim, 2, "doomed")
        survivor_name = _name_routed_to(survivor, 2, "fine")
        stream = _stream(6)
        want = _standalone(fixed_compiled, stream)
        with NetServer(fixed_compiled, workers=2, restart_budget=0) as server:
            with Client(*server.address, timeout=TIMEOUT) as client:
                bad = client.session(victim_name, reattach=False)
                os.kill(server._procs[victim].pid, signal.SIGKILL)
                _wait_for(
                    lambda: client.health()["degraded"] == [victim],
                    TIMEOUT, "shard to degrade",
                )
                with pytest.raises(NetError, match="unavailable") as info:
                    bad.push(stream[0])
                assert not isinstance(info.value, RetryableError)
                # A reattaching session must give up promptly too: the
                # degraded answer is non-retryable by design.
                with pytest.raises(NetError, match="unavailable"):
                    client.session(_name_routed_to(victim, 2, "doomed2"))
                got = client.session(survivor_name).run(stream, window=4)
                assert got.tobytes() == want.tobytes()
                health = client.health()
                states = {w["worker"]: w["state"] for w in health["workers"]}
                assert states == {victim: "degraded", survivor: "up"}

    def test_heartbeat_timeout_replaces_a_stalled_worker(
        self, fixed_compiled
    ):
        """A worker that is alive but wedged (stall fault) must be
        killed by the heartbeat supervisor and replaced; the reattaching
        session ends byte-identical."""
        stream = _stream(10)
        want = _standalone(fixed_compiled, stream)
        with NetServer(
            fixed_compiled, workers=1, heartbeat_timeout_s=1.0,
            faults="stall:after=4,seconds=60",
        ) as server:
            with Client(*server.address, timeout=TIMEOUT) as client:
                session = client.session("wedged")
                got = np.stack([session.push(frame) for frame in stream])
                assert session.recoveries >= 1
        assert got.tobytes() == want.tobytes()
        reasons = [
            event.get("reason", "") for event in server.events
            if event["event"] == "worker_down"
        ]
        assert any("heartbeat" in reason for reason in reasons)

    def test_busy_backoff_then_death_is_one_clean_retryable(
        self, fixed_compiled
    ):
        """Regression: a client stuck in busy-backoff against a
        saturated worker that then dies must come out through the
        retryable-error path — one structured error, no hang.

        Ring saturation is arranged honestly: the worker is SIGSTOPped,
        a second connection pipelines enough pushes to fill the 2-slot
        request ring, and only then does the probe client push."""
        filler_name = _name_routed_to(0, 1, "filler")
        probe_name = _name_routed_to(0, 1, "probe")
        stream = _stream(4)
        with NetServer(fixed_compiled, workers=1, ring_slots=2) as server:
            filler_client = Client(*server.address, timeout=TIMEOUT)
            probe_client = Client(*server.address, timeout=TIMEOUT)
            try:
                filler = filler_client.session(filler_name, reattach=False)
                probe = probe_client.session(
                    probe_name, reattach=False,
                    retries=100, backoff_s=0.05, max_backoff_s=0.05,
                )
                proc = server._procs[0]
                os.kill(proc.pid, signal.SIGSTOP)
                filler_error: list = []

                def fill() -> None:
                    try:
                        filler.run(stream, window=4)
                    except NetError as error:
                        filler_error.append(error)

                thread = threading.Thread(target=fill, daemon=True)
                thread.start()
                time.sleep(0.3)  # let the pipelined pushes fill the ring
                killer = threading.Timer(
                    0.4, lambda: os.kill(proc.pid, signal.SIGKILL)
                )
                killer.start()
                began = time.monotonic()
                with pytest.raises(RetryableError):
                    probe.push(stream[0])
                assert time.monotonic() - began < TIMEOUT
                killer.join()
                thread.join(timeout=TIMEOUT)
                assert not thread.is_alive(), "filler hung"
                assert filler_error and isinstance(
                    filler_error[0], RetryableError
                )
            finally:
                filler_client.close()
                probe_client.close()


    def test_run_recovers_from_mid_pipeline_busy(self, fixed_compiled):
        """Worker-ring saturation mid-pipeline (SIGSTOPped worker,
        2-slot ring, window 6) voids run()'s contiguous-apply order;
        the reattaching session must reconcile through the reattach
        path and still end byte-identical."""
        stream = _stream(12)
        want = _standalone(fixed_compiled, stream)
        with NetServer(fixed_compiled, workers=1, ring_slots=2) as server:
            with Client(*server.address, timeout=TIMEOUT) as client:
                session = client.session("squeezed")
                proc = server._procs[0]
                os.kill(proc.pid, signal.SIGSTOP)
                resumer = threading.Timer(
                    0.5, lambda: os.kill(proc.pid, signal.SIGCONT)
                )
                resumer.start()
                got = session.run(stream, window=6)
                resumer.join()
                assert session.recoveries >= 1
        assert got.tobytes() == want.tobytes()


class TestSessionLifecycle:
    def test_idle_ttl_evicts_and_counts(self, fixed_compiled):
        with NetServer(
            fixed_compiled, workers=1, session_ttl_s=0.3,
        ) as server:
            with Client(*server.address, timeout=TIMEOUT) as client:
                session = client.session("ephemeral", reattach=False)
                session.push(_stream(1)[0])
                assert [s["session"] for s in client.sessions()] == [
                    "ephemeral"
                ]
                _wait_for(
                    lambda: not client.sessions(), TIMEOUT, "TTL eviction"
                )
                stats = client.stats()[0]
                assert stats["evicted_idle"] >= 1
                with pytest.raises(UnknownSessionError):
                    session.push(_stream(1)[0])

    def test_ttl_eviction_is_invisible_to_a_reattaching_session(
        self, fixed_compiled
    ):
        """The journal makes idle eviction recoverable: the session
        reopens, replays, and the stream stays byte-identical."""
        stream = _stream(8)
        want = _standalone(fixed_compiled, stream)
        with NetServer(
            fixed_compiled, workers=1, session_ttl_s=0.3,
        ) as server:
            with Client(*server.address, timeout=TIMEOUT) as client:
                session = client.session("patient")
                out = [session.push(frame) for frame in stream[:4]]
                _wait_for(
                    lambda: not client.sessions(), TIMEOUT, "TTL eviction"
                )
                out += [session.push(frame) for frame in stream[4:]]
                assert session.recoveries >= 1
        assert np.stack(out).tobytes() == want.tobytes()

    def test_session_cap_sheds_least_recently_used(self, fixed_compiled):
        with NetServer(fixed_compiled, workers=1, session_cap=2) as server:
            with Client(*server.address, timeout=TIMEOUT) as client:
                first = client.session("first", reattach=False)
                client.session("second", reattach=False)
                first.push(_stream(1)[0])  # "second" is now the LRU
                client.session("third", reattach=False)
                names = sorted(s["session"] for s in client.sessions())
                assert names == ["first", "third"]
                assert client.stats()[0]["evicted_lru"] >= 1

    def test_admin_evict_op(self, fixed_compiled):
        with NetServer(fixed_compiled, workers=2) as server:
            with Client(*server.address, timeout=TIMEOUT) as client:
                session = client.session("target", reattach=False)
                session.push(_stream(1)[0])
                assert client.evict("target") is True
                assert client.evict("target") is False  # already gone
                assert client.sessions() == []
                with pytest.raises(UnknownSessionError):
                    session.push(_stream(1)[0])
                assert client.stats()[
                    route_session("target", 2)
                ]["evicted_admin"] >= 1

    def test_sessions_listing_fields(self, fixed_compiled):
        with NetServer(fixed_compiled, workers=2) as server:
            with Client(*server.address, timeout=TIMEOUT) as client:
                session = client.session("listed", reattach=False)
                session.push(_stream(1)[0])
                (entry,) = client.sessions()
                assert entry["session"] == "listed"
                assert entry["worker"] == route_session("listed", 2)
                assert entry["seq"] == 1
                assert entry["idle_s"] >= 0 and entry["busy"] is False

    def test_health_op_shape(self, fixed_compiled):
        with NetServer(fixed_compiled, workers=2) as server:
            with Client(*server.address, timeout=TIMEOUT) as client:
                health = client.health()
                assert health["draining"] is False
                assert health["degraded"] == []
                assert health["restarts_total"] == 0
                assert len(health["workers"]) == 2
                for entry in health["workers"]:
                    assert entry["state"] == "up" and entry["alive"] is True
                    assert entry["generation"] == 0
                    assert entry["uptime_s"] >= 0


class TestChaosSoak:
    def test_concurrent_clients_survive_a_worker_kill(self, fixed_compiled):
        """The acceptance soak: five concurrent pipelined clients, one
        worker SIGKILLs itself mid-soak (kill fault).  Every stream must
        come back byte-identical — zero drops, duplicates or reorders —
        with only the dead worker's sessions recovering."""
        workers, sessions = 2, 5
        stream = _stream(30)
        want = _standalone(fixed_compiled, stream).tobytes()
        with NetServer(
            fixed_compiled, workers=workers, faults="kill:worker=0,after=6",
        ) as server:
            results: dict[int, bytes] = {}
            recoveries: dict[int, int] = {}
            errors: list = []

            def soak(index: int) -> None:
                try:
                    with Client(*server.address, timeout=TIMEOUT) as client:
                        session = client.session(f"soak-{index}")
                        results[index] = session.run(
                            stream, window=8
                        ).tobytes()
                        recoveries[index] = session.recoveries
                except Exception as error:  # noqa: BLE001 - reraised below
                    errors.append((index, error))

            threads = [
                threading.Thread(target=soak, args=(index,), daemon=True)
                for index in range(sessions)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
                assert not thread.is_alive(), "soak client hung"
            assert errors == [], f"soak clients failed: {errors}"
            assert all(results[i] == want for i in range(sessions))
            for index in range(sessions):
                if route_session(f"soak-{index}", workers) != 0:
                    assert recoveries[index] == 0  # blast radius
            events = [event["event"] for event in server.events]
            assert "worker_down" in events
            assert "worker_restarted" in events
