"""The consistent-hash ring's contract, property-tested.

Three properties make the ring fit to route recurrent streams:

* **balance** — with vnodes, no backend owns a pathological share of
  the keyspace (max/min load ratio bounded);
* **minimal movement** — adding or removing one of N nodes remaps only
  about 1/N of sessions (modulo routing would remap ~(N-1)/N: almost
  every client replaying its journal at once);
* **determinism** — placement derives from SHA-256 only, so a fresh
  process (PYTHONHASHSEED and all) routes every key identically: a
  gateway restart must route sessions exactly where its predecessor did.
"""

import json
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

from repro.errors import ConfigError
from repro.runtime.cluster import DEFAULT_VNODES, HashRing

NODES = [f"10.0.0.{i}:7000" for i in range(1, 6)]
KEYS = [f"session-{i}" for i in range(4000)]


class TestBasics:
    def test_single_node_takes_everything(self):
        ring = HashRing(["a:1"])
        assert all(ring.route(k) == "a:1" for k in KEYS[:50])

    def test_empty_ring_routes_nowhere(self):
        assert HashRing().route("anything") is None

    def test_duplicate_add_is_an_error(self):
        ring = HashRing(["a:1"])
        with pytest.raises(ConfigError):
            ring.add("a:1")

    def test_remove_unknown_is_an_error(self):
        with pytest.raises(ConfigError):
            HashRing(["a:1"]).remove("b:2")

    def test_membership_and_len(self):
        ring = HashRing(NODES[:3])
        assert len(ring) == 3
        assert NODES[0] in ring
        assert NODES[4] not in ring

    def test_exclude_skips_but_stays_deterministic(self):
        ring = HashRing(NODES)
        moved = {}
        for key in KEYS[:500]:
            primary = ring.route(key)
            fallback = ring.route(key, exclude={primary})
            assert fallback != primary
            assert fallback in NODES
            moved[key] = fallback
        # excluding is pure: same answer every time
        for key, expected in moved.items():
            assert ring.route(key, exclude={ring.route(key)}) == expected

    def test_exclude_everything_routes_nowhere(self):
        ring = HashRing(NODES[:2])
        assert ring.route("k", exclude=set(NODES[:2])) is None


class TestBalance:
    def test_load_ratio_bounded_under_vnodes(self):
        """No backend owns a pathological share of the keyspace."""
        ring = HashRing(NODES, vnodes=DEFAULT_VNODES)
        loads = Counter(ring.route(key) for key in KEYS)
        assert set(loads) == set(NODES), "every node serves some keys"
        ratio = max(loads.values()) / min(loads.values())
        # 128 vnodes keeps max/min under ~2 for a 5-node fleet; the
        # bound is generous so hash luck cannot flake the suite.
        assert ratio < 2.0, f"load ratio {ratio:.2f}, loads={loads}"

    def test_more_vnodes_tighten_balance(self):
        few = HashRing(NODES, vnodes=8)
        many = HashRing(NODES, vnodes=256)

        def ratio(ring):
            loads = Counter(ring.route(key) for key in KEYS)
            return max(loads.values()) / max(min(loads.values()), 1)

        assert ratio(many) < ratio(few)


class TestMinimalMovement:
    def test_join_moves_about_one_over_n(self):
        """Adding the (N+1)-th node steals ~1/(N+1) of keys — only the
        arcs the new node takes over — never a reshuffle."""
        ring = HashRing(NODES)
        before = {key: ring.route(key) for key in KEYS}
        ring.add("10.0.0.6:7000")
        after = {key: ring.route(key) for key in KEYS}
        moved = sum(1 for key in KEYS if before[key] != after[key])
        expected = len(KEYS) / 6
        assert moved <= 2 * expected, (
            f"join remapped {moved}/{len(KEYS)} keys; "
            f"consistent hashing promises ~{expected:.0f}"
        )
        # every moved key moved TO the joining node, nowhere else
        for key in KEYS:
            if before[key] != after[key]:
                assert after[key] == "10.0.0.6:7000"

    def test_leave_moves_only_the_leavers_keys(self):
        ring = HashRing(NODES)
        before = {key: ring.route(key) for key in KEYS}
        ring.remove(NODES[2])
        after = {key: ring.route(key) for key in KEYS}
        for key in KEYS:
            if before[key] == NODES[2]:
                assert after[key] != NODES[2]
            else:
                assert after[key] == before[key], (
                    "a surviving node's key moved on leave"
                )
        moved = sum(1 for key in KEYS if before[key] != after[key])
        assert moved <= 2 * len(KEYS) / 5

    def test_join_then_leave_roundtrips(self):
        ring = HashRing(NODES)
        before = {key: ring.route(key) for key in KEYS[:1000]}
        ring.add("10.0.0.9:7000")
        ring.remove("10.0.0.9:7000")
        assert {key: ring.route(key) for key in KEYS[:1000]} == before

    def test_modulo_would_reshuffle(self):
        """The property the ring buys, made concrete: modulo routing
        remaps the vast majority of keys on a one-node join."""
        import hashlib

        def modulo_route(key, n):
            digest = hashlib.sha256(key.encode()).digest()
            return int.from_bytes(digest[:8], "big") % n

        moved_modulo = sum(
            1 for key in KEYS if modulo_route(key, 5) != modulo_route(key, 6)
        )
        assert moved_modulo > len(KEYS) * 0.6  # ~5/6 in expectation


class TestCrossProcessDeterminism:
    def test_fresh_interpreter_routes_identically(self):
        """A gateway restart (new PYTHONHASHSEED) must place every
        session exactly where its predecessor did."""
        ring = HashRing(NODES)
        here = {key: ring.route(key) for key in KEYS[:300]}
        script = (
            "import json, sys\n"
            "from repro.runtime.cluster import HashRing\n"
            "nodes = json.loads(sys.argv[1]); keys = json.loads(sys.argv[2])\n"
            "ring = HashRing(nodes)\n"
            "print(json.dumps({k: ring.route(k) for k in keys}))\n"
        )
        src = str(Path(__file__).resolve().parents[2] / "src")
        out = subprocess.run(
            [sys.executable, "-c", script,
             json.dumps(NODES), json.dumps(KEYS[:300])],
            capture_output=True, text=True, timeout=60,
            env={"PYTHONPATH": src, "PYTHONHASHSEED": "12345",
                 "PATH": "/usr/bin:/bin"},
        )
        assert out.returncode == 0, out.stderr
        assert json.loads(out.stdout) == here
