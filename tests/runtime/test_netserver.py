"""The network serving front-end, end to end over real sockets.

Everything here runs against real worker processes on an ephemeral
localhost port.  The headline invariants:

* logits served over the wire are **byte-identical** to a standalone
  ``repro.runtime.Session`` on the same stream, for both backends;
* named sessions survive reconnects and always land on the same worker
  (stable-hash routing), so carried state stays worker-local;
* backpressure is explicit (``busy`` frames, never unbounded buffering)
  and a busy'd frame is provably **not** applied to the stream;
* ``close()`` drains: every dispatched frame's reply reaches its client;
* the soak test: 8 concurrent clients x 50 frames against 2 workers with
  zero dropped/duplicated/reordered responses (sequence-checked) and
  byte-identity throughout.
"""

import json

import numpy as np
import pytest

from repro.config import RNNSpec
from repro.errors import ConfigError
from repro.nn.rnn import StackedRNNClassifier
from repro.runtime import compile
from repro.runtime.net import (
    Client,
    NetError,
    NetServer,
    decode_array,
    encode_array,
    route_session,
)
from repro.runtime.net.protocol import dump_line, error_reply, parse_line

SPEC = RNNSpec("lstm", 10, (32,), 6, block_sizes=(4,))
TIMEOUT = 15.0


def _compiled(backend: str):
    model = StackedRNNClassifier(
        SPEC, structured=True, rng=np.random.default_rng(0)
    )
    return compile(model, backend=backend, cache=False)


def _streams(count: int, frames: int, seed: int = 5) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal(
        (count, frames, SPEC.input_size)
    )


def _standalone(compiled, stream: np.ndarray) -> np.ndarray:
    """The baseline bytes: one stream through a width-1 Session."""
    return compiled.session().run(stream[:, None, :])[:, 0]


@pytest.fixture(scope="module")
def fixed_compiled():
    return _compiled("fixed")


@pytest.fixture(scope="module")
def net_server(fixed_compiled):
    """One 2-worker fixed-backend server shared by this module's tests."""
    with NetServer(fixed_compiled, workers=2, queue_limit=32) as server:
        yield server


def _client(server: NetServer) -> Client:
    return Client(*server.address, timeout=TIMEOUT)


# ----------------------------------------------------------------------
# Protocol building blocks (no sockets).
# ----------------------------------------------------------------------


class TestProtocol:
    def test_array_roundtrip_is_exact(self):
        values = np.random.default_rng(0).standard_normal(64)
        assert np.array_equal(decode_array(encode_array(values)), values)

    def test_list_arrays_accepted(self):
        assert np.array_equal(
            decode_array([1.5, -2.25, 3.0]), np.array([1.5, -2.25, 3.0])
        )

    def test_bad_payloads_raise(self):
        with pytest.raises(NetError, match="base64 dict or a list"):
            decode_array("nope")
        with pytest.raises(NetError, match="malformed array"):
            decode_array({"dtype": "<f8", "shape": [2], "b64": "!!!"})
        with pytest.raises(NetError, match="wire dtype"):
            decode_array({"dtype": "<f4", "shape": [1], "b64": "AAAA"})

    def test_lines_roundtrip(self):
        message = {"id": 3, "op": "ping"}
        line = dump_line(message)
        assert line.endswith(b"\n")
        assert parse_line(line) == message

    def test_parse_rejects_non_objects(self):
        with pytest.raises(NetError, match="JSON object"):
            parse_line(b"[1, 2]\n")
        with pytest.raises(NetError, match="not valid JSON"):
            parse_line(b"{nope\n")

    def test_error_reply_shape(self):
        reply = error_reply(7, ConfigError("boom"))
        assert reply == {
            "id": 7, "ok": False, "type": "error",
            "kind": "ConfigError", "error": "boom",
        }

    def test_route_session_is_stable_and_in_range(self):
        for workers in (1, 2, 5):
            for name in ("a", "stream-42", "x" * 100):
                index = route_session(name, workers)
                assert 0 <= index < workers
                assert index == route_session(name, workers)  # pure
        # Pinned: must never change across releases, or restarted servers
        # would route carried state to the wrong worker.
        assert route_session("selftest-0", 2) == 1
        assert route_session("selftest-1", 2) == 0

    def test_constructor_validation(self, fixed_compiled):
        with pytest.raises(ConfigError, match="compiled model"):
            NetServer()
        with pytest.raises(ConfigError, match="workers"):
            NetServer(fixed_compiled, workers=0)
        with pytest.raises(ConfigError, match="queue_limit"):
            NetServer(fixed_compiled, queue_limit=0)


# ----------------------------------------------------------------------
# Byte identity over the wire.
# ----------------------------------------------------------------------


class TestNetByteIdentity:
    def test_blocking_and_pipelined_match_standalone(
        self, net_server, fixed_compiled
    ):
        stream = _streams(1, 10, seed=11)[0]
        expected = _standalone(fixed_compiled, stream)
        with _client(net_server) as client:
            blocking = client.session("identity-blocking")
            got_blocking = np.stack([blocking.push(f) for f in stream])
            pipelined = client.session("identity-pipelined")
            got_pipelined = pipelined.run(stream, window=4)
        assert np.array_equal(got_blocking, expected)
        assert np.array_equal(got_pipelined, expected)

    def test_float_backend_over_the_wire(self):
        compiled = _compiled("float")
        streams = _streams(2, 8, seed=13)
        with NetServer(compiled, workers=1) as server:
            with Client(*server.address, timeout=TIMEOUT) as client:
                for index, stream in enumerate(streams):
                    session = client.session(f"float-{index}")
                    got = session.run(stream)
                    assert np.array_equal(
                        got, _standalone(compiled, stream)
                    ), f"float stream {index} perturbed by the wire"

    def test_integer_frames_over_the_wire(self, net_server, fixed_compiled):
        """Surface 4 of the shared-coercion contract (see test_coerce)."""
        rng = np.random.default_rng(17)
        stream = rng.integers(
            -4, 5, size=(6, SPEC.input_size)
        ).astype(np.int32)
        expected = _standalone(fixed_compiled, stream.astype(np.float64))
        with _client(net_server) as client:
            session = client.session("identity-int32")
            got = np.stack([session.push(frame) for frame in stream])
        assert np.array_equal(got, expected)

    def test_reset_between_utterances(self, net_server, fixed_compiled):
        stream = _streams(1, 6, seed=19)[0]
        expected = _standalone(fixed_compiled, stream)
        with _client(net_server) as client:
            session = client.session("identity-reset")
            first = session.run(stream)
            session.reset()
            assert session.frames_pushed == 0
            second = session.run(stream)
        assert np.array_equal(first, expected)
        assert np.array_equal(second, expected)


# ----------------------------------------------------------------------
# Session routing, persistence, stats.
# ----------------------------------------------------------------------


class TestSessionsAndStats:
    def test_session_survives_reconnect_on_same_worker(
        self, net_server, fixed_compiled
    ):
        stream = _streams(1, 10, seed=23)[0]
        expected = _standalone(fixed_compiled, stream)
        name = "reconnect-me"
        with _client(net_server) as client:
            session = client.session(name)
            assert session.meta["existing"] is False
            first_worker = session.worker
            first_half = np.stack([session.push(f) for f in stream[:5]])
        # The connection is gone; the named stream's state is not.
        with _client(net_server) as client:
            session = client.session(name)
            assert session.meta["existing"] is True
            assert session.meta["seq"] == 5
            assert session.worker == first_worker
            assert first_worker == route_session(name, net_server.workers)
            second_half = np.stack([session.push(f) for f in stream[5:]])
            session.close()
        got = np.concatenate([first_half, second_half])
        assert np.array_equal(got, expected)

    def test_stats_aggregates_every_worker(self, net_server):
        with _client(net_server) as client:
            client.session("stats-probe").push(
                np.zeros(SPEC.input_size)
            )
            entries = client.stats()
        assert [entry["worker"] for entry in entries] == [0, 1]
        assert all(entry["ok"] for entry in entries)
        totals = sum(entry["stats"]["frames"] for entry in entries)
        assert totals >= 1
        assert all(
            entry["stats"]["max_batch"] == net_server.max_batch
            for entry in entries
        )

    def test_hello_advertises_the_contract(self, net_server):
        with _client(net_server) as client:
            assert client.hello["protocol"] == 1
            assert client.backend == "fixed"
            assert client.input_size == SPEC.input_size
            assert client.num_classes == SPEC.output_size
            assert client.queue_limit == 32
            assert client.hello["workers"] == 2
            assert client.ping() < TIMEOUT


# ----------------------------------------------------------------------
# Errors and protocol abuse.
# ----------------------------------------------------------------------


class TestErrorFrames:
    def test_push_to_unknown_session(self, net_server):
        with _client(net_server) as client:
            rid = client._send(
                "push", session="never-opened",
                frame=encode_array(np.zeros(SPEC.input_size)),
            )
            reply = client._recv_for(rid)
        assert reply["ok"] is False
        assert "unknown session" in reply["error"]

    def test_wrong_frame_width_is_a_config_error(self, net_server):
        with _client(net_server) as client:
            client.session("bad-shape")
            rid = client._send(
                "push", session="bad-shape",
                frame=encode_array(np.zeros(SPEC.input_size + 1)),
            )
            reply = client._recv_for(rid)
        assert reply["ok"] is False and reply["kind"] == "ConfigError"
        assert "expected a" in reply["error"]

    def test_non_finite_frame_rejected_serverside(self, net_server):
        poisoned = np.full(SPEC.input_size, np.inf)
        with _client(net_server) as client:
            client.session("poisoned")
            rid = client._send(
                "push", session="poisoned", frame=encode_array(poisoned)
            )
            reply = client._recv_for(rid)
        assert reply["ok"] is False and reply["kind"] == "ConfigError"
        assert "NaN or Inf" in reply["error"]

    def test_unknown_op(self, net_server):
        with _client(net_server) as client:
            with pytest.raises(NetError, match="unknown op"):
                client.request("frobnicate")

    def test_malformed_json_line_keeps_the_connection(self, net_server):
        with _client(net_server) as client:
            client._file.write(b"{this is not json\n")
            client._file.flush()
            reply = client._recv()
            assert reply["ok"] is False and reply["id"] is None
            assert "not valid JSON" in reply["error"]
            client.ping()  # still alive

    def test_missing_session_id(self, net_server):
        with _client(net_server) as client:
            with pytest.raises(NetError, match="session id"):
                client.request("open")

    def test_run_validates_whole_stream_before_sending(
        self, net_server, fixed_compiled
    ):
        """Review regression: a bad frame discovered mid-pipeline used to
        abandon in-flight replies and desynchronize the connection."""
        stream = _streams(1, 12, seed=43)[0].copy()
        stream[7, 0] = np.nan  # poison a LATER frame
        with _client(net_server) as client:
            session = client.session("late-poison")
            with pytest.raises(ConfigError, match="NaN or Inf"):
                session.run(stream, window=4)
            # Nothing was sent: the session is untouched and the
            # connection is still in sync.
            assert session.frames_pushed == 0
            good = _streams(1, 4, seed=44)[0]
            got = session.run(good, window=4)
            assert np.array_equal(got, _standalone(fixed_compiled, good))

    def test_session_close_is_idempotent(self, net_server):
        """Review regression: explicit close inside a with-block used to
        raise 'unknown session' from __exit__."""
        with _client(net_server) as client:
            with client.session("close-twice") as session:
                session.push(np.zeros(SPEC.input_size))
                session.close()  # __exit__ closes again: must be a no-op
            with pytest.raises(NetError, match="is closed"):
                session.push(np.zeros(SPEC.input_size))

    def test_stats_id_collision_with_pipelined_push(self, net_server):
        """Review regression: a stats request reusing an in-flight push's
        client-chosen id used to swallow the push reply into the stats
        aggregate and corrupt the admission accounting."""
        frame = encode_array(np.zeros(SPEC.input_size))
        with _client(net_server) as client:
            client.session("collide")
            # Hand-roll two requests with the SAME id, push first so its
            # worker reply is in flight when the stats fan-out starts.
            client._file.write(dump_line(
                {"id": 99, "op": "push", "session": "collide",
                 "frame": frame}
            ))
            client._file.write(dump_line({"id": 99, "op": "stats"}))
            client._file.flush()
            replies = [client._recv() for _ in range(2)]
            by_type = {reply["type"]: reply for reply in replies}
        assert set(by_type) == {"push", "stats"}
        assert by_type["push"]["ok"] and "logits" in by_type["push"]
        stats = by_type["stats"]
        assert stats["ok"] and len(stats["workers"]) == 2
        assert all("stats" in part for part in stats["workers"])

    def test_dead_worker_surfaces_as_error_reply(self, fixed_compiled):
        """A killed worker must produce an actionable error, not a hang.

        ``reattach=False`` pins the PR 5 fail-fast contract: without the
        recovery machinery the client sees exactly one structured
        *retryable* error frame (the supervisor answers for the dead
        worker while its replacement spawns).
        """
        import time

        from repro.runtime.net import RetryableError

        with NetServer(fixed_compiled, workers=2) as server:
            with Client(*server.address, timeout=TIMEOUT) as client:
                session = client.session("doomed", reattach=False)
                victim = session.worker
                proc = server._procs[victim]
                proc.terminate()
                proc.join(timeout=10)
                time.sleep(0.1)
                with pytest.raises(RetryableError, match="died"):
                    session.push(np.zeros(SPEC.input_size))
                # The other worker keeps serving.
                survivor = next(
                    name for name in ("a", "b", "c", "d")
                    if route_session(name, 2) != victim
                )
                other = client.session(survivor)
                out = other.push(np.zeros(SPEC.input_size))
                assert out.shape == (SPEC.output_size,)

    def test_inflight_request_reaped_when_worker_dies(self, fixed_compiled):
        """Review regression: a worker dying AFTER dispatch used to leak
        the admission slot and stall every drain; the reaper must fail
        the in-flight request with an error reply instead."""
        import os
        import signal as _signal
        import time

        with NetServer(fixed_compiled, workers=2) as server:
            with Client(*server.address, timeout=TIMEOUT) as client:
                session = client.session("doomed-midflight")
                proc = server._procs[session.worker]
                # Freeze the worker so the push is dispatched but never
                # answered, then kill it mid-flight.
                os.kill(proc.pid, _signal.SIGSTOP)
                rid = client._send(
                    "push", session="doomed-midflight",
                    frame=encode_array(np.zeros(SPEC.input_size)),
                )
                time.sleep(0.2)  # reader admits + dispatches the push
                os.kill(proc.pid, _signal.SIGKILL)
                reply = client._recv_for(rid)  # the supervisor's answer
                assert reply["ok"] is False
                assert "died" in reply["error"]
                # PR 8: in-flight failures are marked safe to resend.
                assert reply.get("retryable") is True
        # Context exit ran close(): the reap freed _inflight, so the
        # drain returned promptly instead of waiting out its timeout.

    def test_negative_shape_dims_cannot_kill_a_worker(
        self, net_server, fixed_compiled
    ):
        """Review regression: shape [-2, -4] has a positive product, so
        it passed validation and the worker-side reshape blew up the
        whole worker process (and every session pinned to it)."""
        import base64

        evil = {
            "dtype": "<f8",
            "shape": [-2, -4],
            "b64": base64.b64encode(b"\x00" * 64).decode(),
        }
        with _client(net_server) as client:
            session = client.session("evil-shape")
            rid = client._send("push", session="evil-shape", frame=evil)
            reply = client._recv_for(rid)
            assert reply["ok"] is False
            assert "negative dimension" in reply["error"]
            # The worker survived: the same session still serves.
            out = session.push(np.zeros(SPEC.input_size))
            assert np.array_equal(
                out,
                _standalone(
                    fixed_compiled, np.zeros((1, SPEC.input_size))
                )[0],
            )

    def test_session_close_is_best_effort_on_dead_connection(
        self, net_server
    ):
        """Review regression: close() raising out of __exit__ when the
        server can no longer honour it turned orderly shutdowns into
        client crashes."""
        client = _client(net_server)
        session = client.session("orphaned-close")
        client.close()  # connection gone before the session close
        session.close()  # must swallow, not raise

    def test_duplicate_inflight_id_rejected(self, net_server):
        """Review regression: two in-flight pushes sharing an id used to
        corrupt the admission accounting (second reply dropped as a
        presumed reaper duplicate, slot leaked forever)."""
        frame = encode_array(np.zeros(SPEC.input_size))
        with _client(net_server) as client:
            client.session("dup-id")
            for _ in range(2):
                client._file.write(dump_line(
                    {"id": 77, "op": "push", "session": "dup-id",
                     "frame": frame}
                ))
            client._file.flush()
            replies = [client._recv() for _ in range(2)]
            kinds = sorted(r["type"] for r in replies)
            assert kinds == ["error", "push"]
            error = next(r for r in replies if r["type"] == "error")
            assert "already in flight" in error["error"]
            # Accounting intact: the connection still serves normally.
            client.ping()
            session = client.session("dup-id-after")
            assert session.push(np.zeros(SPEC.input_size)).shape == (
                SPEC.output_size,
            )

    def test_push_returns_writable_logits(self, net_server):
        """Review regression: push handed back the read-only wire view,
        breaking in-place math that works on a local Session."""
        with _client(net_server) as client:
            out = client.session("writable").push(
                np.zeros(SPEC.input_size)
            )
        assert out.flags.writeable
        out -= out.max()  # the Session-parity idiom must not raise

    def test_close_releases_serve_forever(self, fixed_compiled):
        """Review regression: serve_forever() could only be stopped by
        its own signal handlers, so close() from another thread leaked
        the serving thread forever."""
        import threading

        server = NetServer(fixed_compiled, workers=1)
        thread = threading.Thread(
            target=lambda: server.serve_forever(install_signals=False),
            daemon=True,
        )
        thread.start()
        deadline = 10.0
        import time

        start = time.monotonic()
        while server._state != "started":
            assert time.monotonic() - start < deadline, "never started"
            time.sleep(0.01)
        server.close()
        thread.join(timeout=deadline)
        assert not thread.is_alive(), "serve_forever did not return"

    def test_empty_stream_run_returns_empty(self, net_server):
        """Review regression: run() on a (0, D) stream used to crash in
        np.stack instead of mirroring Session.run's empty result."""
        with _client(net_server) as client:
            session = client.session("empty-stream")
            out = session.run(np.empty((0, SPEC.input_size)))
        assert out.shape == (0, SPEC.output_size)

    def test_client_coerces_before_sending(self, net_server):
        with _client(net_server) as client:
            session = client.session("client-coerce")
            with pytest.raises(ConfigError, match="NaN or Inf"):
                session.push(np.full(SPEC.input_size, np.nan))
            with pytest.raises(ConfigError, match="expected a"):
                session.push(np.zeros(SPEC.input_size + 2))


# ----------------------------------------------------------------------
# Backpressure: bounded queues, busy frames, no silent application.
# ----------------------------------------------------------------------


class TestBackpressure:
    def test_flood_draws_busy_and_busy_frames_are_not_applied(
        self, fixed_compiled
    ):
        """Flooding past queue_limit gets explicit busy frames, and a
        busy'd frame provably never touched the session's state."""
        flood = 24
        stream = _streams(1, flood, seed=29)[0]
        with NetServer(
            fixed_compiled, workers=1, queue_limit=2, max_delay_s=0.01
        ) as server:
            with Client(*server.address, timeout=TIMEOUT) as client:
                session = client.session("flooded")
                rids = [
                    client._send(
                        "push", session="flooded",
                        frame=encode_array(frame),
                    )
                    for frame in stream
                ]
                replies = {}
                for _ in rids:
                    reply = client._recv()
                    replies[reply["id"]] = reply
        assert len(replies) == flood  # nothing dropped silently
        busy = [r for r in rids if replies[r].get("type") == "busy"]
        accepted = [r for r in rids if replies[r].get("ok")]
        assert busy, "the flood never drew a busy frame"
        assert accepted, "the flood starved every frame"
        # Accepted pushes kept stream order: seq is 1..len(accepted).
        seqs = [replies[r]["seq"] for r in accepted]
        assert seqs == list(range(1, len(accepted) + 1))
        # The decisive check: replaying only the accepted frames through a
        # standalone session reproduces the served bytes exactly — so the
        # busy'd frames were never applied server-side.
        session = fixed_compiled.session()
        index_of = {rid: i for i, rid in enumerate(rids)}
        for rid in accepted:
            expected = session.push(stream[index_of[rid]])
            got = decode_array(replies[rid]["logits"])
            assert np.array_equal(got, expected)

    def test_windowed_pipelining_never_draws_busy(self, fixed_compiled):
        """run() clamps its window to queue_limit: no busy possible."""
        stream = _streams(1, 30, seed=31)[0]
        with NetServer(
            fixed_compiled, workers=1, queue_limit=4, max_delay_s=0.001
        ) as server:
            with Client(*server.address, timeout=TIMEOUT) as client:
                session = client.session("windowed")
                got = session.run(stream, window=64)  # clamped to 4
        assert np.array_equal(got, _standalone(fixed_compiled, stream))


# ----------------------------------------------------------------------
# Drain on close.
# ----------------------------------------------------------------------


class TestDrain:
    def test_close_delivers_every_inflight_reply(self, fixed_compiled):
        """close() must flush dispatched frames' replies, not drop them."""
        import threading
        import time

        frames = 30
        stream = _streams(1, frames, seed=37)[0]
        server = NetServer(
            fixed_compiled, workers=1, queue_limit=64, max_delay_s=0.005
        ).start()
        client = Client(*server.address, timeout=TIMEOUT)
        session = client.session("drained")
        rids = [
            client._send(
                "push", session="drained", frame=encode_array(frame)
            )
            for frame in stream
        ]
        time.sleep(0.05)  # let the reader admit all 30 into worker queues
        closer = threading.Thread(target=server.close, name="closer")
        closer.start()
        replies = [client._recv() for _ in rids]
        closer.join(timeout=TIMEOUT)
        assert not closer.is_alive(), "close() hung during drain"
        assert [r["id"] for r in replies] == rids  # ordered, complete
        assert all(r.get("ok") for r in replies)
        got = np.stack([decode_array(r["logits"]) for r in replies])
        assert np.array_equal(got, _standalone(fixed_compiled, stream))
        # After the drain the server is gone: the connection reports EOF.
        with pytest.raises(NetError, match="closed the connection"):
            client.request("ping")
        client.close()

    def test_close_is_idempotent(self, fixed_compiled):
        server = NetServer(fixed_compiled, workers=1).start()
        server.close()
        server.close()
        with pytest.raises(ConfigError, match="restarted"):
            server.start()


# ----------------------------------------------------------------------
# The soak test (ISSUE 5 satellite): 8 clients x 50 frames, 2 workers.
# ----------------------------------------------------------------------


class TestSoak:
    def test_eight_clients_fifty_frames_two_workers(self, fixed_compiled):
        """Zero dropped/duplicated/reordered responses, byte-identity.

        Every push reply carries the worker-side stream counter and the
        client enforces gapless, strictly-increasing sequence numbers
        (``NetSession._accept_seq``) — so a dropped, duplicated or
        reordered response surfaces as a hard ``NetError`` here, not as
        silent corruption.  On top of that, every stream's logits must be
        byte-identical to its standalone session.
        """
        import threading

        clients, frames = 8, 50
        streams = _streams(clients, frames, seed=41)
        expected = [
            _standalone(fixed_compiled, stream) for stream in streams
        ]
        results: list = [None] * clients
        errors: list = []

        with NetServer(
            fixed_compiled, workers=2, queue_limit=16
        ) as server:

            def soak_client(index: int) -> None:
                try:
                    with Client(*server.address, timeout=TIMEOUT) as client:
                        session = client.session(f"soak-{index}")
                        results[index] = session.run(
                            streams[index], window=8
                        )
                        assert session.frames_pushed == frames
                except Exception as error:  # noqa: BLE001 — asserted below
                    errors.append(f"client {index}: {error!r}")

            threads = [
                threading.Thread(
                    target=soak_client, args=(i,), name=f"soak-{i}"
                )
                for i in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            hung = [t.name for t in threads if t.is_alive()]
            assert not hung, f"soak client(s) hung: {hung}"

            with Client(*server.address, timeout=TIMEOUT) as client:
                entries = client.stats()

        assert not errors, f"soak errors: {errors}"
        served = sum(entry["stats"]["frames"] for entry in entries)
        assert served == clients * frames  # every frame exactly once
        for index in range(clients):
            assert results[index] is not None, f"stream {index} dropped"
            assert np.array_equal(results[index], expected[index]), (
                f"stream {index} not byte-identical over the wire"
            )
        # Both workers actually carried load (8 hashed names over 2
        # workers; pinned by route_session stability).
        busy_workers = [
            entry["worker"] for entry in entries
            if entry["stats"]["frames"] > 0
        ]
        assert len(busy_workers) == 2


def test_session_names_route_both_workers():
    """Guard for the soak's two-worker assertion: the 8 soak names do
    not all hash to one worker (would silently weaken the test)."""
    routed = {route_session(f"soak-{i}", 2) for i in range(8)}
    assert routed == {0, 1}


def test_wire_json_is_plain_ndjson(fixed_compiled):
    """One request per line, one JSON object per reply — pin the framing."""
    with NetServer(fixed_compiled, workers=1) as server:
        import socket

        with socket.create_connection(server.address, timeout=TIMEOUT) as sock:
            sock.settimeout(TIMEOUT)
            file = sock.makefile("rwb")
            hello = json.loads(file.readline())
            assert hello["type"] == "hello"
            file.write(b'{"id": 1, "op": "ping"}\n')
            file.flush()
            assert json.loads(file.readline()) == {
                "id": 1, "ok": True, "type": "pong",
            }
