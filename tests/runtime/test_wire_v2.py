"""Wire protocol v2 (PR 7): negotiation, binary framing, regressions.

The v1↔v2 compatibility matrix over real sockets: a v1 client against a
v2 server is byte-for-byte untouched, a v2 client degrades gracefully on
a v1-only server, and a negotiated connection mixes binary payload
frames with JSON control traffic.  Malformed binary headers draw
structured errors *without* losing the connection (the frame is
self-delimiting); only length-cap violations disconnect.  Plus the PR 7
regression fixes: an oversized request line answers with a protocol
error instead of tearing the connection down, and ``NetSession``'s busy
retry is bounded with the server's admission limit in the final error.
"""

import json
import os
import signal
import socket
import struct

import numpy as np
import pytest

from repro.config import RNNSpec
from repro.nn.rnn import StackedRNNClassifier
from repro.runtime import compile
from repro.runtime.net import BusyError, Client, NetServer, encode_array
from repro.runtime.net.protocol import (
    BIN_MAGIC,
    BIN_PREFIX,
    BIN_PUSH,
    BIN_RESULT,
    BIN_VERSION,
    MAX_LINE_BYTES,
    build_binary_frame,
)

SPEC = RNNSpec("lstm", 10, (32,), 6, block_sizes=(4,))
TIMEOUT = 15.0


def _compiled(backend: str):
    model = StackedRNNClassifier(
        SPEC, structured=True, rng=np.random.default_rng(0)
    )
    return compile(model, backend=backend, cache=False)


def _standalone(compiled, stream: np.ndarray) -> np.ndarray:
    return compiled.session().run(stream[:, None, :])[:, 0]


def _stream(frames: int, seed: int = 5) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal(
        (frames, SPEC.input_size)
    )


@pytest.fixture(scope="module")
def fixed_compiled():
    return _compiled("fixed")


@pytest.fixture(scope="module")
def float_compiled():
    return _compiled("float")


@pytest.fixture(scope="module")
def v2_server(fixed_compiled):
    """One 1-worker v2-capable server shared by this module's tests."""
    with NetServer(fixed_compiled, workers=1, queue_limit=32) as server:
        yield server


class _RawConn:
    """A hand-driven socket connection for byte-level protocol tests."""

    def __init__(self, server: NetServer):
        self.sock = socket.create_connection(server.address, timeout=TIMEOUT)
        self.sock.settimeout(TIMEOUT)
        self.file = self.sock.makefile("rwb")
        self.hello = json.loads(self.file.readline())

    def send_json(self, **message) -> None:
        self.file.write(json.dumps(message).encode("utf-8") + b"\n")
        self.file.flush()

    def send_raw(self, data: bytes) -> None:
        self.file.write(data)
        self.file.flush()

    def recv_json(self) -> dict:
        line = self.file.readline()
        assert line, "server closed the connection"
        assert line[0] != BIN_MAGIC, "expected a JSON reply, got binary"
        return json.loads(line)

    def recv_binary(self) -> tuple[int, int, tuple[int, ...], bytes]:
        """Read one binary result frame -> (op, seq, shape, payload)."""
        prefix = self.file.read(BIN_PREFIX.size)
        assert len(prefix) == BIN_PREFIX.size
        magic, version, op, dtype, rid, seq, slen, ndim, _ = (
            BIN_PREFIX.unpack(prefix)
        )
        assert magic == BIN_MAGIC and version == BIN_VERSION
        rest = self.file.read(4 * ndim + 4)
        *dims, nbytes = struct.unpack(f"<{ndim}II", rest)
        assert slen == 0  # results never carry a session id
        payload = self.file.read(nbytes)
        assert len(payload) == nbytes
        return op, seq, tuple(dims), payload

    def negotiate(self, session: str, rid: int = 1) -> dict:
        self.send_json(id=rid, op="open", session=session, protocol=2)
        reply = self.recv_json()
        assert reply["ok"] and reply["protocol"] == 2
        return reply

    def ping_ok(self, rid: int = 999) -> None:
        """The connection-usability probe: a ping still round-trips."""
        self.send_json(id=rid, op="ping")
        assert self.recv_json() == {"id": rid, "ok": True, "type": "pong"}

    def close(self) -> None:
        try:
            self.file.close()
        finally:
            self.sock.close()


def _frame_bytes(frame: np.ndarray) -> bytes:
    return np.ascontiguousarray(frame, dtype="<f8").tobytes()


# ----------------------------------------------------------------------
# Negotiation matrix.
# ----------------------------------------------------------------------
class TestNegotiation:
    def test_hello_advertises_both_protocols(self, v2_server):
        with Client(*v2_server.address, timeout=TIMEOUT) as client:
            assert client.hello["protocol"] == 1  # pinned: v1 field untouched
            assert client.hello["max_protocol"] == 2

    def test_v1_client_on_v2_server_is_untouched(
        self, v2_server, fixed_compiled
    ):
        stream = _stream(8)
        with Client(*v2_server.address, timeout=TIMEOUT, protocol=1) as client:
            session = client.session("neg-v1-client")
            got = np.stack([session.push(frame) for frame in stream])
            assert client.protocol == 1
            assert "protocol" not in session.meta
        assert got.tobytes() == _standalone(fixed_compiled, stream).tobytes()

    def test_v2_client_falls_back_on_v1_only_server(self, fixed_compiled):
        stream = _stream(6)
        with NetServer(fixed_compiled, workers=1, max_protocol=1) as server:
            with Client(*server.address, timeout=TIMEOUT) as client:
                assert client.hello["max_protocol"] == 1
                session = client.session("neg-fallback")
                got = np.stack([session.push(frame) for frame in stream])
                assert client.protocol == 1
        assert got.tobytes() == _standalone(fixed_compiled, stream).tobytes()

    def test_v2_negotiated_end_to_end(self, v2_server, fixed_compiled):
        stream = _stream(10)
        with Client(*v2_server.address, timeout=TIMEOUT) as client:
            session = client.session("neg-v2")
            got = np.stack([session.push(frame) for frame in stream])
            assert client.protocol == 2
            assert session.meta["protocol"] == 2
        assert got.tobytes() == _standalone(fixed_compiled, stream).tobytes()

    def test_json_push_on_negotiated_conn_replies_json(
        self, v2_server, fixed_compiled
    ):
        """Replies mirror the request framing, not the connection state:
        a JSON push on a v2-negotiated connection gets a JSON reply."""
        frame = _stream(1)[0]
        conn = _RawConn(v2_server)
        try:
            conn.negotiate("neg-mirror")
            conn.send_json(
                id=2, op="push", session="neg-mirror",
                frame=encode_array(np.ascontiguousarray(frame)),
            )
            reply = conn.recv_json()
            assert reply["ok"] and reply["type"] == "push"
            assert reply["logits"]["shape"] == [SPEC.output_size]
        finally:
            conn.close()

    def test_binary_push_before_negotiation_is_rejected(self, v2_server):
        """Binary framing without the open-handshake grant: structured
        error naming the negotiation, connection stays usable."""
        conn = _RawConn(v2_server)
        try:
            conn.send_json(id=1, op="open", session="neg-early")  # v1 open
            assert conn.recv_json()["ok"]
            conn.send_raw(build_binary_frame(
                BIN_PUSH, 2, (SPEC.input_size,),
                _frame_bytes(_stream(1)[0]), session=b"neg-early",
            ))
            reply = conn.recv_json()
            assert not reply["ok"]
            assert "negotiat" in reply["error"]
            conn.ping_ok()
        finally:
            conn.close()


# ----------------------------------------------------------------------
# Malformed binary frames: recoverable errors vs disconnects.
# ----------------------------------------------------------------------
class TestMalformedBinary:
    def _negotiated(self, server: NetServer, name: str) -> _RawConn:
        conn = _RawConn(server)
        conn.negotiate(name)
        return conn

    def _good_frame(self, rid: int, session: str) -> bytearray:
        return bytearray(build_binary_frame(
            BIN_PUSH, rid, (SPEC.input_size,),
            _frame_bytes(_stream(1)[0]), session=session.encode("utf-8"),
        ))

    def test_bad_version_is_recoverable(self, v2_server):
        conn = self._negotiated(v2_server, "mal-version")
        try:
            frame = self._good_frame(2, "mal-version")
            frame[1] = 9  # version byte
            conn.send_raw(bytes(frame))
            reply = conn.recv_json()
            assert not reply["ok"] and reply["id"] == 2
            assert "version" in reply["error"]
            conn.ping_ok()
        finally:
            conn.close()

    def test_bad_dtype_is_recoverable(self, v2_server):
        conn = self._negotiated(v2_server, "mal-dtype")
        try:
            frame = self._good_frame(3, "mal-dtype")
            frame[3] = 7  # dtype code
            conn.send_raw(bytes(frame))
            reply = conn.recv_json()
            assert not reply["ok"] and reply["id"] == 3
            assert "dtype" in reply["error"]
            conn.ping_ok()
        finally:
            conn.close()

    def test_result_op_in_a_request_is_recoverable(self, v2_server):
        conn = self._negotiated(v2_server, "mal-op")
        try:
            conn.send_raw(build_binary_frame(
                BIN_RESULT, 4, (SPEC.input_size,),
                _frame_bytes(_stream(1)[0]), session=b"mal-op",
            ))
            reply = conn.recv_json()
            assert not reply["ok"] and reply["id"] == 4
            assert "op code" in reply["error"]
            conn.ping_ok()
        finally:
            conn.close()

    def test_payload_shape_mismatch_is_recoverable(self, v2_server):
        """nbytes disagreeing with the declared shape: the frame is
        self-delimiting, so the server consumes it whole and recovers."""
        conn = self._negotiated(v2_server, "mal-shape")
        try:
            frame = self._good_frame(5, "mal-shape")
            # Rewrite the declared shape without touching the payload.
            struct.pack_into("<I", frame, BIN_PREFIX.size, SPEC.input_size + 3)
            conn.send_raw(bytes(frame))
            reply = conn.recv_json()
            assert not reply["ok"] and reply["id"] == 5
            assert "bytes for shape" in reply["error"]
            conn.ping_ok()
        finally:
            conn.close()

    def test_ndim_over_cap_disconnects(self, v2_server):
        """Length-cap violations are the one fatal class: the stream
        position can't be trusted, so the server errors and hangs up."""
        conn = self._negotiated(v2_server, "mal-ndim")
        try:
            prefix = BIN_PREFIX.pack(
                BIN_MAGIC, BIN_VERSION, BIN_PUSH, 1, 6, 0, 0, 200, 0
            )
            conn.send_raw(prefix)
            reply = conn.recv_json()
            assert not reply["ok"]
            assert "out of range" in reply["error"]
            assert conn.file.readline() == b""  # server hung up
        finally:
            conn.close()


# ----------------------------------------------------------------------
# Oversized request lines (PR 7 regression): error frame, not teardown.
# ----------------------------------------------------------------------
class TestOversizedLine:
    @pytest.mark.parametrize("negotiated", [False, True])
    def test_oversized_line_draws_error_and_keeps_conn(
        self, v2_server, negotiated
    ):
        conn = _RawConn(v2_server)
        try:
            if negotiated:
                conn.negotiate(f"oversize-{negotiated}")
            filler = b'{"id": 1, "op": "ping", "pad": "' + (
                b"x" * (MAX_LINE_BYTES + 64)
            ) + b'"}\n'
            conn.send_raw(filler)
            reply = conn.recv_json()
            assert not reply["ok"]
            assert "exceeds" in reply["error"]
            conn.ping_ok()
        finally:
            conn.close()


# ----------------------------------------------------------------------
# push_many byte-identity: both framings x both backends, both transports.
# ----------------------------------------------------------------------
class TestPushMany:
    @pytest.mark.parametrize("backend", ["float", "fixed"])
    @pytest.mark.parametrize("protocol", [1, 2])
    def test_push_many_matches_standalone(
        self, backend, protocol, fixed_compiled, float_compiled
    ):
        compiled = fixed_compiled if backend == "fixed" else float_compiled
        stream = _stream(12, seed=9)
        with NetServer(compiled, workers=1) as server:
            with Client(
                *server.address, timeout=TIMEOUT, protocol=protocol
            ) as client:
                session = client.session("many")
                got = session.push_many(stream)
                assert client.protocol == protocol
                # Batch advanced the stream exactly len(stream) frames.
                follow = session.push(stream[-1])
        expected = _standalone(compiled, stream)
        assert got.tobytes() == expected.tobytes()
        assert follow.shape == (SPEC.output_size,)

    def test_push_many_interleaves_with_push(self, v2_server, fixed_compiled):
        stream = _stream(9, seed=11)
        with Client(*v2_server.address, timeout=TIMEOUT) as client:
            session = client.session("many-mix")
            first = session.push(stream[0])
            middle = session.push_many(stream[1:8])
            last = session.push(stream[8])
        got = np.concatenate([first[None], middle, last[None]])
        assert got.tobytes() == _standalone(fixed_compiled, stream).tobytes()

    def test_empty_push_many_is_local(self, v2_server):
        with Client(*v2_server.address, timeout=TIMEOUT) as client:
            session = client.session("many-empty")
            got = session.push_many(_stream(0))
            assert got.shape == (0, SPEC.output_size)
            assert session.frames_pushed == 0

    def test_pipe_transport_byte_identity(self, fixed_compiled):
        stream = _stream(10, seed=13)
        with NetServer(fixed_compiled, workers=1, transport="pipe") as server:
            assert server.transport == "pipe"
            with Client(*server.address, timeout=TIMEOUT) as client:
                session = client.session("pipe")
                pushed = np.stack([session.push(f) for f in stream[:5]])
                batched = session.push_many(stream[5:])
        got = np.concatenate([pushed, batched])
        assert got.tobytes() == _standalone(fixed_compiled, stream).tobytes()

    def test_dispatcher_only_scheduling_byte_identity(self, fixed_compiled):
        """inline_rows=False (the bench baseline) serves the same bytes."""
        stream = _stream(8, seed=17)
        with NetServer(
            fixed_compiled, workers=1, inline_rows=False
        ) as server:
            with Client(*server.address, timeout=TIMEOUT) as client:
                session = client.session("no-inline")
                got = np.stack([session.push(f) for f in stream])
        assert got.tobytes() == _standalone(fixed_compiled, stream).tobytes()

    def test_inline_rows_count_in_stats(self, v2_server):
        """step_inline rows land in the same stats counters the
        dispatcher maintains — monitoring sees every frame."""
        stream = _stream(5, seed=19)
        with Client(*v2_server.address, timeout=TIMEOUT) as client:
            before = sum(e["stats"]["frames"] for e in client.stats())
            session = client.session("inline-stats")
            for frame in stream:
                session.push(frame)
            after = sum(e["stats"]["frames"] for e in client.stats())
        assert after - before == len(stream)


# ----------------------------------------------------------------------
# Busy retry (PR 7 regression): bounded backoff, limit in the error.
# ----------------------------------------------------------------------
class TestBusyRetry:
    def test_exhausted_retries_raise_with_server_limit(self, fixed_compiled):
        """Saturate a queue_limit=1 server whose only worker is stopped:
        the retry loop must give up after the configured attempts and
        surface the server's admission limit in the error.

        Determinism: the fill push and the retried push ride the same
        connection, and the server parses a connection's requests in
        order — the fill is admitted (pending=1) before the retried
        push is even read, so every attempt draws ``busy``.
        """
        stream = _stream(2)
        with NetServer(fixed_compiled, workers=1, queue_limit=1) as server:
            pid = server._procs[0].pid
            with Client(*server.address, timeout=TIMEOUT) as client:
                session = client.session("busy-cap")
                os.kill(pid, signal.SIGSTOP)
                try:
                    client._send(
                        "push", session="busy-cap",
                        frame=encode_array(
                            np.ascontiguousarray(stream[0])
                        ),
                    )
                    with pytest.raises(BusyError) as excinfo:
                        session.push(stream[1], retries=2, backoff_s=0.001)
                finally:
                    os.kill(pid, signal.SIGCONT)
        assert excinfo.value.limit == 1
        assert "3 attempts" in str(excinfo.value)
        assert "limit 1" in str(excinfo.value)
        assert "was not applied" in str(excinfo.value)

    def test_backoff_sleep_is_capped(self, monkeypatch, fixed_compiled):
        """The per-attempt sleep must clamp at max_backoff_s instead of
        growing linearly without bound (the PR 7 bug)."""
        from repro.runtime.net import client as client_mod

        sleeps: list[float] = []

        with NetServer(fixed_compiled, workers=1, queue_limit=1) as server:
            pid = server._procs[0].pid
            with Client(*server.address, timeout=TIMEOUT) as client:
                session = client.session(
                    "busy-sleep", retries=30, backoff_s=0.05,
                    max_backoff_s=0.12,
                )
                os.kill(pid, signal.SIGSTOP)
                try:
                    client._send(
                        "push", session="busy-sleep",
                        frame=encode_array(
                            np.ascontiguousarray(_stream(1)[0])
                        ),
                    )
                    monkeypatch.setattr(
                        client_mod.time, "sleep", sleeps.append
                    )
                    with pytest.raises(BusyError):
                        session.push(_stream(1)[0])
                finally:
                    os.kill(pid, signal.SIGCONT)
        assert sleeps, "retry loop never slept"
        assert max(sleeps) <= 0.12 + 1e-9
        assert sleeps.count(0.12) >= 25  # clamped, not linear
