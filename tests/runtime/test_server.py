"""Concurrent-session safety and scheduling behavior of the Server."""

import threading

import numpy as np
import pytest

from repro.config import RNNSpec
from repro.errors import ConfigError
from repro.nn.rnn import StackedRNNClassifier
from repro.runtime import Server, compile

SPEC = RNNSpec("lstm", 10, (32,), 6, block_sizes=(4,))


@pytest.fixture(params=["float", "fixed"])
def compiled(request):
    model = StackedRNNClassifier(
        SPEC, structured=True, rng=np.random.default_rng(0)
    )
    return compile(model, backend=request.param, cache=False)


def _streams(count: int, frames: int, seed: int = 5) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal(
        (count, frames, SPEC.input_size)
    )


class TestConcurrentSessions:
    def test_served_streams_byte_identical_to_standalone(self, compiled):
        """The headline guarantee: micro-batching never perturbs a stream.

        N threads push N distinct streams concurrently; every result must
        equal the same stream through a standalone width-1 session (which
        itself equals the batched run — see test_session_equivalence).
        """
        sessions, frames = 6, 12
        streams = _streams(sessions, frames)
        expected = [
            compiled.run(stream[:, None, :])[:, 0] for stream in streams
        ]
        results: list = [None] * sessions
        with compiled.serve(max_batch=sessions, max_delay_s=0.01) as server:

            def client(index: int) -> None:
                with server.session() as session:
                    results[index] = np.stack(
                        [session.push(frame) for frame in streams[index]]
                    )

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(sessions)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = server.stats()

        for index in range(sessions):
            assert np.array_equal(results[index], expected[index]), (
                f"stream {index} perturbed by micro-batching"
            )
        assert stats.frames == sessions * frames
        assert stats.sessions_opened == sessions
        assert stats.sessions_active == 0
        assert 1 <= stats.max_coalesced <= sessions

    def test_coalescing_actually_happens(self, compiled):
        """Lockstep clients should land in shared backend calls."""
        sessions, frames = 4, 10
        streams = _streams(sessions, frames)
        with compiled.serve(max_batch=sessions, max_delay_s=0.05) as server:
            barrier = threading.Barrier(sessions)

            def client(index: int) -> None:
                session = server.session()
                barrier.wait()
                for frame in streams[index]:
                    session.push(frame)
                session.close()

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(sessions)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = server.stats()
        # Far fewer backend calls than frames proves coalescing; the exact
        # grouping is timing-dependent, so assert the conservative bound.
        assert stats.batches < stats.frames
        assert stats.max_coalesced >= 2

    def test_idle_open_session_does_not_throttle_active_one(self, compiled):
        """An open-but-idle session must not count toward the fill target.

        Regression: the scheduler once waited the full micro-batching
        window on every frame whenever any *open* session was silent,
        capping an active stream at ~1/max_delay_s frames/s.
        """
        import time

        frames = 10
        stream = _streams(1, frames, seed=9)[0]
        with compiled.serve(max_batch=8, max_delay_s=0.25) as server:
            idle = server.session()  # never pushes
            active = server.session()
            start = time.perf_counter()
            for frame in stream:
                active.push(frame)
            elapsed = time.perf_counter() - start
            idle.close()
        # A stalled scheduler would need >= frames * 0.25s = 2.5s.
        assert elapsed < 0.5 * frames * 0.25

    def test_reset_between_utterances(self, compiled):
        stream = _streams(1, 8)[0]
        expected = compiled.run(stream[:, None, :])[:, 0]
        with compiled.serve() as server:
            session = server.session()
            first = np.stack([session.push(frame) for frame in stream])
            session.reset()
            assert session.frames_pushed == 0
            second = np.stack([session.push(frame) for frame in stream])
        assert np.array_equal(first, expected)
        assert np.array_equal(second, expected)


class TestServerLifecycle:
    def test_close_rejects_new_work(self, compiled):
        server = compiled.serve()
        session = server.session()
        server.close()
        with pytest.raises(ConfigError, match="closed"):
            session.push(np.zeros(SPEC.input_size))
        with pytest.raises(ConfigError, match="closed"):
            server.session()
        server.close()  # idempotent

    def test_closed_session_rejects_push(self, compiled):
        with compiled.serve() as server:
            session = server.session()
            session.close()
            with pytest.raises(ConfigError, match="closed"):
                session.push(np.zeros(SPEC.input_size))

    def test_push_validates_frame_shape(self, compiled):
        with compiled.serve() as server:
            session = server.session()
            with pytest.raises(ConfigError):
                session.push(np.zeros(SPEC.input_size + 1))
            with pytest.raises(ConfigError):
                session.push(np.zeros((2, SPEC.input_size)))
            # the server survives rejected frames
            out = session.push(np.zeros(SPEC.input_size))
            assert out.shape == (SPEC.output_size,)

    def test_constructor_validation(self, compiled):
        with pytest.raises(ConfigError):
            Server(compiled, max_batch=0)
        with pytest.raises(ConfigError):
            Server(compiled, max_delay_s=-1.0)

    def test_stats_describe_mentions_coalescing(self, compiled):
        with compiled.serve() as server:
            session = server.session()
            session.push(np.zeros(SPEC.input_size))
            text = server.stats().describe()
        assert "frames" in text and "batches" in text


class TestCloseRace:
    def test_concurrent_close_and_push_never_leak_a_slot(self, compiled):
        """Regression: ServerSession.push reads `_open` under `_close_lock`.

        Race a pusher against a closer on the same session, repeatedly:
        every push either returns logits or raises ConfigError("closed"),
        and after the dust settles the server has released every slot.
        """
        frame = np.zeros(SPEC.input_size)
        with compiled.serve(max_delay_s=0.0) as server:
            for _ in range(20):
                session = server.session()
                outcomes: list = []

                def pusher() -> None:
                    try:
                        for _ in range(5):
                            outcomes.append(session.push(frame))
                    except ConfigError as error:
                        outcomes.append(error)

                closer = threading.Thread(target=session.close)
                worker = threading.Thread(target=pusher)
                worker.start()
                closer.start()
                worker.join()
                closer.join()
                for outcome in outcomes:
                    assert isinstance(outcome, (np.ndarray, ConfigError))
            assert server.stats().sessions_active == 0
        assert server.stats().sessions_opened == 20
