"""Unit tests for the shared-memory slot rings under the v2 transport.

Everything here exercises :mod:`repro.runtime.net.ring` in one process
(the SPSC protocol does not care which thread plays producer): slot
publish/consume ordering, wraparound, capacity, the external-payload
flag, seqlock corruption detection, doorbell-kick coalescing, and the
create/attach segment lifecycle.
"""

import numpy as np
import pytest

from repro.runtime.net.ring import (
    OP_PUSH,
    OP_PUSH_MANY,
    Ring,
    RingError,
    RingPair,
)


@pytest.fixture
def pair():
    rings = RingPair.create(4, 1024)
    yield rings
    rings.close()
    rings.unlink()


def _drain_one(ring: Ring):
    entry = ring.peek()
    assert entry is not None
    # Copy the payload out before advance() frees the slot, and drop the
    # memoryview: a live view would block the segment's close().
    copied = bytes(entry.payload)
    entry.payload = None
    ring.advance()
    return entry, copied


class TestRing:
    def test_roundtrip_preserves_everything(self, pair):
        payload = np.arange(16, dtype="<f8").tobytes()
        assert pair.requests.try_push(
            OP_PUSH, 42, (2, 8), payload, session=b"stream-7", seq_no=3,
            emit_seq=9,
        )
        entry, copied = _drain_one(pair.requests)
        assert entry.op == OP_PUSH
        assert entry.ticket == 42
        assert entry.seq_no == 3
        assert entry.emit_seq == 9
        assert entry.shape == (2, 8)
        assert entry.session == "stream-7"
        assert not entry.external
        assert copied == payload

    def test_fifo_across_wraparound(self, pair):
        """Push/pop far past nslots: order and contents never slip."""
        for index in range(23):
            assert pair.requests.try_push(
                OP_PUSH, index, (1,), bytes([index % 251]) * 8
            )
            entry, copied = _drain_one(pair.requests)
            assert entry.ticket == index
            assert copied == bytes([index % 251]) * 8

    def test_full_ring_refuses_then_recovers(self, pair):
        for index in range(4):
            assert pair.requests.try_push(OP_PUSH, index, (1,), b"x" * 8)
        assert pair.requests.free_slots() == 0
        assert not pair.requests.try_push(OP_PUSH, 99, (1,), b"x" * 8)
        entry, _ = _drain_one(pair.requests)
        assert entry.ticket == 0
        assert pair.requests.free_slots() == 1
        assert pair.requests.try_push(OP_PUSH, 99, (1,), b"x" * 8)

    def test_external_entry_carries_no_payload(self, pair):
        assert pair.requests.try_push(
            OP_PUSH_MANY, 7, (512, 64), None, session=b"big", external=True
        )
        entry, copied = _drain_one(pair.requests)
        assert entry.external
        assert entry.shape == (512, 64)
        assert copied == b""

    def test_oversized_payload_raises(self, pair):
        with pytest.raises(RingError, match="external path"):
            pair.requests.try_push(OP_PUSH, 1, (200,), b"x" * 1600)

    def test_oversized_session_raises(self, pair):
        with pytest.raises(RingError, match="session id"):
            pair.requests.try_push(
                OP_PUSH, 1, (1,), b"x" * 8, session=b"s" * 300
            )

    def test_corrupted_seq_is_detected(self, pair):
        """A torn or stale slot must never masquerade as a ready entry."""
        assert pair.requests.try_push(OP_PUSH, 5, (1,), b"x" * 8)
        # Scribble over the slot's seq word (offset of slot 0's meta).
        pair._shm.buf[64:72] = (999).to_bytes(8, "little")
        with pytest.raises(RingError, match="torn write or corrupted"):
            pair.requests.peek()

    def test_requests_and_responses_are_independent(self, pair):
        assert pair.requests.try_push(OP_PUSH, 1, (1,), b"a" * 8)
        assert pair.responses.try_push(OP_PUSH, 2, (1,), b"b" * 8)
        req, req_payload = _drain_one(pair.requests)
        res, res_payload = _drain_one(pair.responses)
        assert (req.ticket, req_payload) == (1, b"a" * 8)
        assert (res.ticket, res_payload) == (2, b"b" * 8)


class TestKickFlags:
    def test_kick_coalesces_until_cleared(self, pair):
        assert pair.ring_kick(responses=False)  # first arm: send doorbell
        assert not pair.ring_kick(responses=False)  # already armed
        assert not pair.ring_kick(responses=False)
        pair.clear_kick(responses=False)
        assert pair.ring_kick(responses=False)  # re-armed after drain

    def test_request_and_response_kicks_are_independent(self, pair):
        assert pair.ring_kick(responses=False)
        assert pair.ring_kick(responses=True)
        pair.clear_kick(responses=True)
        assert not pair.ring_kick(responses=False)
        assert pair.ring_kick(responses=True)


class TestSegmentLifecycle:
    def test_attach_sees_the_creators_entries(self):
        creator = RingPair.create(8, 2048)
        try:
            payload = b"z" * 64
            assert creator.requests.try_push(
                OP_PUSH, 11, (8,), payload, session=b"attached"
            )
            attached = RingPair.attach(creator.name, 8, 2048)
            try:
                entry = attached.requests.peek()
                assert entry is not None
                assert entry.ticket == 11
                assert entry.session == "attached"
                assert bytes(entry.payload) == payload
                entry.payload = None  # release the view before close()
                attached.requests.advance()
                # The head advance is visible back on the creator side.
                assert creator.requests.free_slots() == 8
            finally:
                attached.close()
        finally:
            creator.close()
            creator.unlink()

    def test_minimum_slots_enforced(self):
        with pytest.raises(RingError, match="at least 2 slots"):
            RingPair.create(1, 1024)

    def test_unlink_is_owner_only_and_idempotent(self):
        creator = RingPair.create(2, 1024)
        attached = RingPair.attach(creator.name, 2, 1024)
        attached.unlink()  # non-owner: must be a no-op
        probe = RingPair.attach(creator.name, 2, 1024)  # still linked
        probe.close()
        attached.close()
        creator.close()
        creator.unlink()
        creator.unlink()  # second unlink swallowed
