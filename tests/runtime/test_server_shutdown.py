"""Shutdown-race regression tests for the micro-batching Server.

These pin the PR-5 hardening guarantees with a deliberately slow backend
stub (every ``step_rows`` sleeps), which keeps requests in flight long
enough to make the races deterministic:

* a ``push()`` blocked in ``future.result()`` while another thread calls
  ``close()`` must never hang — every pending future either completes
  normally during the drain or fails with ``ConfigError``;
* ``close()`` is idempotent and **equivalent** under concurrent calls:
  no caller returns while the drain is still in flight;
* if the dispatcher thread dies, queued futures are failed instead of
  hanging their callers forever (pre-PR they hung).
"""

import threading
import time

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.runtime import Server
from repro.runtime.backends import Executor

INPUT, CLASSES = 4, 3
JOIN_TIMEOUT = 20.0


class SlowExecutor(Executor):
    """A conformant but deliberately slow backend: every batch sleeps."""

    input_size = INPUT
    num_classes = CLASSES

    def __init__(self, delay_s: float = 0.05):
        self.delay_s = delay_s
        self.batches = 0

    def initial_state(self, batch: int):
        return np.zeros(batch)

    def step(self, frames, state):
        time.sleep(self.delay_s)
        self.batches += 1
        return frames[:, :CLASSES] * 2.0, state + 1


class SlowCompiled:
    """The minimal Server-facing surface: just ``executor()``."""

    def __init__(self, delay_s: float = 0.05):
        self._executor = SlowExecutor(delay_s)

    def executor(self):
        return self._executor


def _join_all(threads):
    for thread in threads:
        thread.join(timeout=JOIN_TIMEOUT)
    hung = [thread.name for thread in threads if thread.is_alive()]
    assert not hung, f"thread(s) hung: {hung}"


class TestCloseDuringBlockedPush:
    def test_every_push_completes_or_fails_no_hang(self):
        """close() racing blocked pushes: all resolve, none hang."""
        server = Server(SlowCompiled(delay_s=0.05), max_batch=4,
                        max_delay_s=0.001)
        outcomes: list[str] = []
        lock = threading.Lock()

        def client(index: int) -> None:
            session = server.session()
            for _ in range(3):
                frame = np.full(INPUT, float(index))
                try:
                    logits = session.push(frame)
                    assert np.array_equal(logits, frame[:CLASSES] * 2.0)
                    with lock:
                        outcomes.append("ok")
                except ConfigError:
                    with lock:
                        outcomes.append("rejected")

        threads = [
            threading.Thread(target=client, args=(i,), name=f"client-{i}", daemon=True)
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.06)  # at least one batch in flight, more queued
        server.close()
        _join_all(threads)
        # Every attempted push is accounted for: completed during the
        # drain, or failed loudly.  Nothing silently dropped, nothing hung.
        assert len(outcomes) == 12  # 4 clients x 3 pushes, all accounted
        assert set(outcomes) <= {"ok", "rejected"}
        assert "ok" in outcomes  # the in-flight batch completed

    def test_queued_requests_drain_with_results(self):
        """Requests already queued at close() still compute (the drain)."""
        server = Server(SlowCompiled(delay_s=0.05), max_batch=1,
                        max_delay_s=0.0)
        results: dict[int, np.ndarray] = {}
        failures: list[int] = []

        def client(index: int) -> None:
            session = server.session()
            try:
                results[index] = session.push(np.full(INPUT, float(index)))
            except ConfigError:
                failures.append(index)

        threads = [
            threading.Thread(target=client, args=(i,), daemon=True)
            for i in range(6)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.02)  # all six submitted; max_batch=1 serializes them
        server.close()
        _join_all(threads)
        assert len(results) + len(failures) == 6
        for index, logits in results.items():
            assert np.array_equal(
                logits, np.full(INPUT, float(index))[:CLASSES] * 2.0
            )


class TestConcurrentClose:
    def test_second_closer_waits_for_drain(self):
        """No close() returns while the dispatcher is still draining."""
        server = Server(SlowCompiled(delay_s=0.3), max_batch=1,
                        max_delay_s=0.0)
        session = server.session()
        pusher = threading.Thread(
            target=lambda: _swallow_config_error(
                session.push, np.zeros(INPUT)
            ),
            name="pusher",
            daemon=True,
        )
        pusher.start()
        time.sleep(0.05)  # the 0.3s batch is now in flight

        alive_after_close: list[bool] = []
        barrier = threading.Barrier(2)

        def closer() -> None:
            barrier.wait()
            server.close()
            alive_after_close.append(server._dispatcher.is_alive())

        closers = [
            threading.Thread(target=closer, name=f"closer-{i}", daemon=True)
            for i in range(2)
        ]
        for thread in closers:
            thread.start()
        _join_all(closers + [pusher])
        # Regression: the second concurrent close() used to return
        # immediately (early `if self._closed: return`) while the first
        # was still waiting out the drain.
        assert alive_after_close == [False, False]

    def test_close_idempotent_sequentially(self):
        server = Server(SlowCompiled(delay_s=0.01))
        server.close()
        server.close()
        with pytest.raises(ConfigError, match="closed"):
            server.session()


class TestDispatcherDeath:
    def test_pending_futures_fail_instead_of_hanging(self):
        """A dead dispatcher must fail queued pushes, not strand them.

        Pre-PR, an unexpected exception on the dispatcher thread (forced
        here via a poisoned ``_fill_target``) left every queued future
        unresolved: the blocked ``push()`` hung forever and so did any
        subsequent ``close()`` caller's expectations.
        """
        server = Server(SlowCompiled(delay_s=0.01), max_batch=4,
                        max_delay_s=0.01)
        server._fill_target = _raise_runtime_error  # poison the dispatcher
        session = server.session()
        outcome: list[str] = []

        def pusher() -> None:
            try:
                session.push(np.zeros(INPUT))
                outcome.append("ok")
            except ConfigError:
                outcome.append("config-error")

        thread = threading.Thread(target=pusher, name="pusher", daemon=True)
        thread.start()
        _join_all([thread])
        assert outcome == ["config-error"]
        # The server is now closed for business, loudly.
        with pytest.raises(ConfigError):
            server.session().push(np.zeros(INPUT))
        server.close()  # returns promptly: dispatcher already dead


def _swallow_config_error(fn, *args):
    try:
        fn(*args)
    except ConfigError:
        pass


def _raise_runtime_error() -> int:
    raise RuntimeError("poisoned scheduler (test-injected)")
