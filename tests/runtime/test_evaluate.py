"""Runtime-routed dataset metrics: byte-compatibility and new backends."""

import numpy as np

from repro.nn.autograd import no_grad
from repro.nn.data import iterate_batches
from repro.runtime import as_compiled, compile, evaluate_frame_accuracy, evaluate_per


def _legacy_per(model, dataset, batch_size=8):
    """The pre-runtime scoring loop, inlined as the byte-compat oracle."""
    from repro.asr.decoder import FrameDecoder, collapse_repeats
    from repro.asr.metrics import corpus_error_rate

    decoder = FrameDecoder(dataset.phone_set)
    references, hypotheses = [], []
    for batch in iterate_batches(
        dataset.features, dataset.frame_labels, batch_size,
        rng=None, bucket_by_length=True,
    ):
        with no_grad():
            logits = model(batch.features)
        hypotheses.extend(decoder.decode_batch(logits.data, batch.lengths))
        for b, length in enumerate(batch.lengths):
            tokens = collapse_repeats(list(batch.labels[:length, b]))
            phones = dataset.phone_set.decode(tokens)
            references.append(decoder.reference(phones))
    return corpus_error_rate(references, hypotheses)


class TestByteCompatibility:
    def test_per_matches_legacy_pipeline_exactly(
        self, trained_dense, micro_datasets
    ):
        """PER through the runtime == the seed pipeline loop, bit for bit."""
        _, test = micro_datasets
        assert evaluate_per(trained_dense, test, batch_size=2) == _legacy_per(
            trained_dense, test, batch_size=2
        )

    def test_workers_do_not_change_per(self, trained_dense, micro_datasets):
        _, test = micro_datasets
        serial = evaluate_per(trained_dense, test, batch_size=2)
        assert (
            evaluate_per(trained_dense, test, batch_size=2, workers=4)
            == serial
        )

    def test_compiled_float_equals_raw_model(self, trained_dense, micro_datasets):
        _, test = micro_datasets
        compiled = compile(trained_dense, backend="float", cache=False)
        assert evaluate_per(compiled, test) == evaluate_per(trained_dense, test)


class TestFixedBackendEvaluation:
    def test_per_of_the_hardware_computation(self, micro_datasets):
        """The new capability: score the CU emulation itself, end to end."""
        from repro.config import RNNSpec
        from repro.nn.rnn import StackedRNNClassifier

        train, _ = micro_datasets
        spec = RNNSpec(
            "lstm", train.feature_dim, (16,), len(train.phone_set),
            block_sizes=(4,),
        )
        model = StackedRNNClassifier(
            spec, structured=True, rng=np.random.default_rng(0)
        )
        fixed = compile(model, backend="fixed", weight_bits=12, cache=False)
        per = evaluate_per(fixed, train, batch_size=4)
        assert 0.0 <= per <= 200.0
        # deterministic, and workers agree on the emulated PER too
        assert per == evaluate_per(fixed, train, batch_size=4, workers=3)


class TestFrameAccuracy:
    def test_matches_direct_computation(self, trained_dense, micro_datasets):
        from repro.nn.loss import frame_accuracy

        _, test = micro_datasets
        total_correct, total = 0.0, 0
        for batch in iterate_batches(
            test.features, test.frame_labels, 8, rng=None, bucket_by_length=True
        ):
            with no_grad():
                logits = trained_dense(batch.features)
            frames = batch.num_frames
            total_correct += (
                frame_accuracy(logits.data, batch.labels, batch.mask) * frames
            )
            total += frames
        assert evaluate_frame_accuracy(trained_dense, test) == (
            total_correct / total
        )


class TestNetTransport:
    def test_served_per_equals_inprocess_width1(
        self, trained_dense, micro_datasets
    ):
        """transport="net" scores the *served* math — and it must equal
        the in-process ``batch_size=1`` PER exactly.  (Width-1 is the
        honest baseline: the wire serves utterances one by one, and on
        the fixed backend quantization format fitting is batch-coupled,
        so width-B batched logits are legitimately different bytes.)"""
        _, test = micro_datasets
        compiled = compile(trained_dense, backend="float", cache=False)
        served = evaluate_per(compiled, test, transport="net")
        assert served == evaluate_per(compiled, test, batch_size=1)

    def test_served_per_fixed_backend(self, micro_datasets):
        """The deployment loop closed: PER of the quantized hardware
        math as actually served over sockets."""
        from repro.config import RNNSpec
        from repro.nn.rnn import StackedRNNClassifier

        train, _ = micro_datasets
        spec = RNNSpec(
            "lstm", train.feature_dim, (16,), len(train.phone_set),
            block_sizes=(4,),
        )
        model = StackedRNNClassifier(
            spec, structured=True, rng=np.random.default_rng(0)
        )
        fixed = compile(model, backend="fixed", weight_bits=12, cache=False)
        served = evaluate_per(fixed, train, transport="net", batch_size=4)
        assert served == evaluate_per(fixed, train, batch_size=1)

    def test_rejects_unknown_transport(self, trained_dense, micro_datasets):
        import pytest

        from repro.errors import ConfigError

        _, test = micro_datasets
        with pytest.raises(ConfigError):
            evaluate_per(trained_dense, test, transport="carrier-pigeon")


class TestAsCompiled:
    def test_passthrough_and_coercion(self, trained_dense):
        compiled = compile(trained_dense, backend="float", cache=False)
        assert as_compiled(compiled) is compiled
        coerced = as_compiled(trained_dense)
        assert coerced.backend == "float"
