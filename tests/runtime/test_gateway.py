"""The cluster tier end to end: real backends, real sockets, real kills.

The headline invariants, mirroring the single-node netserver suite one
layer up:

* streams served **through the gateway** are byte-identical to
  standalone in-process sessions, on both wire protocols;
* placement is sticky (a session's frames all land on one backend) and
  ring-deterministic;
* SIGKILL of a whole backend process mid-stream loses nothing: the
  reattach journal replays onto the ring's next backend and the stream
  stays byte-identical — zero non-retryable client errors;
* a rolling drain (force) migrates every pinned session via the same
  replay and removes the node from the ring, again byte-identically;
* the admin plane (``cluster_health``/``cluster_add``/``cluster_drain``/
  ``cluster_undrain``, fan-out ``stats``/``sessions``) answers through a
  stock :class:`Client`.
"""

import numpy as np
import pytest

from repro.config import RNNSpec
from repro.errors import ConfigError
from repro.nn.rnn import StackedRNNClassifier
from repro.runtime import compile
from repro.runtime.cluster import BackendFleet, Gateway, backend_key
from repro.runtime.net import Client, NetError

SPEC = RNNSpec("lstm", 10, (32,), 6, block_sizes=(4,))
TIMEOUT = 30.0


@pytest.fixture(scope="module")
def compiled():
    model = StackedRNNClassifier(
        SPEC, structured=True, rng=np.random.default_rng(0)
    )
    return compile(model, backend="float", cache=False)


def _streams(count, frames, seed=11):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((frames, SPEC.input_size))
            for _ in range(count)]


def _standalone(compiled, stream):
    return compiled.session().run(stream[:, None, :])[:, 0]


@pytest.fixture(scope="module")
def cluster(compiled):
    """A 2-backend fleet behind a gateway, shared by the read-only tests."""
    with BackendFleet(compiled, count=2) as fleet:
        with Gateway(fleet.keys, probe_interval_s=0.25, down_after=2) as gw:
            yield fleet, gw


class TestByteIdentityThroughGateway:
    def test_v2_streams_match_standalone(self, cluster, compiled):
        _, gw = cluster
        client = Client(*gw.address, timeout=TIMEOUT)
        try:
            for i, stream in enumerate(_streams(4, 20)):
                got = client.session(f"ident-v2-{i}").run(stream, window=8)
                assert np.array_equal(got, _standalone(compiled, stream))
        finally:
            client.close()

    def test_v1_streams_match_standalone(self, cluster, compiled):
        _, gw = cluster
        client = Client(*gw.address, timeout=TIMEOUT, protocol=1)
        try:
            for i, stream in enumerate(_streams(2, 16, seed=12)):
                got = client.session(f"ident-v1-{i}").run(stream, window=4)
                assert np.array_equal(got, _standalone(compiled, stream))
        finally:
            client.close()

    def test_hello_presents_the_fleet_as_one_server(self, cluster):
        _, gw = cluster
        client = Client(*gw.address, timeout=TIMEOUT)
        try:
            hello = client.hello
            assert hello["gateway"] is True
            assert hello["backends"] == 2
            assert hello["input_size"] == SPEC.input_size
            assert hello["workers"] == 2  # summed across backends
        finally:
            client.close()


class TestRoutingAndAdminPlane:
    def test_sessions_are_pinned_to_one_backend(self, cluster):
        _, gw = cluster
        client = Client(*gw.address, timeout=TIMEOUT)
        try:
            names = [f"pin-{i}" for i in range(8)]
            sessions = [client.session(name) for name in names]
            stream = _streams(1, 6, seed=13)[0]
            for _ in range(2):
                for sess in sessions:
                    for t in range(3):
                        sess.push(stream[t])
            listed = {e["session"]: e["backend"]
                      for e in client.sessions() if e["session"] in names}
            assert set(listed) == set(names)
            health = client.cluster_health()
            placed = sum(b["sessions_placed"] for b in health["backends"])
            assert placed >= len(names)
            for sess in sessions:
                sess.close()
        finally:
            client.close()

    def test_cluster_health_shape(self, cluster):
        fleet, gw = cluster
        client = Client(*gw.address, timeout=TIMEOUT)
        try:
            health = client.cluster_health()
            assert health["gateway"] is True
            assert sorted(b["backend"] for b in health["backends"]) == sorted(
                fleet.keys
            )
            assert all(b["state"] == "up" for b in health["backends"])
            assert sorted(health["ring"]["nodes"]) == sorted(fleet.keys)
            assert health["ring"]["vnodes"] == 128
        finally:
            client.close()

    def test_stats_fan_out_merges_all_workers(self, cluster, compiled):
        _, gw = cluster
        client = Client(*gw.address, timeout=TIMEOUT)
        try:
            workers = client.stats()
            assert len(workers) == 2  # one worker per backend
            assert {w["backend"] for w in workers} == set(
                b["backend"]
                for b in client.cluster_health()["backends"]
            )
        finally:
            client.close()

    def test_unknown_and_malformed_ops(self, cluster):
        _, gw = cluster
        client = Client(*gw.address, timeout=TIMEOUT)
        try:
            with pytest.raises(NetError, match="unknown op"):
                client.request("warp_cores")
            with pytest.raises(NetError, match="session"):
                client.request("push")  # session op without a session
            with pytest.raises(NetError, match="unknown backend"):
                client.cluster_drain("10.9.9.9:1")
        finally:
            client.close()

    def test_backend_key_normalization(self):
        assert backend_key("127.0.0.1:7001") == "127.0.0.1:7001"
        assert backend_key(("127.0.0.1", 7001)) == "127.0.0.1:7001"
        with pytest.raises(ConfigError):
            backend_key("no-port")
        with pytest.raises(ConfigError):
            backend_key(42)

    def test_gateway_requires_reachable_backends(self):
        with pytest.raises(ConfigError, match="failed to start"):
            Gateway(["127.0.0.1:1"]).start()

    def test_gateway_rejects_empty_and_duplicate_fleets(self):
        with pytest.raises(ConfigError):
            Gateway([])
        with pytest.raises(ConfigError):
            Gateway(["a:1", "a:1"])


class TestFailover:
    def test_sigkill_failover_is_byte_identical(self, compiled):
        """Kill a whole backend mid-stream: every session reattaches to
        the surviving backend and every stream stays byte-identical."""
        streams = _streams(6, 30, seed=17)
        expected = [_standalone(compiled, s) for s in streams]
        with BackendFleet(compiled, count=2) as fleet:
            with Gateway(fleet.keys, probe_interval_s=0.2,
                         down_after=2) as gw:
                client = Client(*gw.address, timeout=60)
                sessions = [client.session(f"kill-{i}", reattach=True)
                            for i in range(len(streams))]
                outs = [[] for _ in streams]
                for i, sess in enumerate(sessions):
                    for t in range(15):
                        outs[i].append(sess.push(streams[i][t]))
                health = client.cluster_health()
                placed = {b["backend"]: b["sessions_placed"]
                          for b in health["backends"]}
                assert sum(placed.values()) == len(streams)

                fleet.kill(0)

                for i, sess in enumerate(sessions):
                    for t in range(15, 30):
                        outs[i].append(sess.push(streams[i][t]))
                for i in range(len(streams)):
                    assert np.array_equal(np.stack(outs[i]), expected[i]), (
                        f"stream {i} diverged across the failover"
                    )
                health = client.cluster_health()
                states = {b["backend"]: b["state"]
                          for b in health["backends"]}
                assert states[fleet.keys[0]] == "down"
                assert states[fleet.keys[1]] == "up"
                # all surviving placements moved to the live backend
                placed = {b["backend"]: b["sessions_placed"]
                          for b in health["backends"]}
                assert placed[fleet.keys[0]] == 0
                events = [e["event"] for e in gw.events]
                assert "backend_down" in events
                for sess in sessions:
                    sess.close()
                client.close()


class TestRollingDrain:
    def test_single_session_v2_connection_renegotiates(self, compiled):
        """Regression: when a v2 connection's ONLY session is drained
        away, its next binary push routes to a backend this connection
        never negotiated v2 with.  The gateway must bounce the client
        into its reattach path (retryable error), not forward the frame
        and surface the backend's non-retryable framing complaint."""
        stream = _streams(1, 20, seed=23)[0]
        expected = _standalone(compiled, stream)
        with BackendFleet(compiled, count=2) as fleet:
            with Gateway(fleet.keys, probe_interval_s=0.2, down_after=2,
                         drain_poll_s=0.1) as gw:
                client = Client(*gw.address, timeout=60)
                assert client.protocol == 2 or client.hello[
                    "max_protocol"] >= 2
                sess = client.session("solo", reattach=True)
                outs = [sess.push(stream[t]) for t in range(10)]
                owner = next(e["backend"] for e in client.sessions()
                             if e["session"] == "solo")
                admin = Client(*gw.address, timeout=60)
                reply = admin.cluster_drain(owner, force=True, wait_s=25)
                assert reply["drained"], reply
                outs += [sess.push(stream[t]) for t in range(10, 20)]
                assert np.array_equal(np.stack(outs), expected)
                assert sess.recoveries >= 1
                admin.close()
                sess.close()
                client.close()

    def test_force_drain_migrates_byte_identically(self, compiled):
        """`cluster drain --force`: pinned sessions are evicted, their
        clients replay onto the ring's survivor, the node leaves the
        ring — and no stream drops or corrupts a frame."""
        streams = _streams(5, 24, seed=19)
        expected = [_standalone(compiled, s) for s in streams]
        with BackendFleet(compiled, count=2) as fleet:
            with Gateway(fleet.keys, probe_interval_s=0.2, down_after=2,
                         drain_poll_s=0.1) as gw:
                client = Client(*gw.address, timeout=60)
                sessions = [client.session(f"drain-{i}", reattach=True)
                            for i in range(len(streams))]
                outs = [[] for _ in streams]
                for i, sess in enumerate(sessions):
                    for t in range(12):
                        outs[i].append(sess.push(streams[i][t]))

                victim = fleet.keys[0]
                reply = client.cluster_drain(victim, force=True, wait_s=25)
                assert reply["drained"], reply
                assert reply["remaining"] == 0

                health = client.cluster_health()
                assert victim not in health["ring"]["nodes"]
                assert victim in health["removed"]

                # the survivor is now the last placeable backend, and
                # the gateway refuses to drain it out from under us
                with pytest.raises(NetError, match="last placeable"):
                    client.cluster_drain(fleet.keys[1])

                for i, sess in enumerate(sessions):
                    for t in range(12, 24):
                        outs[i].append(sess.push(streams[i][t]))
                for i in range(len(streams)):
                    assert np.array_equal(np.stack(outs[i]), expected[i]), (
                        f"stream {i} diverged across the drain"
                    )

                # drain ≠ kill: the backend process is still alive and
                # can rejoin the fleet
                assert fleet.alive(0)
                reply = client.cluster_add(victim)
                assert reply["backends"] == 2
                health = client.cluster_health()
                assert victim in health["ring"]["nodes"]

                # undrain cancels a pending drain and restores placement
                drain = client.cluster_drain(victim, wait_s=0)
                if not drain["drained"]:
                    client.cluster_undrain(victim)
                    states = {b["backend"]: b["state"]
                              for b in client.cluster_health()["backends"]}
                    assert states[victim] == "up"

                for sess in sessions:
                    sess.close()
                client.close()
