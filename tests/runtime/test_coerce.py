"""The one shared input-coercion path, pinned across every surface.

Regression (PR 5): ``ServerSession.push`` force-cast inline and refused
``(1, D)`` frames that a width-1 ``Session`` accepted; ``run`` validated
separately again.  Now all four surfaces — ``Session.push``,
``ServerSession.push``, batched ``CompiledModel.run``, and the net layer
— go through :func:`repro.runtime.coerce.coerce_frame` /
:func:`coerce_stream`, and feeding float32 or integer frames yields
logits byte-identical to the float64 path everywhere (the cast is exact
for those dtypes).
"""

import numpy as np
import pytest

from repro.config import RNNSpec
from repro.errors import ConfigError
from repro.nn.rnn import StackedRNNClassifier
from repro.runtime import compile
from repro.runtime.coerce import coerce_frame, coerce_stream

SPEC = RNNSpec("lstm", 10, (32,), 6, block_sizes=(4,))


@pytest.fixture(scope="module", params=["float", "fixed"])
def compiled(request):
    model = StackedRNNClassifier(
        SPEC, structured=True, rng=np.random.default_rng(0)
    )
    return compile(model, backend=request.param, cache=False)


class TestCoerceFrame:
    def test_bare_vector_squeezes(self):
        frame, squeezed = coerce_frame(np.zeros(5), 1, 5)
        assert frame.shape == (1, 5) and squeezed
        assert frame.dtype == np.float64 and frame.flags["C_CONTIGUOUS"]

    def test_two_dim_passes_through(self):
        frame, squeezed = coerce_frame(np.zeros((3, 5)), 3, 5)
        assert frame.shape == (3, 5) and not squeezed

    def test_bare_vector_needs_width_one(self):
        with pytest.raises(ConfigError, match="batch_size=1"):
            coerce_frame(np.zeros(5), 2, 5)

    def test_wrong_shape(self):
        with pytest.raises(ConfigError, match="expected a"):
            coerce_frame(np.zeros(6), 1, 5)
        with pytest.raises(ConfigError, match="expected a"):
            coerce_frame(np.zeros((2, 5)), 1, 5)

    def test_non_numeric_rejected(self):
        with pytest.raises(ConfigError, match="not numeric"):
            coerce_frame(np.array(["a", "b"], dtype=object), 1, 2)

    def test_nan_and_inf_rejected(self):
        for poison in (np.nan, np.inf, -np.inf):
            frame = np.zeros(5)
            frame[2] = poison
            with pytest.raises(ConfigError, match="NaN or Inf"):
                coerce_frame(frame, 1, 5)

    def test_integer_and_float32_cast_exactly(self):
        ints = np.arange(5, dtype=np.int32)
        f32 = np.arange(5, dtype=np.float32) / 3
        assert np.array_equal(coerce_frame(ints, 1, 5)[0][0],
                              ints.astype(np.float64))
        assert np.array_equal(coerce_frame(f32, 1, 5)[0][0],
                              f32.astype(np.float64))


class TestCoerceStream:
    def test_shape_and_width_checks(self):
        with pytest.raises(ConfigError, match=r"\(T, B, D\)"):
            coerce_stream(np.zeros((4, 5)), 5)
        with pytest.raises(ConfigError, match="feature width"):
            coerce_stream(np.zeros((4, 1, 6)), 5)

    def test_nan_rejected(self):
        stream = np.zeros((4, 1, 5))
        stream[1, 0, 2] = np.nan
        with pytest.raises(ConfigError, match="NaN or Inf"):
            coerce_stream(stream, 5)


class TestServerSessionShapeParity:
    """Regression: the server session now accepts the same shapes as Session."""

    def test_one_by_d_frame_accepted(self, compiled):
        """Pre-PR, ServerSession.push raised on a (1, D) frame."""
        frame = np.random.default_rng(0).standard_normal(
            (1, SPEC.input_size)
        )
        expected = compiled.session().push(frame)  # (1, C) back
        with compiled.serve() as server:
            session = server.session()
            served = session.push(frame)
        assert served.shape == (1, SPEC.output_size)
        assert np.array_equal(served, expected)

    def test_bare_vector_still_squeezes(self, compiled):
        frame = np.random.default_rng(1).standard_normal(SPEC.input_size)
        with compiled.serve() as server:
            served = server.session().push(frame)
        assert served.shape == (SPEC.output_size,)

    def test_nan_frame_rejected_before_batching(self, compiled):
        frame = np.zeros(SPEC.input_size)
        frame[0] = np.nan
        with compiled.serve() as server:
            session = server.session()
            with pytest.raises(ConfigError, match="NaN or Inf"):
                session.push(frame)
            # the server survives the rejected frame
            out = session.push(np.zeros(SPEC.input_size))
            assert out.shape == (SPEC.output_size,)


class TestDtypeByteIdentityAcrossSurfaces:
    """float32/int frames == float64 frames, on every inference surface."""

    @pytest.mark.parametrize("dtype", [np.float32, np.int32, np.int64])
    def test_session_server_and_run_agree(self, compiled, dtype):
        frames = 7
        rng = np.random.default_rng(7)
        if np.issubdtype(dtype, np.integer):
            stream = rng.integers(-4, 5, size=(frames, SPEC.input_size))
            stream = stream.astype(dtype)
        else:
            stream = rng.standard_normal(
                (frames, SPEC.input_size)
            ).astype(dtype)
        exact = stream.astype(np.float64)

        baseline = compiled.run(exact[:, None, :])[:, 0]

        # 1. batched run on the raw dtype
        assert np.array_equal(
            compiled.run(stream[:, None, :])[:, 0], baseline
        )
        # 2. Session.push on the raw dtype
        session = compiled.session()
        pushed = np.stack([session.push(frame) for frame in stream])
        assert np.array_equal(pushed, baseline)
        # 3. ServerSession.push on the raw dtype
        with compiled.serve() as server:
            served_session = server.session()
            served = np.stack(
                [served_session.push(frame) for frame in stream]
            )
        assert np.array_equal(served, baseline)

    # Surface 4, the net layer, is pinned in test_netserver.py
    # (TestNetByteIdentity.test_integer_frames_over_the_wire) — it needs
    # worker processes, which stay in one module for fixture reuse.
