"""Deterministic fault injection: grammar, arming, and the damage paths.

The publish-path faults run against real servers: a delayed publish must
change latency and nothing else, a dropped publish must be recovered by
the client's timeout + reattach (byte-identically), and a corrupted ring
slot must trip the parent's seqlock check and get the worker replaced —
never served as data.
"""

import numpy as np
import pytest

from repro.config import RNNSpec
from repro.errors import ConfigError
from repro.nn.rnn import StackedRNNClassifier
from repro.runtime import compile
from repro.runtime.net import Client, FaultSpec, NetServer, parse_fault
from repro.runtime.net.faults import FaultInjector, coerce_faults

SPEC = RNNSpec("lstm", 10, (32,), 6, block_sizes=(4,))
TIMEOUT = 15.0


@pytest.fixture(scope="module")
def fixed_compiled():
    model = StackedRNNClassifier(
        SPEC, structured=True, rng=np.random.default_rng(0)
    )
    return compile(model, backend="fixed", cache=False)


def _stream(frames: int) -> np.ndarray:
    return np.random.default_rng(3).standard_normal(
        (frames, SPEC.input_size)
    )


def _standalone(compiled, stream: np.ndarray) -> np.ndarray:
    return compiled.session().run(stream[:, None, :])[:, 0]


class TestGrammar:
    def test_full_spec_round_trip(self):
        spec = parse_fault("kill:worker=1,after=5")
        assert spec == FaultSpec("kill", worker=1, after=5)

    def test_defaults(self):
        spec = parse_fault("drop_publish")
        assert spec.kind == "drop_publish"
        assert spec.worker is None and spec.after == 0 and spec.times == 1

    def test_seconds_is_float(self):
        assert parse_fault("delay_publish:seconds=0.05").seconds == 0.05

    @pytest.mark.parametrize("text", [
        "explode",                      # unknown kind
        "kill:after",                   # missing =
        "kill:pid=3",                   # unknown field
        "kill:after=soon",              # non-integer value
        "stall:worker=0",               # stall needs seconds > 0
        "delay_publish:seconds=0",      # delay needs seconds > 0
    ])
    def test_bad_specs_are_config_errors(self, text):
        with pytest.raises(ConfigError):
            parse_fault(text)

    def test_coerce_accepts_strings_specs_and_none(self):
        assert coerce_faults(None) == []
        assert coerce_faults("kill") == [FaultSpec("kill")]
        spec = FaultSpec("stall", seconds=1.0)
        assert coerce_faults([spec, "kill:worker=1"]) == [
            spec, FaultSpec("kill", worker=1),
        ]
        with pytest.raises(ConfigError, match="FaultSpec"):
            coerce_faults([42])


class TestInjector:
    def test_worker_filter(self):
        armed = FaultInjector(0, [FaultSpec("drop_publish", worker=1)])
        assert not armed  # fault targets worker 1, this is worker 0
        assert FaultInjector(1, [FaultSpec("drop_publish", worker=1)])
        assert FaultInjector(7, [FaultSpec("drop_publish")])  # None = all

    def test_after_and_times_accounting(self):
        injector = FaultInjector(
            0, [FaultSpec("drop_publish", after=2, times=2)]
        )
        actions = [injector.on_publish() for _ in range(6)]
        assert actions == [None, None, "drop", "drop", None, None]


class TestPublishFaults:
    def test_delay_publish_changes_latency_not_bytes(self, fixed_compiled):
        stream = _stream(6)
        with NetServer(
            fixed_compiled, workers=1,
            faults="delay_publish:seconds=0.05,times=3",
        ) as server:
            with Client(*server.address, timeout=TIMEOUT) as client:
                got = client.session("delayed").run(stream, window=4)
        assert got.tobytes() == _standalone(fixed_compiled, stream).tobytes()

    def test_drop_publish_recovered_by_client_timeout(self, fixed_compiled):
        """A swallowed reply is invisible to the parent (it looks like
        slow compute), so the CLIENT timeout is the recovery path: the
        reattaching session reconnects, resets, replays, and the final
        stream is still byte-identical."""
        stream = _stream(8)
        with NetServer(
            fixed_compiled, workers=1, faults="drop_publish:after=4",
        ) as server:
            with Client(*server.address, timeout=2.0) as client:
                session = client.session("dropped")
                got = np.stack([session.push(frame) for frame in stream])
                assert session.recoveries >= 1
        assert got.tobytes() == _standalone(fixed_compiled, stream).tobytes()

    def test_corrupt_slot_is_caught_never_served(self, fixed_compiled):
        """A scribbled seq word must trip the parent's seqlock check and
        get the worker replaced — the client sees a recovered stream (or
        a structured retryable error), NEVER corrupt logits."""
        stream = _stream(10)
        with NetServer(
            fixed_compiled, workers=1, faults="corrupt_slot:after=5",
        ) as server:
            with Client(*server.address, timeout=TIMEOUT) as client:
                session = client.session("torn")
                got = np.stack([session.push(frame) for frame in stream])
                assert session.recoveries >= 1
            events = [event["event"] for event in server.events]
            assert "worker_down" in events
            assert "worker_restarted" in events
        assert got.tobytes() == _standalone(fixed_compiled, stream).tobytes()
