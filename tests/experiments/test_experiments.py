"""Experiment harness and the fast (non-training) table/figure modules."""

import pytest

from repro.errors import ConfigError
from repro.experiments.common import ExperimentHarness, ExperimentSettings
from repro.experiments.fig8 import format_fig8, run_fig8
from repro.experiments.table3 import (
    PAPER_TABLE3,
    format_comparison,
    gru_workload,
    lstm_workload,
    run_table3,
)
from repro.experiments.table4 import format_table4, run_table4, verify_against_paper
from repro.experiments.ablations import decoupling_ablation


@pytest.fixture(scope="module")
def fast_harness(tmp_path_factory):
    cache = tmp_path_factory.mktemp("cache") / "cache.json"
    return ExperimentHarness(ExperimentSettings.fast(), cache_path=cache)


class TestHarness:
    def test_datasets_shapes(self, fast_harness):
        train, test = fast_harness.datasets()
        assert train.num_utterances > 0 and test.num_utterances > 0
        assert train.feature_dim == fast_harness.feature_dim

    def test_dense_model_cached(self, fast_harness):
        spec = fast_harness.make_spec("lstm", (8,))
        first = fast_harness.dense_model(spec)
        second = fast_harness.dense_model(spec.with_block_sizes((4,)))
        assert first is second  # same architecture -> same baseline

    def test_measure_per_cached(self, fast_harness):
        spec = fast_harness.make_spec("lstm", (8,))
        a = fast_harness.measure_per(spec)
        b = fast_harness.measure_per(spec)
        assert a == b

    def test_circulant_flavors_differ(self, fast_harness):
        spec = fast_harness.make_spec("lstm", (8,), (4,))
        ernn = fast_harness.measure_per(spec, flavor="ernn")
        direct = fast_harness.measure_per(spec, flavor="direct")
        assert 0 <= ernn <= 200 and 0 <= direct <= 200

    def test_disk_cache_round_trip(self, tmp_path):
        cache = tmp_path / "cache.json"
        settings = ExperimentSettings.fast()
        first = ExperimentHarness(settings, cache_path=cache)
        spec = first.make_spec("lstm", (8,))
        value = first.measure_per(spec)
        second = ExperimentHarness(settings, cache_path=cache)
        assert second.measure_per(spec) == value

    def test_legacy_single_file_cache_rejected(self, tmp_path):
        """cache_path is a directory now; a leftover .bench_cache.json file
        must fail loudly instead of silently caching nothing."""
        legacy = tmp_path / ".bench_cache.json"
        legacy.write_text("{}")
        with pytest.raises(ConfigError, match="directory"):
            ExperimentHarness(ExperimentSettings.fast(), cache_path=legacy)


class TestTable3:
    def test_all_ten_columns(self):
        reports = run_table3()
        assert len(reports) == 11  # ESE + 2 C-LSTM + 8 E-RNN
        labels = [r.label for r in reports]
        assert "ESE" in labels
        assert any("GRU" in label for label in labels)

    def test_ese_matches_paper(self):
        reports = {r.label: r for r in run_table3()}
        paper = PAPER_TABLE3["ESE"]
        assert reports["ESE"].latency_us == pytest.approx(
            paper.latency_us, rel=0.05
        )

    def test_headline_orderings(self):
        reports = {r.label: r for r in run_table3()}
        ese = reports["ESE"]
        fft8 = reports["E-RNN FFT8 (KU060)"]
        fft16 = reports["E-RNN FFT16 (KU060)"]
        gru16 = reports["E-RNN GRU FFT16 (KU060)"]
        clstm = reports["C-LSTM FFT8 (7V3)"]
        # Who wins, and in the right order.
        assert fft8.fps > 8 * ese.fps
        assert fft16.fps > fft8.fps
        assert gru16.fps > fft16.fps * 0.95
        assert reports["E-RNN FFT8 (7V3)"].fps > clstm.fps

    def test_energy_efficiency_ratios(self):
        reports = {r.label: r for r in run_table3()}
        ese_eff = reports["ESE"].energy_efficiency
        ernn_eff = reports["E-RNN FFT8 (7V3)"].energy_efficiency
        assert ernn_eff / ese_eff > 15.0  # paper: 23.4x

    def test_format_prints_ratios(self):
        text = format_comparison(run_table3())
        assert "Headline ratios" in text
        assert "paper" in text

    def test_workload_dims(self):
        assert lstm_workload(8).projection_size == 512
        assert gru_workload(8).layer_sizes == (1024,)


class TestTable4:
    def test_matches_paper_exactly(self):
        assert verify_against_paper()

    def test_run_and_format(self):
        rows = run_table4()
        assert set(rows) == {"ADM-PCIE-7V3", "XCKU060"}
        assert rows["XCKU060"]["bram_mb"] == pytest.approx(4.97, abs=0.1)
        text = format_table4(rows)
        assert "3600" in text and "2760" in text

    def test_pe_capacity_larger_on_7v3(self):
        rows = run_table4()
        assert (
            rows["ADM-PCIE-7V3"]["pe_capacity_fft8"]
            > rows["XCKU060"]["pe_capacity_fft8"]
        )


class TestFig8:
    def test_curves_and_format(self):
        curves = run_fig8()
        assert set(curves) == {512, 1024}
        for curve in curves.values():
            assert curve[2] == pytest.approx(0.5)
        text = format_fig8(curves)
        assert "converges at" in text
        assert "#" in text  # the ASCII bars


class TestDecouplingAblation:
    def test_all_variants_cost_more_than_full(self):
        variants = decoupling_ablation()
        full = variants["all techniques"]
        for name, value in variants.items():
            if name != "all techniques":
                assert value >= full
        assert variants["dense (block 1)"] > 2 * full
