"""Table I/II grid definitions must mirror the paper's row structure."""

import pytest

from repro.config import RNNSpec
from repro.experiments.common import SCALE_FACTOR
from repro.experiments.table1 import LSTM_GRID, PAPER_TABLE1_PER
from repro.experiments.table2 import GRU_GRID, PAPER_TABLE2_PER


class TestGridStructure:
    def test_sixteen_rows_each(self):
        assert len(LSTM_GRID) == 16
        assert len(GRU_GRID) == 16

    def test_paper_per_complete(self):
        assert set(PAPER_TABLE1_PER) == {e.row_id for e in LSTM_GRID}
        assert set(PAPER_TABLE2_PER) == {e.row_id for e in GRU_GRID}

    def test_scale_factor_applied(self):
        """Row 9 is the paper's 1024-1024 baseline, scaled by /16."""
        row9 = next(e for e in LSTM_GRID if e.row_id == 9)
        assert row9.layer_sizes == (1024 // SCALE_FACTOR,) * 2

    def test_three_dense_baselines_per_grid(self):
        for grid in (LSTM_GRID, GRU_GRID):
            dense = [e for e in grid if not e.block_sizes]
            assert len(dense) == 3
            assert len({e.layer_sizes for e in dense}) == 3

    def test_lstm_large_rows_have_peephole_and_projection(self):
        for entry in LSTM_GRID:
            if entry.layer_sizes == (64, 64):
                assert entry.peephole and entry.projection
            if entry.layer_sizes == (16, 16, 16):
                assert not entry.peephole and not entry.projection

    def test_gru_rows_have_no_lstm_features(self):
        for entry in GRU_GRID:
            assert not entry.peephole and not entry.projection

    def test_mixed_block_rows_present(self):
        """The paper explores asymmetric per-layer blocks (4-8, 8-4, 8-16...)."""
        mixed = [
            e for e in LSTM_GRID
            if e.block_sizes and len(set(e.block_sizes)) > 1
        ]
        assert len(mixed) >= 4

    def test_every_row_builds_a_valid_spec(self):
        for grid, cell in ((LSTM_GRID, "lstm"), (GRU_GRID, "gru")):
            for entry in grid:
                projection = (
                    entry.layer_sizes[0] // 2 if entry.projection else None
                )
                spec = RNNSpec(
                    cell, 39, entry.layer_sizes, 16,
                    block_sizes=entry.block_sizes,
                    peephole=entry.peephole,
                    projection_size=projection,
                )
                assert spec.num_layers == len(entry.layer_sizes)

    def test_paper_degradations_monotone_in_block_size(self):
        """The published Table I numbers themselves: 10 <= 13 <= 16."""
        assert PAPER_TABLE1_PER[10] <= PAPER_TABLE1_PER[13] <= PAPER_TABLE1_PER[16]
        assert PAPER_TABLE2_PER[10] <= PAPER_TABLE2_PER[13] <= PAPER_TABLE2_PER[16]
