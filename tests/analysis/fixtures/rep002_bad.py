"""REP002 firing fixture: blocking stdlib calls inside async def."""

import subprocess
import time
from time import sleep


async def handler():
    time.sleep(0.1)  # REP002: stalls the event loop
    sleep(0.1)  # REP002: same call via from-import
    subprocess.run(["true"])  # REP002: sync subprocess
    with open("/dev/null") as handle:  # REP002: blocking builtin
        return handle
