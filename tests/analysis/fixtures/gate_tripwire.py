"""Deliberately-bad fixture: CI lints this file expecting findings.

The lint job runs `repro lint` on this file and FAILS THE BUILD if the
exit code is 0 — proving the gate actually trips on violations rather
than rubber-stamping everything.  Do not "fix" this file.
"""


def looks_fine(risky):
    try:
        return risky()
    except Exception:
        pass
