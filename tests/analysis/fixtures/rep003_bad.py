"""REP003 firing fixture: dtype/ordering hazards in a bit-exact module."""

# bit-exact

import numpy as np


def hazards(values):
    indices = np.arange(10)  # REP003: platform C long
    acc = sum(values)  # REP003: scalar-intermediate reduction
    for item in {"a", "b"}:  # REP003: set iteration order
        acc += len(item)
    return indices, acc, [x for x in set(values)]  # REP003: set() in comp
