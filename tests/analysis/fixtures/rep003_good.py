"""REP003 non-firing fixture: explicit dtypes, ordered reductions."""

# bit-exact

import numpy as np


def clean(values):
    indices = np.arange(10, dtype=np.int64)
    copy = np.array(values, np.float64)  # positional dtype also counts
    like = np.zeros_like(copy)  # *_like inherits its dtype: exempt
    total = np.sum(copy, dtype=np.float64)
    for item in sorted({"a", "b"}):  # sorted() restores determinism
        total += len(item)
    return indices, like, total
