"""REP001 firing fixture: guarded attribute touched without its lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0  # guarded-by: _lock

    def bump(self):
        self._hits += 1  # no lock held: REP001 fires here

    def snapshot(self):
        def worker():
            return self._hits  # closure: outer `with` would not save it

        with self._lock:
            return worker()
