"""REP002 non-firing fixture: async body defers blocking work correctly."""

import asyncio
import time


async def handler():
    await asyncio.sleep(0.1)

    def blocking_read():
        # Nested *sync* function: runs in an executor thread, not the loop.
        time.sleep(0.1)
        with open("/dev/null") as handle:
            return handle.read()

    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, blocking_read)


def sync_helper():
    time.sleep(0.1)  # plain function: blocking is fine here
