"""REP004 firing fixture: internal use of the deprecation shims."""

from repro.hw.accelerator import AcceleratorModel  # REP004
from repro.asr.pipeline import evaluate_per  # REP004

import repro


def legacy(spec, accel, model, corpus):
    hls = repro.HLSFramework(model)  # REP004: attribute reference
    price = AcceleratorModel(spec, accel).allocate_pes()
    return hls, price, evaluate_per(model, corpus)
