"""REP005 firing fixture: swallowed failures."""


def swallow(risky):
    try:
        risky()
    except:  # REP005: bare except
        raise
    try:
        risky()
    except Exception:  # REP005: broad + do-nothing body
        pass
    try:
        risky()
    except (ValueError, BaseException):  # REP005: tuple hides BaseException
        ...
