"""REP006 firing fixture: documented-in annotations that drifted."""

OPS = ("ping", "frobnicate")  # documented-in: docs/runtime.md

MISSING_DOC = ("ping",)  # documented-in: docs/no_such_file.md

NOT_A_LITERAL = sorted(["a", "b"])  # documented-in: docs/runtime.md
