"""REP006 non-firing fixture: every annotated name is in its spec."""

OPS = ("ping", "stats", "open", "push", "reset", "close")  # documented-in: docs/runtime.md

UNANNOTATED = ("anything", "goes", "here")
