"""REP004 non-firing fixture: the blessed replacements only."""

from repro.api import Design
from repro.runtime import evaluate_per


def modern(layers, model, corpus):
    design = Design(layer_sizes=layers, block_size=8)
    return design.price(), evaluate_per(model, corpus)
