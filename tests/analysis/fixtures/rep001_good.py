"""REP001 non-firing fixture: every guarded access holds the lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0  # guarded-by: _lock

    def bump(self):
        with self._lock:
            self._hits += 1

    def _bump_locked(self):  # holds-lock: _lock
        self._hits += 1

    def value(self):
        with self._lock:
            return self._hits
