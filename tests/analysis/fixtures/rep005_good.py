"""REP005 non-firing fixture: handled, narrowed, or justified."""

import logging

log = logging.getLogger(__name__)


def handled(risky, fallback):
    try:
        return risky()
    except ValueError:  # narrow type with a do-nothing body is fine
        pass
    try:
        return risky()
    except Exception as error:  # broad but *handled*: logged
        log.warning("risky failed: %s", error)
        return fallback
    finally:
        try:
            risky.close()
        except Exception:  # repro: ignore[REP005] best-effort close on teardown
            pass
