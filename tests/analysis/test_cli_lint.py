"""The `repro lint` CLI contract: exit codes, JSON schema, the baseline."""

import json
from pathlib import Path

import pytest

from repro.analysis.baseline import UNJUSTIFIED, Baseline
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"

CLEAN = "def fine():\n    return 1\n"
DIRTY = "def bad(r):\n    try:\n        r()\n    except Exception:\n        pass\n"


@pytest.fixture()
def tree(tmp_path):
    """A tmp tree with one clean file, one dirty file, and a baseline path."""
    (tmp_path / "clean.py").write_text(CLEAN)
    (tmp_path / "dirty.py").write_text(DIRTY)
    return tmp_path


def _lint(*argv: str) -> int:
    return main(["lint", *argv])


class TestExitCodes:
    def test_clean_is_zero(self, tree, capsys):
        code = _lint(str(tree / "clean.py"), "--no-baseline")
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_are_one(self, tree, capsys):
        code = _lint(str(tree / "dirty.py"), "--no-baseline")
        assert code == 1
        out = capsys.readouterr().out
        assert "REP005" in out and "1 finding(s)" in out

    def test_parse_error_is_two(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def f(:\n")
        code = _lint(str(tmp_path / "broken.py"), "--no-baseline")
        assert code == 2
        assert "PARSE" in capsys.readouterr().err

    def test_missing_path_is_two_with_error(self, tmp_path, capsys):
        code = _lint(str(tmp_path / "ghost.py"))
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_checker_code_is_two(self, tree, capsys):
        code = _lint(str(tree / "clean.py"), "--select", "REP999")
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestSelection:
    def test_select_skips_other_checkers(self, tree):
        assert _lint(str(tree / "dirty.py"), "--no-baseline",
                     "--select", "REP001") == 0

    def test_ignore_silences_the_finding(self, tree):
        assert _lint(str(tree / "dirty.py"), "--no-baseline",
                     "--ignore", "REP005") == 0

    def test_comma_separated_codes(self, tree):
        assert _lint(str(tree / "dirty.py"), "--no-baseline",
                     "--select", "REP001,REP005") == 1


class TestJsonFormat:
    def test_schema(self, tree, capsys):
        code = _lint(str(tree / "dirty.py"), "--no-baseline", "--format", "json")
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1 and payload["tool"] == "repro lint"
        finding = payload["findings"][0]
        assert set(finding) == {"file", "line", "col", "code", "severity",
                                "message"}
        assert payload["summary"]["exit_code"] == 1
        assert payload["summary"]["files"] == 1

    def test_clean_json_summary(self, tree, capsys):
        assert _lint(str(tree / "clean.py"), "--no-baseline",
                     "--format", "json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["summary"]["exit_code"] == 0


class TestBaseline:
    def test_round_trip(self, tree, capsys):
        baseline = tree / "baseline.json"
        # 1. Record the dirty tree: exit 0, entry stamped TODO.
        assert _lint(str(tree / "dirty.py"), "--baseline", str(baseline),
                     "--update-baseline") == 0
        recorded = Baseline.load(baseline)
        assert list(recorded.entries.values()) == [UNJUSTIFIED]
        # 2. The baseline now excuses the finding: exit 0, counted.
        assert _lint(str(tree / "dirty.py"), "--baseline", str(baseline)) == 0
        assert "1 baselined" in capsys.readouterr().out
        # 3. A *new* violation still fails the gate.
        (tree / "dirty.py").write_text(DIRTY + "\n\ndef worse():\n    try:\n"
                                       "        pass\n    except:\n"
                                       "        pass\n")
        assert _lint(str(tree / "dirty.py"), "--baseline", str(baseline)) == 1

    def test_entries_expire_when_fixed(self, tree, capsys):
        baseline = tree / "baseline.json"
        assert _lint(str(tree / "dirty.py"), "--baseline", str(baseline),
                     "--update-baseline") == 0
        (tree / "dirty.py").write_text(CLEAN)  # violation fixed
        # Stale entry: lint warns on stderr but stays green.
        assert _lint(str(tree / "dirty.py"), "--baseline", str(baseline)) == 0
        assert "stale baseline" in capsys.readouterr().err
        # The update drops it.
        assert _lint(str(tree / "dirty.py"), "--baseline", str(baseline),
                     "--update-baseline") == 0
        assert Baseline.load(baseline).entries == {}

    def test_update_keeps_human_reasons(self, tree):
        baseline = tree / "baseline.json"
        assert _lint(str(tree / "dirty.py"), "--baseline", str(baseline),
                     "--update-baseline") == 0
        recorded = Baseline.load(baseline)
        key = next(iter(recorded.entries))
        recorded.entries[key] = "reviewed: drain path, failure is terminal"
        recorded.save()
        assert _lint(str(tree / "dirty.py"), "--baseline", str(baseline),
                     "--update-baseline") == 0
        assert list(Baseline.load(baseline).entries.values()) == [
            "reviewed: drain path, failure is terminal"
        ]

    def test_corrupt_baseline_is_a_clean_error(self, tree, capsys):
        baseline = tree / "baseline.json"
        baseline.write_text("{not json")
        code = _lint(str(tree / "clean.py"), "--baseline", str(baseline))
        assert code == 2
        assert "error:" in capsys.readouterr().err
