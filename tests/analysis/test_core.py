"""The analysis core: contexts, annotations, the parse cache, the registry."""

import ast

import pytest

from repro.analysis import (
    AnalysisError,
    CHECKER_REGISTRY,
    FileContext,
    Finding,
    Report,
    analyze_paths,
    clear_parse_cache,
    iter_python_files,
    load_file,
    parse_cache_info,
)
from repro.analysis.core import resolve_checkers


def _ctx(source: str) -> FileContext:
    from pathlib import Path

    return FileContext(Path("mem.py"), "mem.py", source)


class TestFileContext:
    def test_annotation_extraction(self):
        ctx = _ctx("x = 1  # guarded-by: _lock\n")
        assert ctx.annotation(1, "guarded-by") == "_lock"
        assert ctx.annotation(1, "holds-lock") is None

    def test_marker_requires_leading_tag(self):
        ctx = _ctx("# bit-exact: datapath module\ny = 2\n")
        assert ctx.has_marker("bit-exact")
        trailing = _ctx("# this module is NOT bit-exact\n")
        assert not trailing.has_marker("bit-exact")

    def test_suppressed_codes_comma_split(self):
        ctx = _ctx("x = 1  # repro: ignore[REP001, REP003] reviewed\n")
        assert ctx.suppressed_codes(1) == frozenset({"REP001", "REP003"})
        assert ctx.suppressed_codes(2) == frozenset()

    def test_parent_and_ancestors(self):
        ctx = _ctx("def f():\n    return 1\n")
        ret = ctx.tree.body[0].body[0]
        assert isinstance(ctx.parent(ret), ast.FunctionDef)
        chain = list(ctx.ancestors(ret))
        assert isinstance(chain[-1], ast.Module)


class TestParseCache:
    def test_unchanged_file_parses_once(self, tmp_path):
        target = tmp_path / "a.py"
        target.write_text("x = 1\n")
        clear_parse_cache()
        first = load_file(target)
        second = load_file(target)
        assert first is second
        info = parse_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_modified_file_reparses(self, tmp_path):
        target = tmp_path / "a.py"
        target.write_text("x = 1\n")
        clear_parse_cache()
        load_file(target)
        target.write_text("x = 1  # changed\n")  # size differs: new signature
        refreshed = load_file(target)
        assert refreshed.comment(1)
        assert parse_cache_info()["misses"] == 2


class TestPathExpansion:
    def test_skips_cache_dirs_and_dedups(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "mod.py").write_text("x = 1\n")
        files = iter_python_files([tmp_path, tmp_path / "pkg" / "mod.py"])
        assert [f.name for f in files] == ["mod.py"]
        assert "__pycache__" not in files[0].parts

    def test_missing_path_is_an_analysis_error(self, tmp_path):
        with pytest.raises(AnalysisError, match="no such file"):
            iter_python_files([tmp_path / "ghost.py"])


class TestRegistry:
    def test_all_codes_registered(self):
        import repro.analysis.checkers  # noqa: F401  registration side effect

        for code in ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006"):
            assert CHECKER_REGISTRY.get(code).code == code

    def test_select_by_lowercase_name_alias(self):
        import repro.analysis.checkers  # noqa: F401

        chosen = resolve_checkers(select=["lock-discipline"])
        assert [c.code for c in chosen] == ["REP001"]

    def test_ignore_drops_checker(self):
        import repro.analysis.checkers  # noqa: F401

        codes = {c.code for c in resolve_checkers(ignore=["REP004"])}
        assert "REP004" not in codes and "REP001" in codes

    def test_unknown_code_raises(self):
        with pytest.raises(AnalysisError):
            resolve_checkers(select=["REP999"])


class TestReport:
    def test_exit_codes(self):
        assert Report().exit_code == 0
        finding = Finding("f.py", 1, 1, "REP005", "m")
        assert Report(findings=[finding]).exit_code == 1

    def test_parse_failure_wins(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        report = analyze_paths([broken])
        assert report.exit_code == 2
        assert report.parse_failures[0].file.endswith("broken.py")

    def test_findings_sorted_and_serializable(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "try:\n    pass\nexcept:\n    pass\n"
            "try:\n    pass\nexcept Exception:\n    pass\n"
        )
        report = analyze_paths([bad], select=["REP005"])
        lines = [f.line for f in report.findings]
        assert lines == sorted(lines)
        payload = report.to_dict()
        assert payload["summary"]["findings"] == 2
        assert payload["findings"][0]["code"] == "REP005"
