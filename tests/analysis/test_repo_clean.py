"""The acceptance gate on this repository's own tree.

`repro lint src tools` must be clean under the committed baseline, the
baseline must carry no TODO reasons, and the deliberately-bad fixture
must still trip the gate — the same three facts CI enforces.
"""

import json
from pathlib import Path

from repro.analysis import analyze_paths, apply_baseline
from repro.analysis.baseline import UNJUSTIFIED, Baseline

REPO = Path(__file__).resolve().parents[2]


def test_src_and_tools_are_clean_under_the_baseline():
    report = analyze_paths([REPO / "src", REPO / "tools"])
    report = apply_baseline(
        report, Baseline.load(REPO / "tools" / "lint_baseline.json")
    )
    assert report.parse_failures == []
    assert report.findings == [], "\n".join(
        f.describe() for f in report.findings
    )
    assert report.files > 100  # the whole tree was actually visited


def test_baseline_is_empty_or_justified():
    payload = json.loads(
        (REPO / "tools" / "lint_baseline.json").read_text()
    )
    assert payload["version"] == 1
    for entry in payload["findings"]:
        assert entry.get("reason") and entry["reason"] != UNJUSTIFIED, entry


def test_tripwire_fixture_keeps_the_gate_honest():
    fixture = Path(__file__).parent / "fixtures" / "gate_tripwire.py"
    assert analyze_paths([fixture]).exit_code == 1
