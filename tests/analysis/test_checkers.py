"""Every checker REP001-REP006: a firing and a non-firing fixture."""

from pathlib import Path

import pytest

from repro.analysis import analyze_paths

FIXTURES = Path(__file__).parent / "fixtures"

ALL_CODES = ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006")

#: Exact finding counts the bad fixtures are built to produce; a checker
#: that stops seeing one of its planted violations fails here.
EXPECTED_BAD = {
    "REP001": 2,  # unlocked increment + closure read under an outer with
    "REP002": 4,  # time.sleep, from-imported sleep, subprocess.run, open
    "REP003": 4,  # bare arange, builtin sum, set-literal for, set() comp
    "REP004": 4,  # two shim imports, attribute ref, bare name use
    "REP005": 3,  # bare except, swallowed Exception, tuple BaseException
    "REP006": 3,  # undocumented op, missing doc file, non-literal value
}


def _lint(name: str, code: str):
    return analyze_paths([FIXTURES / name], select=[code])


class TestFiring:
    @pytest.mark.parametrize("code", ALL_CODES)
    def test_bad_fixture_fires(self, code):
        report = _lint(f"{code.lower()}_bad.py", code)
        assert report.parse_failures == []
        assert len(report.findings) == EXPECTED_BAD[code]
        assert all(f.code == code for f in report.findings)

    def test_findings_carry_location_and_advice(self):
        report = _lint("rep001_bad.py", "REP001")
        finding = report.findings[0]
        assert finding.file.endswith("rep001_bad.py")
        assert finding.line > 0 and finding.col > 0
        assert "_lock" in finding.message  # names the lock to take


class TestNotFiring:
    @pytest.mark.parametrize("code", ALL_CODES)
    def test_good_fixture_clean(self, code):
        report = _lint(f"{code.lower()}_good.py", code)
        assert report.parse_failures == []
        assert report.findings == []

    @pytest.mark.parametrize("code", ALL_CODES)
    def test_good_fixture_clean_under_all_checkers(self, code):
        report = analyze_paths([FIXTURES / f"{code.lower()}_good.py"])
        assert report.findings == []

    def test_inline_suppression_counts_not_fails(self):
        report = _lint("rep005_good.py", "REP005")
        assert report.findings == []
        assert report.suppressed == 1  # the justified best-effort close


class TestCheckerDetails:
    def test_rep001_closure_not_excused_by_outer_with(self):
        # The second planted violation reads the attribute from a nested
        # closure while the *outer* function holds the lock — the checker
        # must still flag it (the closure runs later, lock long released).
        report = _lint("rep001_bad.py", "REP001")
        source = (FIXTURES / "rep001_bad.py").read_text().splitlines()
        flagged = {source[f.line - 1].strip() for f in report.findings}
        assert "return self._hits  # closure: outer `with` would not save it" in flagged

    def test_rep003_inert_without_marker(self, tmp_path):
        unmarked = tmp_path / "unmarked.py"
        unmarked.write_text(
            "import numpy as np\nindices = np.arange(10)\n"
        )
        report = analyze_paths([unmarked], select=["REP003"])
        assert report.findings == []

    def test_rep006_names_the_missing_op(self):
        report = _lint("rep006_bad.py", "REP006")
        assert any("frobnicate" in f.message for f in report.findings)

    def test_gate_tripwire_fixture_really_trips(self):
        report = analyze_paths([FIXTURES / "gate_tripwire.py"])
        assert report.exit_code == 1
        assert any(f.code == "REP005" for f in report.findings)
