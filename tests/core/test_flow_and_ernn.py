"""End-to-end compression flow and the two-phase framework driver."""

import numpy as np
import pytest

from repro.asr.pipeline import TrainConfig
from repro.runtime import evaluate_per
from repro.config import RNNSpec
from repro.core.admm import ADMMConfig
from repro.core.ernn import ERNNFramework
from repro.core.flow import ernn_compress
from repro.core.phase1 import PhaseIConfig
from repro.core.phase2 import PhaseIIConfig
from repro.errors import ConfigError


class TestErnnCompress:
    def test_produces_structured_model(self, trained_dense, micro_datasets):
        train, test = micro_datasets
        target = trained_dense.spec.with_block_sizes((4,))
        result = ernn_compress(
            trained_dense,
            target,
            train,
            admm_train=TrainConfig(epochs=2, learning_rate=2e-3),
            retrain=TrainConfig(epochs=2, learning_rate=2e-3),
        )
        assert result.model.structured
        assert result.model.spec == target
        per = evaluate_per(result.model, test)
        assert 0.0 <= per <= 200.0
        assert len(result.admm_residuals) == 2

    def test_residuals_decrease(self, trained_dense, micro_datasets):
        train, _ = micro_datasets
        target = trained_dense.spec.with_block_sizes((4,))
        result = ernn_compress(
            trained_dense,
            target,
            train,
            admm_config=ADMMConfig(rho=0.2, rho_growth=1.3),
            admm_train=TrainConfig(epochs=4, learning_rate=2e-3),
            retrain=TrainConfig(epochs=1, learning_rate=1e-3),
        )
        assert result.admm_residuals[-1] < result.admm_residuals[0]

    def test_rejects_mismatched_architecture(self, trained_dense, micro_datasets):
        train, _ = micro_datasets
        other = RNNSpec("lstm", trained_dense.spec.input_size, (32,),
                        trained_dense.spec.output_size, block_sizes=(4,))
        with pytest.raises(ConfigError):
            ernn_compress(trained_dense, other, train)

    def test_rejects_dense_target(self, trained_dense, micro_datasets):
        train, _ = micro_datasets
        with pytest.raises(ConfigError):
            ernn_compress(trained_dense, trained_dense.spec, train)


class TestERNNFramework:
    def test_two_phase_optimization_with_oracle(self):
        baseline = RNNSpec(
            "lstm", 153, (1024, 1024), 39, peephole=True, projection_size=512
        )

        def oracle(spec: RNNSpec) -> float:
            import math

            per = 20.0
            for block in spec.effective_block_sizes:
                if block > 1:
                    per += 0.02 * math.log2(block)
            return per

        framework = ERNNFramework(
            baseline,
            oracle,
            phase1_config=PhaseIConfig(accuracy_budget=0.4),
            phase2_config=PhaseIIConfig(platform="XCKU060"),
        )
        result = framework.optimize(baseline_per=20.0)
        assert result.phase1.final_spec.is_block_circulant
        assert result.phase2.design.fps > 0
        assert result.phase1.num_training_trials <= 6
        assert "Phase I" in result.describe()
        assert "Phase II" in result.describe()
