"""ADMM trainer mechanics: penalty, dual updates, convergence, finalize."""

import numpy as np
import pytest

from repro.core.admm import ADMMConfig, ADMMTrainer
from repro.core.projection import circulant_distance, project_to_block_circulant
from repro.errors import TrainingError
from repro.nn.autograd import Tensor
from repro.nn.module import Parameter
from repro.nn.optim import Adam
from repro.nn.rnn import StructuredTarget


def make_target(rng, shape=(8, 8), block=4, name="w"):
    return StructuredTarget(
        name=name,
        parameter=Parameter(rng.standard_normal(shape)),
        block_size=block,
        role="recurrent",
    )


class TestConfig:
    def test_rejects_bad_rho(self):
        with pytest.raises(TrainingError):
            ADMMConfig(rho=0.0)
        with pytest.raises(TrainingError):
            ADMMConfig(rho_growth=0.5)

    def test_rho_overrides(self):
        config = ADMMConfig(rho=0.1, rho_overrides={"special": 0.5})
        assert config.rho_for("special") == 0.5
        assert config.rho_for("other") == 0.1


class TestTrainer:
    def test_requires_targets(self):
        with pytest.raises(TrainingError):
            ADMMTrainer([], ADMMConfig())

    def test_initial_aux_is_projection(self, rng):
        target = make_target(rng)
        trainer = ADMMTrainer([target], ADMMConfig())
        expected = project_to_block_circulant(target.parameter.data, 4)
        assert np.allclose(trainer.auxiliary("w"), expected)
        assert np.allclose(trainer.dual("w"), 0.0)

    def test_penalty_zero_when_weight_equals_anchor(self, rng):
        target = make_target(rng)
        trainer = ADMMTrainer([target], ADMMConfig())
        target.parameter.data = trainer.auxiliary("w").copy()
        assert trainer.penalty().item() == pytest.approx(0.0, abs=1e-12)

    def test_penalty_gradient_points_at_anchor(self, rng):
        target = make_target(rng)
        trainer = ADMMTrainer([target], ADMMConfig(rho=2.0))
        penalty = trainer.penalty()
        penalty.backward()
        anchor = trainer.auxiliary("w") - trainer.dual("w")
        expected = 2.0 * (target.parameter.data - anchor)
        assert np.allclose(target.parameter.grad, expected)

    def test_dual_update_reports_residuals(self, rng):
        target = make_target(rng)
        trainer = ADMMTrainer([target], ADMMConfig())
        residuals = trainer.dual_update()
        assert set(residuals) == {"w"}
        assert residuals["w"] > 0
        assert trainer.iteration == 1

    def test_converged_when_weight_circulant(self, rng):
        target = make_target(rng)
        target.parameter.data = project_to_block_circulant(
            target.parameter.data, 4
        )
        trainer = ADMMTrainer([target], ADMMConfig())
        trainer.dual_update()
        assert trainer.converged()

    def test_finalize_makes_weights_exactly_circulant(self, rng):
        target = make_target(rng)
        trainer = ADMMTrainer([target], ADMMConfig())
        trainer.finalize()
        assert circulant_distance(target.parameter.data, 4) < 1e-12

    def test_rho_growth_scales_penalty(self, rng):
        target = make_target(rng)
        trainer = ADMMTrainer([target], ADMMConfig(rho=1.0, rho_growth=2.0))
        before = trainer.penalty().item()
        trainer.dual_update()
        # Force the same anchor distance by restoring W and state.
        trainer._aux["w"] = project_to_block_circulant(target.parameter.data, 4)
        trainer._dual["w"] = np.zeros_like(target.parameter.data)
        after = trainer.penalty().item()
        assert after == pytest.approx(2.0 * before)


class TestConvergenceOnQuadratic:
    def test_admm_drives_weight_to_circulant_under_optimization(self, rng):
        """Full ADMM loop on a convex least-squares task converges exactly.

        The constraint set is a linear subspace and the loss is strongly
        convex, so textbook ADMM theory applies: with accurate inner solves
        (plain SGD here), the weight converges to the Euclidean projection of
        the unconstrained optimum.
        """
        from repro.nn.optim import SGD

        task_target = rng.standard_normal((8, 8))
        param = Parameter(rng.standard_normal((8, 8)))
        target = StructuredTarget("w", param, 4, "recurrent")
        trainer = ADMMTrainer([target], ADMMConfig(rho=1.0))
        optimizer = SGD([param], lr=0.3)
        for _ in range(60):
            for _ in range(20):
                optimizer.zero_grad()
                diff = param - Tensor(task_target)
                loss = (diff * diff).sum() * 0.5 + trainer.penalty()
                loss.backward()
                optimizer.step()
            trainer.dual_update()
        assert trainer.residuals()["w"] < 1e-8
        assert trainer.converged()
        projected_target = project_to_block_circulant(task_target, 4)
        assert np.linalg.norm(param.data - projected_target) < 1e-8
