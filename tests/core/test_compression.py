"""Compression accounting must reproduce the paper's Table III numbers."""

import pytest

from repro.config import RNNSpec
from repro.core.compression import (
    PAPER_INPUT_DIM,
    compression_ratio,
    ese_effective_compression,
    layer_matrix_params,
    matrix_inventory,
    total_matrix_params,
)


def lstm_spec(block=8):
    return RNNSpec(
        "lstm", PAPER_INPUT_DIM, (1024,), 39,
        block_sizes=(block,) if block > 1 else (),
        peephole=True, projection_size=512,
    )


def gru_spec(block=8):
    return RNNSpec("gru", PAPER_INPUT_DIM, (1024,), 39, block_sizes=(block,))


class TestPaperNumbers:
    """Table III row 2: '#Params of top layer'."""

    def test_lstm_dense_params(self):
        dense_m = layer_matrix_params(lstm_spec(1), compressed=False) / 1e6
        assert dense_m == pytest.approx(3.25, abs=0.01)

    def test_lstm_fft8_params(self):
        assert layer_matrix_params(lstm_spec(8)) / 1e6 == pytest.approx(0.41, abs=0.005)

    def test_lstm_fft16_params(self):
        assert layer_matrix_params(lstm_spec(16)) / 1e6 == pytest.approx(0.20, abs=0.005)

    def test_gru_fft8_params(self):
        assert layer_matrix_params(gru_spec(8)) / 1e6 == pytest.approx(0.45, abs=0.005)

    def test_gru_fft16_params(self):
        assert layer_matrix_params(gru_spec(16)) / 1e6 == pytest.approx(0.23, abs=0.005)

    def test_ese_effective_compression_is_4_5(self):
        assert ese_effective_compression() == pytest.approx(4.5)

    def test_ese_params_via_compression(self):
        dense = layer_matrix_params(lstm_spec(1), compressed=False)
        assert dense / ese_effective_compression() / 1e6 == pytest.approx(
            0.73, abs=0.01
        )

    def test_compression_ratios(self):
        assert compression_ratio(lstm_spec(8)) == pytest.approx(8.0, abs=0.05)
        assert compression_ratio(lstm_spec(16)) == pytest.approx(15.9, abs=0.15)


class TestInventory:
    def test_lstm_matrices(self):
        names = {s.name for s in matrix_inventory(lstm_spec(8))}
        assert names == {"cell0.w_x", "cell0.w_r", "cell0.w_ym"}

    def test_lstm_without_projection_has_no_wym(self):
        spec = RNNSpec("lstm", 16, (32,), 5, block_sizes=(4,))
        names = {s.name for s in matrix_inventory(spec)}
        assert names == {"cell0.w_x", "cell0.w_r"}

    def test_gru_matrices(self):
        names = {s.name for s in matrix_inventory(gru_spec(8))}
        assert names == {
            "cell0.w_zr_x", "cell0.w_zr_c", "cell0.w_cx", "cell0.w_cc",
        }

    def test_io_block_override(self):
        spec = RNNSpec(
            "lstm", 16, (32,), 5, block_sizes=(4,), io_block_size=8
        )
        blocks = {s.name: s.block_size for s in matrix_inventory(spec)}
        assert blocks["cell0.w_x"] == 8
        assert blocks["cell0.w_r"] == 4

    def test_multi_layer_input_chaining(self):
        spec = RNNSpec("lstm", 16, (32, 32), 5, projection_size=8)
        shapes = {s.name: (s.rows, s.cols) for s in matrix_inventory(spec)}
        assert shapes["cell0.w_x"] == (128, 16)
        assert shapes["cell1.w_x"] == (128, 8)  # fed by layer-0 projection

    def test_classifier_optional(self):
        spec = RNNSpec("gru", 16, (32,), 5)
        with_head = matrix_inventory(spec, include_classifier=True)
        assert any(s.name == "classifier" for s in with_head)

    def test_compressed_params_padding_mode(self):
        from repro.core.compression import MatrixShape

        shape = MatrixShape("m", 10, 10, 4, "input", 0)
        assert shape.compressed_params(pad=False) == 25
        assert shape.compressed_params(pad=True) == 3 * 3 * 4

    def test_total_params_sums_layers(self):
        spec = RNNSpec("gru", 16, (32, 32), 5, block_sizes=(4, 4))
        total = total_matrix_params(spec, compressed=False)
        per_layer = [
            layer_matrix_params(spec, i, compressed=False) for i in (0, 1)
        ]
        assert total == sum(per_layer)
