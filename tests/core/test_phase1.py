"""Phase-I optimizer against synthetic accuracy oracles (no real training)."""

import pytest

from repro.config import RNNSpec
from repro.core.phase1 import PhaseIConfig, PhaseIOptimizer
from repro.errors import ConfigError, FitError


def paper_baseline():
    """The paper-scale dense LSTM (two 1024 layers, projection 512)."""
    return RNNSpec(
        "lstm", 153, (1024, 1024), 39, peephole=True, projection_size=512
    )


def oracle(block_penalty=0.05, gru_penalty=0.0, io_penalty=0.02, base=20.0):
    """PER oracle: degradation grows log2-linearly with block size."""
    import math

    def train(spec: RNNSpec) -> float:
        per = base
        for block in spec.effective_block_sizes:
            if block > 1:
                per += block_penalty * math.log2(block)
        if spec.cell_type == "gru":
            per += gru_penalty
        if spec.io_block_size is not None:
            per += io_penalty * math.log2(spec.io_block_size)
        return per

    return train


class TestValidation:
    def test_rejects_circulant_baseline(self):
        spec = paper_baseline().with_block_sizes((8, 8))
        with pytest.raises(ConfigError):
            PhaseIOptimizer(spec, oracle())

    def test_rejects_gru_baseline(self):
        with pytest.raises(ConfigError):
            PhaseIOptimizer(
                RNNSpec("gru", 153, (1024,), 39), oracle()
            )


class TestPaperScaleRun:
    def test_bounds_match_paper(self):
        """Step One: KU060 lower bound 8; Sec. V upper bound 32-64."""
        result = PhaseIOptimizer(
            paper_baseline(), oracle(), PhaseIConfig(accuracy_budget=0.4)
        ).run(baseline_per=20.0)
        assert result.lower_bound == 8
        assert result.upper_bound in (32, 64)

    def test_trial_count_is_small(self):
        """The paper's headline: about five trials, not a full grid."""
        result = PhaseIOptimizer(
            paper_baseline(), oracle(), PhaseIConfig(accuracy_budget=0.4)
        ).run(baseline_per=20.0)
        assert result.num_training_trials <= 6

    def test_picks_upper_bound_when_feasible(self):
        # 2 layers x 0.02 x log2(64) = 0.24 <= 0.25: the upper bound itself
        # satisfies the budget, so the sweep stops after one trial.
        result = PhaseIOptimizer(
            paper_baseline(),
            oracle(block_penalty=0.02),
            PhaseIConfig(accuracy_budget=0.25, try_gru=False, try_io_block=False),
        ).run(baseline_per=20.0)
        assert result.final_spec.effective_block_sizes[0] == result.upper_bound
        assert [t.step for t in result.trials] == ["block-sweep"]

    def test_walks_down_when_upper_bound_fails(self):
        result = PhaseIOptimizer(
            paper_baseline(),
            oracle(block_penalty=0.05),
            PhaseIConfig(accuracy_budget=0.41, try_gru=False, try_io_block=False),
        ).run(baseline_per=20.0)
        # 2 * 0.05 * log2(b) <= 0.41 -> b <= 16.
        assert result.final_spec.effective_block_sizes[0] == 16
        steps = [t.step for t in result.trials]
        assert steps.count("block-sweep") >= 2

    def test_gru_switch_kept_when_free(self):
        result = PhaseIOptimizer(
            paper_baseline(),
            oracle(gru_penalty=0.0),
            PhaseIConfig(accuracy_budget=0.5, try_io_block=False),
        ).run(baseline_per=20.0)
        assert result.final_spec.cell_type == "gru"
        assert result.final_spec.peephole is False
        assert result.final_spec.projection_size is None

    def test_gru_switch_rejected_when_costly(self):
        result = PhaseIOptimizer(
            paper_baseline(),
            oracle(gru_penalty=5.0, block_penalty=0.01),
            PhaseIConfig(accuracy_budget=0.5, try_io_block=False),
        ).run(baseline_per=20.0)
        assert result.final_spec.cell_type == "lstm"

    def test_io_fine_tune_applied_when_affordable(self):
        result = PhaseIOptimizer(
            paper_baseline(),
            oracle(block_penalty=0.01, io_penalty=0.0),
            PhaseIConfig(accuracy_budget=0.5, try_gru=False),
        ).run(baseline_per=20.0)
        chosen = result.final_spec
        assert chosen.io_block_size == 2 * chosen.effective_block_sizes[0]

    def test_infeasible_budget_raises(self):
        with pytest.raises(FitError):
            PhaseIOptimizer(
                paper_baseline(),
                oracle(block_penalty=10.0),
                PhaseIConfig(accuracy_budget=0.01),
            ).run(baseline_per=20.0)

    def test_baseline_trained_when_per_unknown(self):
        result = PhaseIOptimizer(
            paper_baseline(), oracle(), PhaseIConfig(accuracy_budget=0.5)
        ).run()
        assert result.trials[0].step == "baseline"
        assert result.baseline_per == pytest.approx(20.0)

    def test_describe_mentions_trials(self):
        result = PhaseIOptimizer(
            paper_baseline(), oracle(), PhaseIConfig(accuracy_budget=0.5)
        ).run(baseline_per=20.0)
        text = result.describe()
        assert "training trials" in text
        assert "block-sweep" in text
