"""BlockCirculantMatrix value semantics and products."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.block_matrix import BlockCirculantMatrix
from repro.errors import BlockSizeError, ShapeError


class TestBasics:
    def test_shape_and_grid(self, rng):
        matrix = BlockCirculantMatrix(rng.standard_normal((3, 2, 4)))
        assert matrix.shape == (12, 8)
        assert matrix.block_grid == (3, 2)
        assert matrix.block_size == 4

    def test_param_accounting(self, rng):
        matrix = BlockCirculantMatrix(rng.standard_normal((2, 2, 8)))
        assert matrix.num_parameters == 32
        assert matrix.dense_parameters == 256
        assert matrix.compression_ratio == pytest.approx(8.0)

    def test_rejects_bad_shapes(self, rng):
        with pytest.raises(ShapeError):
            BlockCirculantMatrix(rng.standard_normal((2, 4)))
        with pytest.raises(BlockSizeError):
            BlockCirculantMatrix(rng.standard_normal((2, 2, 3)))

    def test_from_dense_round_trip(self, rng):
        original = BlockCirculantMatrix(rng.standard_normal((2, 3, 4)))
        rebuilt = BlockCirculantMatrix.from_dense(original.to_dense(), 4)
        assert np.allclose(rebuilt.vectors, original.vectors)


class TestProducts:
    @settings(max_examples=20, deadline=None)
    @given(
        p=st.integers(1, 3),
        q=st.integers(1, 3),
        log_block=st.integers(0, 3),
        seed=st.integers(0, 10_000),
    )
    def test_property_matvec_equals_dense(self, p, q, log_block, seed):
        block = 2**log_block
        local = np.random.default_rng(seed)
        matrix = BlockCirculantMatrix(local.standard_normal((p, q, block)))
        x = local.standard_normal(q * block)
        assert np.allclose(matrix.matvec(x), matrix.matvec_direct(x), atol=1e-9)

    def test_batched_matvec(self, rng):
        matrix = BlockCirculantMatrix(rng.standard_normal((2, 2, 4)))
        x = rng.standard_normal((3, 5, 8))
        out = matrix.matvec(x)
        assert out.shape == (3, 5, 8)
        assert np.allclose(out, matrix.matvec_direct(x))

    def test_matvec_shape_check(self, rng):
        matrix = BlockCirculantMatrix(rng.standard_normal((2, 2, 4)))
        with pytest.raises(ShapeError):
            matrix.matvec(np.zeros(7))

    def test_transpose_matches_dense_transpose(self, rng):
        matrix = BlockCirculantMatrix(rng.standard_normal((2, 3, 4)))
        assert np.allclose(matrix.transpose().to_dense(), matrix.to_dense().T)

    def test_frobenius_norm_without_materializing(self, rng):
        matrix = BlockCirculantMatrix(rng.standard_normal((3, 2, 8)))
        assert matrix.frobenius_norm() == pytest.approx(
            np.linalg.norm(matrix.to_dense())
        )
