"""Speculative Phase-I block-sweep trials: identical result, parallel walk."""

import math
import threading

from repro.config import RNNSpec
from repro.core.phase1 import PhaseIConfig, PhaseIOptimizer


def paper_baseline():
    return RNNSpec(
        "lstm", 153, (1024, 1024), 39, peephole=True, projection_size=512
    )


def oracle(block_penalty=0.05, record=None):
    def train(spec: RNNSpec) -> float:
        if record is not None:
            record.append(threading.current_thread().name)
        per = 20.0
        for block in spec.effective_block_sizes:
            if block > 1:
                per += block_penalty * math.log2(block)
        if spec.io_block_size is not None:
            per += 0.02 * math.log2(spec.io_block_size)
        return per

    return train


def run(config: PhaseIConfig, trainer):
    return PhaseIOptimizer(paper_baseline(), trainer, config).run(
        baseline_per=20.0
    )


class TestSpeculativeTrials:
    def test_result_identical_to_serial(self):
        serial = run(PhaseIConfig(accuracy_budget=0.4), oracle())
        parallel = run(
            PhaseIConfig(accuracy_budget=0.4, speculative_workers=4), oracle()
        )
        assert parallel.final_spec == serial.final_spec
        assert parallel.final_per == serial.final_per
        assert parallel.trials == serial.trials  # the log bytes, not just len

    def test_result_identical_when_walk_goes_deep(self):
        """A tight budget forces several walk-down steps."""
        serial = run(
            PhaseIConfig(accuracy_budget=0.25), oracle(block_penalty=0.04)
        )
        parallel = run(
            PhaseIConfig(accuracy_budget=0.25, speculative_workers=8),
            oracle(block_penalty=0.04),
        )
        assert parallel.trials == serial.trials
        assert parallel.final_spec == serial.final_spec

    def test_trainer_runs_in_pool(self):
        record: list[str] = []
        run(
            PhaseIConfig(accuracy_budget=0.4, speculative_workers=4),
            oracle(record=record),
        )
        assert any("ThreadPool" in name for name in record)

    def test_workers_one_stays_serial(self):
        record: list[str] = []
        run(
            PhaseIConfig(accuracy_budget=0.4, speculative_workers=1),
            oracle(record=record),
        )
        assert all("ThreadPool" not in name for name in record)

    def test_invalid_workers_rejected(self):
        import pytest

        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            PhaseIConfig(speculative_workers=0)
