"""The shared executor helper: ordering, modes, and error propagation."""

import threading
import time

import pytest

from repro.core.parallel import EXECUTION_MODES, map_ordered, resolve_workers
from repro.errors import ConfigError


class TestMapOrdered:
    def test_serial_order(self):
        assert map_ordered(lambda v: v * 2, range(5)) == [0, 2, 4, 6, 8]

    def test_thread_results_match_serial(self):
        jobs = list(range(20))

        def work(v):
            time.sleep(0.001 * (20 - v))  # later jobs finish first
            return v * v

        serial = map_ordered(work, jobs, mode="serial")
        threaded = map_ordered(work, jobs, mode="thread", workers=8)
        assert threaded == serial

    def test_thread_actually_uses_pool(self):
        seen = set()

        def work(_):
            seen.add(threading.current_thread().name)
            time.sleep(0.005)

        map_ordered(work, range(8), mode="thread", workers=4)
        assert len(seen) > 1

    def test_single_job_skips_pool(self):
        main = threading.current_thread().name
        names = map_ordered(
            lambda _: threading.current_thread().name, [0], mode="thread"
        )
        assert names == [main]

    def test_exceptions_propagate(self):
        def boom(v):
            if v == 3:
                raise ValueError("job 3")
            return v

        with pytest.raises(ValueError, match="job 3"):
            map_ordered(boom, range(6), mode="thread", workers=2)
        with pytest.raises(ValueError, match="job 3"):
            map_ordered(boom, range(6), mode="serial")

    def test_bad_mode(self):
        with pytest.raises(ConfigError):
            map_ordered(lambda v: v, [1, 2], mode="fork")

    def test_modes_constant(self):
        assert EXECUTION_MODES == ("serial", "thread", "process")


class TestResolveWorkers:
    def test_explicit_wins(self):
        assert resolve_workers(7, jobs=2) == 7

    def test_defaults_to_min(self):
        assert resolve_workers(None, jobs=2, default=4) == 2
        assert resolve_workers(None, jobs=100, default=4) == 4

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            resolve_workers(0, jobs=3)
