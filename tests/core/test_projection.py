"""Euclidean projection onto the block-circulant set (Eqn. 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circulant import circulant_from_first_column, is_circulant
from repro.core.projection import (
    circulant_distance,
    project_block_to_circulant_vector,
    project_to_block_circulant,
    project_to_block_circulant_vectors,
)
from repro.errors import ShapeError


class TestSingleBlock:
    def test_paper_fig5_example(self):
        """Fig. 5: diagonal (0.5, -0.3, 0.1) averages to 0.1."""
        block = np.array([[0.5, 0.4], [0.7, -0.3]])
        vector = project_block_to_circulant_vector(block)
        # Main diagonal mean: (0.5 + (-0.3)) / 2 = 0.1
        assert vector[0] == pytest.approx(0.1)
        # Off diagonal mean: (0.7 + 0.4) / 2 = 0.55
        assert vector[1] == pytest.approx(0.55)

    def test_circulant_input_is_fixed_point(self, rng):
        w = rng.standard_normal(8)
        block = circulant_from_first_column(w)
        assert np.allclose(project_block_to_circulant_vector(block), w)

    def test_rejects_non_square(self, rng):
        with pytest.raises(ShapeError):
            project_block_to_circulant_vector(rng.standard_normal((2, 3)))


class TestBlockwiseProjection:
    def test_output_is_block_circulant(self, rng):
        matrix = rng.standard_normal((8, 12))
        projected = project_to_block_circulant(matrix, 4)
        for i in range(2):
            for j in range(3):
                block = projected[4 * i : 4 * i + 4, 4 * j : 4 * j + 4]
                assert is_circulant(block)

    def test_idempotent(self, rng):
        matrix = rng.standard_normal((8, 8))
        once = project_to_block_circulant(matrix, 4)
        twice = project_to_block_circulant(once, 4)
        assert np.allclose(once, twice)

    def test_block_size_one_is_identity(self, rng):
        matrix = rng.standard_normal((3, 5))
        assert np.allclose(project_to_block_circulant(matrix, 1), matrix)

    def test_shape_preserved_with_padding(self, rng):
        matrix = rng.standard_normal((6, 10))
        assert project_to_block_circulant(matrix, 4).shape == (6, 10)

    def test_vectors_shape(self, rng):
        vectors = project_to_block_circulant_vectors(
            rng.standard_normal((8, 12)), 4
        )
        assert vectors.shape == (2, 3, 4)

    @settings(max_examples=25, deadline=None)
    @given(
        log_block=st.integers(0, 3),
        p=st.integers(1, 3),
        q=st.integers(1, 3),
        seed=st.integers(0, 10_000),
    )
    def test_property_projection_is_optimal(self, log_block, p, q, seed):
        """No circulant matrix is closer than the projection (Eqn. 6 claim).

        Verified against random perturbations of the projected defining
        vectors — every perturbation must increase the Frobenius distance.
        """
        block = 2**log_block
        local = np.random.default_rng(seed)
        matrix = local.standard_normal((p * block, q * block))
        projected = project_to_block_circulant(matrix, block)
        best = np.linalg.norm(matrix - projected)
        vectors = project_to_block_circulant_vectors(matrix, block)
        for _ in range(5):
            noisy = vectors + 0.1 * local.standard_normal(vectors.shape)
            candidate = np.zeros_like(matrix)
            for i in range(p):
                for j in range(q):
                    candidate[
                        block * i : block * (i + 1), block * j : block * (j + 1)
                    ] = circulant_from_first_column(noisy[i, j])
            assert np.linalg.norm(matrix - candidate) >= best - 1e-12

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_projection_non_expansive(self, seed):
        """Projections onto convex sets shrink distances."""
        local = np.random.default_rng(seed)
        a = local.standard_normal((8, 8))
        b = local.standard_normal((8, 8))
        pa = project_to_block_circulant(a, 4)
        pb = project_to_block_circulant(b, 4)
        assert np.linalg.norm(pa - pb) <= np.linalg.norm(a - b) + 1e-12


class TestDistance:
    def test_zero_for_circulant(self, rng):
        w = rng.standard_normal(4)
        matrix = circulant_from_first_column(w)
        assert circulant_distance(matrix, 4) == pytest.approx(0.0, abs=1e-12)

    def test_positive_for_general(self, rng):
        assert circulant_distance(rng.standard_normal((8, 8)), 4) > 0.1
