"""Circulant algebra: conventions, FFT identity, transposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circulant import (
    circulant_from_first_column,
    circulant_from_first_row,
    circulant_matvec,
    circulant_matvec_direct,
    is_circulant,
    reverse_index,
    transpose_vector,
)
from repro.errors import ShapeError

sizes = st.sampled_from([1, 2, 3, 4, 5, 8, 16])


class TestConstruction:
    def test_first_column_convention(self):
        matrix = circulant_from_first_column(np.array([1.0, 2.0, 3.0]))
        assert np.array_equal(matrix[:, 0], [1.0, 2.0, 3.0])
        assert np.array_equal(matrix[0], [1.0, 3.0, 2.0])

    def test_first_row_convention_matches_paper_fig4(self):
        """The paper's Fig. 4 example: each row rotates the previous right."""
        w = np.array([1.14, -0.69, 0.83, -2.26])
        matrix = circulant_from_first_row(w)
        assert np.allclose(matrix[0], w)
        assert np.allclose(matrix[1], [-2.26, 1.14, -0.69, 0.83])
        assert np.allclose(matrix[2], [0.83, -2.26, 1.14, -0.69])

    def test_conventions_related_by_reversal(self, rng):
        w = rng.standard_normal(6)
        assert np.allclose(
            circulant_from_first_row(w),
            circulant_from_first_column(reverse_index(w)),
        )

    def test_bad_inputs(self):
        with pytest.raises(ShapeError):
            circulant_from_first_column(np.zeros((2, 2)))
        with pytest.raises(ShapeError):
            circulant_from_first_column(np.array([]))


class TestMatvec:
    @settings(max_examples=30, deadline=None)
    @given(size=sizes, seed=st.integers(0, 10_000))
    def test_property_fft_identity(self, size, seed):
        """Eqn. (4): C(w) @ x == IFFT(FFT(w) ∘ FFT(x)) exactly."""
        local = np.random.default_rng(seed)
        w, x = local.standard_normal(size), local.standard_normal(size)
        assert np.allclose(
            circulant_matvec(w, x), circulant_matvec_direct(w, x), atol=1e-10
        )

    def test_batched_matvec(self, rng):
        w = rng.standard_normal(8)
        x = rng.standard_normal((5, 8))
        expected = x @ circulant_from_first_column(w).T
        assert np.allclose(circulant_matvec(w, x), expected)

    def test_length_mismatch(self, rng):
        with pytest.raises(ShapeError):
            circulant_matvec(rng.standard_normal(4), rng.standard_normal(5))

    @settings(max_examples=20, deadline=None)
    @given(size=sizes, seed=st.integers(0, 1000))
    def test_property_transpose_vector(self, size, seed):
        w = np.random.default_rng(seed).standard_normal(size)
        assert np.allclose(
            circulant_from_first_column(w).T,
            circulant_from_first_column(transpose_vector(w)),
        )


class TestIsCirculant:
    def test_accepts_circulant(self, rng):
        assert is_circulant(circulant_from_first_column(rng.standard_normal(5)))

    def test_rejects_general_matrix(self, rng):
        assert not is_circulant(rng.standard_normal((4, 4)))

    def test_rejects_rectangular(self, rng):
        assert not is_circulant(rng.standard_normal((3, 4)))

    def test_identity_is_circulant(self):
        assert is_circulant(np.eye(4))
