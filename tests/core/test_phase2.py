"""Phase-II optimizer: bit-width selection, PWL sizing, report assembly."""

import pytest

from repro.config import RNNSpec
from repro.core.phase2 import PhaseIIConfig, PhaseIIOptimizer, select_pwl_segments
from repro.errors import ConfigError


def circ_spec(block=8):
    return RNNSpec(
        "lstm", 153, (1024,), 39, block_sizes=(block,),
        peephole=True, projection_size=512,
    )


class TestValidation:
    def test_rejects_dense_spec(self):
        dense = RNNSpec("lstm", 153, (1024,), 39)
        with pytest.raises(ConfigError):
            PhaseIIOptimizer(dense)

    def test_quant_eval_requires_float_per(self):
        with pytest.raises(ConfigError):
            PhaseIIOptimizer(circ_spec(), quant_eval=lambda bits: 20.0)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            PhaseIIConfig(candidate_bits=())


class TestBitSelection:
    def test_default_is_12_bits(self):
        bits, curve = PhaseIIOptimizer(circ_spec()).select_bits()
        assert bits == 12
        assert curve is None

    def test_sweep_picks_smallest_feasible(self):
        def quant_eval(bits):
            return 20.0 + (0.05 if bits >= 10 else 3.0)

        optimizer = PhaseIIOptimizer(
            circ_spec(),
            PhaseIIConfig(candidate_bits=(16, 12, 10, 8)),
            quant_eval=quant_eval,
            float_per=20.0,
        )
        bits, curve = optimizer.select_bits()
        assert bits == 10
        assert curve[8] > curve[12]

    def test_sweep_raises_when_nothing_feasible(self):
        optimizer = PhaseIIOptimizer(
            circ_spec(),
            PhaseIIConfig(candidate_bits=(8,)),
            quant_eval=lambda bits: 30.0,
            float_per=20.0,
        )
        with pytest.raises(ConfigError):
            optimizer.select_bits()


class TestPWLSelection:
    def test_tighter_budget_needs_more_segments(self):
        loose = select_pwl_segments(1e-2)
        tight = select_pwl_segments(1e-4)
        assert tight > loose

    def test_budget_is_met(self):
        import numpy as np

        from repro.hw.activation import pwl_sigmoid, pwl_tanh

        segments = select_pwl_segments(1e-3)
        sigmoid_ref = lambda x: 1.0 / (1.0 + np.exp(-x))  # noqa: E731
        assert pwl_sigmoid(segments).max_error(sigmoid_ref) <= 1e-3
        assert pwl_tanh(segments).max_error(np.tanh) <= 1e-3


class TestRun:
    def test_full_run_produces_report(self):
        result = PhaseIIOptimizer(
            circ_spec(), PhaseIIConfig(platform="XCKU060")
        ).run()
        report = result.report
        assert report.quant_bits == 12
        assert report.latency_us > 0
        assert report.fps > 0
        assert 0 < report.utilization["dsp"] <= 1.0
        assert report.compression_ratio == pytest.approx(8.0, abs=0.05)
        assert "E-RNN FFT8" in report.label

    def test_fft16_faster_than_fft8(self):
        fft8 = PhaseIIOptimizer(circ_spec(8)).run()
        fft16 = PhaseIIOptimizer(circ_spec(16)).run()
        assert fft16.design.latency_us < fft8.design.latency_us

    def test_describe_smoke(self):
        text = PhaseIIOptimizer(circ_spec()).run().describe()
        assert "PEs" in text and "FPS" in text
