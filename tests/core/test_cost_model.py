"""Fig. 8 cost model: reduction techniques and the convergence bound."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_model import (
    decoupling_counts,
    elementwise_real_mults,
    fft_complex_mults,
    fig8_curve,
    layer_multiplications,
    normalized_multiplications,
    recommended_block_upper_bound,
)
from repro.errors import BlockSizeError

log_blocks = st.integers(1, 8)


class TestFFTCounts:
    def test_tiny_ffts_are_multiplier_free(self):
        assert fft_complex_mults(2) == 0.0
        assert fft_complex_mults(4) == 0.0  # stages 1-2 only, trivial twiddles

    def test_stage3_half_nontrivial(self):
        """Paper: 'only half of butterfly units in the third level'."""
        # For L=8: stage 3 alone, L/2 - 2L/8 = 4 - 2 = 2 of 4 butterflies.
        assert fft_complex_mults(8, halve_boundary_stage=False) == 2.0

    def test_without_twiddle_savings_counts_all_stages(self):
        full = fft_complex_mults(16, twiddle_savings=False,
                                 halve_boundary_stage=False)
        assert full == 4 * 8  # log2(16) stages x L/2 butterflies

    def test_savings_reduce_count(self):
        assert fft_complex_mults(64) < fft_complex_mults(
            64, twiddle_savings=False
        )


class TestElementwise:
    def test_block2_both_bins_real(self):
        """Size-2 real FFT is real-valued -> 2 real mults, not 8."""
        assert elementwise_real_mults(2) == 2.0

    def test_hermitian_structure(self):
        # 2 real bins + (L/2 - 1) complex bins x 4 = 2L - 2.
        for block in (4, 8, 16, 64):
            assert elementwise_real_mults(block) == 2 * block - 2

    def test_without_symmetry(self):
        assert elementwise_real_mults(8, real_symmetry=False) == 32


class TestLayerModel:
    def test_dense_baseline(self):
        breakdown = layer_multiplications(64, 64, 1)
        assert breakdown.total == 64 * 64
        assert breakdown.fft_mults == 0

    def test_block_must_divide(self):
        with pytest.raises(BlockSizeError):
            layer_multiplications(60, 64, 8)

    def test_decoupling_reduces_fft_work(self):
        with_d = layer_multiplications(512, 512, 16, decoupling=True)
        without = layer_multiplications(512, 512, 16, decoupling=False)
        assert with_d.fft_mults < without.fft_mults
        assert with_d.elementwise_mults == without.elementwise_mults

    def test_decoupling_counts_fig7(self):
        """Fig. 7: FFTs p·q -> q, IFFTs p·q -> p."""
        assert decoupling_counts(3, 7) == (7, 3)

    @settings(max_examples=20, deadline=None)
    @given(log_block=st.integers(1, 6))
    def test_property_compression_reduces_mults(self, log_block):
        block = 2**log_block
        assert normalized_multiplications(512, block) < 1.0


class TestFig8Claims:
    def test_starts_at_half_for_block2(self):
        """Paper Fig. 8: the curve starts at ~0.5 for block size 2."""
        for layer in (512, 1024):
            assert normalized_multiplications(layer, 2) == pytest.approx(0.5)

    def test_monotone_decrease_up_to_convergence(self):
        curve = fig8_curve(1024)
        blocks = sorted(curve)
        for a, b in zip(blocks, blocks[1:]):
            assert curve[b] <= curve[a] + 1e-9

    def test_upper_bound_is_32_or_64(self):
        """Sec. V-B: 'we can set a upper bound of 64 (or 32) of block size'."""
        assert recommended_block_upper_bound(512) in (32, 64)
        assert recommended_block_upper_bound(1024) in (32, 64)

    def test_upper_bound_respects_layer_divisibility(self):
        bound = recommended_block_upper_bound(48)
        assert 48 % bound == 0

    def test_curve_values_match_model(self):
        curve = fig8_curve(512, (2, 8))
        assert curve[2] == normalized_multiplications(512, 2)
        assert curve[8] == normalized_multiplications(512, 8)
