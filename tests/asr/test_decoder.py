"""Framewise decoder: smoothing, collapsing, silence handling."""

import numpy as np
import pytest

from repro.asr.decoder import FrameDecoder, collapse_repeats, decode_frames, median_smooth
from repro.asr.phones import SILENCE, PhoneSet
from repro.errors import DecodingError


@pytest.fixture
def phones():
    return PhoneSet.folded().subset(5)


class TestCollapse:
    def test_collapses_runs(self):
        assert collapse_repeats([1, 1, 2, 2, 2, 1]) == [1, 2, 1]

    def test_empty(self):
        assert collapse_repeats([]) == []

    def test_single(self):
        assert collapse_repeats([3]) == [3]


class TestMedianSmooth:
    def test_removes_single_frame_blips(self):
        labels = np.array([1, 1, 2, 1, 1])
        assert np.array_equal(median_smooth(labels, 3), [1, 1, 1, 1, 1])

    def test_keeps_real_transitions(self):
        labels = np.array([1, 1, 1, 2, 2, 2])
        assert np.array_equal(median_smooth(labels, 3), labels)

    def test_width_one_is_identity(self):
        labels = np.array([1, 2, 3])
        assert np.array_equal(median_smooth(labels, 1), labels)

    def test_rejects_even_width(self):
        with pytest.raises(DecodingError):
            median_smooth(np.array([1, 2]), 2)


class TestDecodeFrames:
    def test_basic_decode(self, phones):
        sil = phones.silence_index
        labels = np.array([sil] * 4 + [0] * 6 + [1] * 6 + [sil] * 4)
        decoded = decode_frames(labels, phones)
        assert decoded == [phones.label(0), phones.label(1)]

    def test_silence_kept_when_requested(self, phones):
        sil = phones.silence_index
        labels = np.array([sil] * 4 + [0] * 6 + [sil] * 4)
        decoded = decode_frames(labels, phones, remove_silence=False)
        assert decoded == [SILENCE, phones.label(0), SILENCE]

    def test_rejects_2d(self, phones):
        with pytest.raises(DecodingError):
            decode_frames(np.zeros((2, 3), dtype=int), phones)


class TestFrameDecoder:
    def test_decode_utterance_from_logits(self, phones):
        logits = np.full((12, len(phones)), -10.0)
        logits[:6, 0] = 10.0
        logits[6:, 2] = 10.0
        decoder = FrameDecoder(phones, smooth_width=1)
        assert decoder.decode_utterance(logits) == [
            phones.label(0), phones.label(2),
        ]

    def test_length_truncation(self, phones):
        logits = np.full((10, len(phones)), -10.0)
        logits[:, 1] = 10.0
        logits[8:, 3] = 20.0
        decoder = FrameDecoder(phones, smooth_width=1)
        assert decoder.decode_utterance(logits, length=8) == [phones.label(1)]

    def test_decode_batch_shapes(self, phones):
        decoder = FrameDecoder(phones, smooth_width=1)
        logits = np.zeros((6, 2, len(phones)))
        out = decoder.decode_batch(logits, (6, 3))
        assert len(out) == 2
        with pytest.raises(DecodingError):
            decoder.decode_batch(logits, (6,))

    def test_reference_strips_silence(self, phones):
        decoder = FrameDecoder(phones)
        ref = decoder.reference([SILENCE, "aa", SILENCE])
        assert ref == ["aa"]

    def test_rejects_bad_logit_shapes(self, phones):
        decoder = FrameDecoder(phones)
        with pytest.raises(DecodingError):
            decoder.decode_utterance(np.zeros(5))
