"""Phone inventories and the 61->39 folding."""

import pytest

from repro.asr.phones import (
    FOLD_61_TO_39,
    PHONES_39,
    PHONES_61,
    SILENCE,
    PhoneSet,
    fold_phone,
)
from repro.errors import ConfigError


class TestInventories:
    def test_sizes(self):
        assert len(PHONES_61) == 61
        assert len(PHONES_39) == 39

    def test_no_duplicates(self):
        assert len(set(PHONES_61)) == 61
        assert len(set(PHONES_39)) == 39

    def test_every_61_phone_folds_into_39(self):
        for phone in PHONES_61:
            assert fold_phone(phone) in PHONES_39

    def test_fold_map_targets_are_39(self):
        for target in FOLD_61_TO_39.values():
            assert target in PHONES_39

    def test_closures_fold_to_silence(self):
        for closure in ("bcl", "dcl", "gcl", "pcl", "tcl", "kcl", "h#", "pau"):
            assert fold_phone(closure) == SILENCE

    def test_classic_foldings(self):
        assert fold_phone("ao") == "aa"
        assert fold_phone("zh") == "sh"
        assert fold_phone("ix") == "ih"
        assert fold_phone("el") == "l"

    def test_identity_for_39_phones(self):
        assert fold_phone("aa") == "aa"

    def test_unknown_phone_rejected(self):
        with pytest.raises(ConfigError):
            fold_phone("xx")


class TestPhoneSet:
    def test_folded_set(self):
        phones = PhoneSet.folded()
        assert len(phones) == 39
        assert SILENCE in phones

    def test_encode_decode_round_trip(self):
        phones = PhoneSet.folded()
        sequence = ["aa", "b", SILENCE, "iy"]
        assert phones.decode(phones.encode(sequence)) == sequence

    def test_subset_keeps_silence(self):
        subset = PhoneSet.folded().subset(5)
        assert len(subset) == 5
        assert SILENCE in subset

    def test_subset_bounds(self):
        with pytest.raises(ConfigError):
            PhoneSet.folded().subset(1)
        with pytest.raises(ConfigError):
            PhoneSet.folded().subset(40)

    def test_requires_silence(self):
        with pytest.raises(ConfigError):
            PhoneSet(("aa", "b"))

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigError):
            PhoneSet(("aa", "aa", SILENCE))

    def test_index_label_inverse(self):
        phones = PhoneSet.folded()
        for i in range(len(phones)):
            assert phones.index(phones.label(i)) == i

    def test_unknown_lookups_rejected(self):
        phones = PhoneSet.folded()
        with pytest.raises(ConfigError):
            phones.index("nope")
        with pytest.raises(ConfigError):
            phones.label(99)
