"""Edit-distance metrics: exact values and metric axioms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asr.metrics import EditOps, corpus_error_rate, error_rate, levenshtein
from repro.errors import ShapeError

tokens = st.lists(st.sampled_from("abcd"), max_size=8)


class TestLevenshtein:
    def test_identity(self):
        ops = levenshtein(["a", "b"], ["a", "b"])
        assert ops.distance == 0
        assert ops.rate == 0.0

    def test_single_substitution(self):
        ops = levenshtein(["a", "b", "c"], ["a", "x", "c"])
        assert (ops.substitutions, ops.insertions, ops.deletions) == (1, 0, 0)

    def test_single_insertion(self):
        ops = levenshtein(["a", "c"], ["a", "b", "c"])
        assert (ops.substitutions, ops.insertions, ops.deletions) == (0, 1, 0)

    def test_single_deletion(self):
        ops = levenshtein(["a", "b", "c"], ["a", "c"])
        assert (ops.substitutions, ops.insertions, ops.deletions) == (0, 0, 1)

    def test_kitten_sitting(self):
        assert levenshtein("kitten", "sitting").distance == 3

    def test_empty_reference(self):
        ops = levenshtein([], ["a", "b"])
        assert ops.distance == 2
        assert ops.rate == 100.0

    def test_empty_both(self):
        ops = levenshtein([], [])
        assert ops.distance == 0
        assert ops.rate == 0.0

    @settings(max_examples=50, deadline=None)
    @given(a=tokens, b=tokens)
    def test_property_symmetry_of_distance(self, a, b):
        assert levenshtein(a, b).distance == levenshtein(b, a).distance

    @settings(max_examples=50, deadline=None)
    @given(a=tokens, b=tokens, c=tokens)
    def test_property_triangle_inequality(self, a, b, c):
        ab = levenshtein(a, b).distance
        bc = levenshtein(b, c).distance
        ac = levenshtein(a, c).distance
        assert ac <= ab + bc

    @settings(max_examples=50, deadline=None)
    @given(a=tokens, b=tokens)
    def test_property_ops_sum_to_distance(self, a, b):
        ops = levenshtein(a, b)
        assert ops.substitutions + ops.insertions + ops.deletions == ops.distance

    @settings(max_examples=50, deadline=None)
    @given(a=tokens, b=tokens)
    def test_property_length_difference_lower_bound(self, a, b):
        assert levenshtein(a, b).distance >= abs(len(a) - len(b))


class TestErrorRates:
    def test_error_rate_percent(self):
        assert error_rate(["a", "b"], ["a", "x"]) == pytest.approx(50.0)

    def test_corpus_rate_weights_by_length(self):
        references = [["a"] * 9, ["b"]]
        hypotheses = [["a"] * 9, ["x"]]
        # 1 error over 10 reference tokens = 10%, not mean(0%, 100%) = 50%.
        assert corpus_error_rate(references, hypotheses) == pytest.approx(10.0)

    def test_corpus_rate_validates_lengths(self):
        with pytest.raises(ShapeError):
            corpus_error_rate([["a"]], [])
        with pytest.raises(ShapeError):
            corpus_error_rate([], [])

    def test_edit_ops_rate_guard(self):
        assert EditOps(0, 0, 0, 0).rate == 0.0
        assert EditOps(1, 0, 0, 0).rate == 100.0
