"""Threaded PER evaluation returns exactly the serial corpus PER."""

import numpy as np

from repro.runtime import evaluate_per
from repro.config import RNNSpec
from repro.nn.rnn import StackedRNNClassifier


class TestParallelEvaluatePer:
    def test_workers_do_not_change_per(self, trained_dense, micro_datasets):
        _, test = micro_datasets
        serial = evaluate_per(trained_dense, test, batch_size=2)
        for workers in (2, 4):
            assert (
                evaluate_per(trained_dense, test, batch_size=2, workers=workers)
                == serial
            )

    def test_workers_one_is_serial(self, trained_dense, micro_datasets):
        _, test = micro_datasets
        assert evaluate_per(
            trained_dense, test, batch_size=2, workers=1
        ) == evaluate_per(trained_dense, test, batch_size=2)

    def test_untrained_structured_model(self, micro_datasets):
        """The emulator-adjacent path: structured weights, random init."""
        train, _ = micro_datasets
        spec = RNNSpec(
            "lstm", train.feature_dim, (16,), len(train.phone_set),
            block_sizes=(4,),
        )
        model = StackedRNNClassifier(
            spec, structured=True, rng=np.random.default_rng(0)
        )
        serial = evaluate_per(model, train, batch_size=4)
        threaded = evaluate_per(model, train, batch_size=4, workers=3)
        assert serial == threaded
