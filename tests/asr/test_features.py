"""Feature extraction front end."""

import numpy as np
import pytest

from repro.asr.features import (
    FeatureConfig,
    FeatureExtractor,
    frame_signal,
    mel_filterbank,
)
from repro.errors import ConfigError, ShapeError


class TestConfig:
    def test_defaults_give_paper_dim_with_51_filters(self):
        config = FeatureConfig(num_filters=51, add_deltas=True)
        assert config.feature_dim == 153  # the ESE workload's input size

    def test_frame_hop_lengths(self):
        config = FeatureConfig(sample_rate=16000)
        assert config.frame_length == 400
        assert config.hop_length == 160
        assert config.fft_size == 512

    def test_rejects_bad_hop(self):
        with pytest.raises(ConfigError):
            FeatureConfig(frame_ms=10.0, hop_ms=20.0)

    def test_rejects_bad_mel_range(self):
        with pytest.raises(ConfigError):
            FeatureConfig(low_freq=9000.0, sample_rate=16000)


class TestFraming:
    def test_frame_count(self):
        frames = frame_signal(np.zeros(1000), 400, 160)
        assert frames.shape == (4, 400)

    def test_short_signal_padded(self):
        frames = frame_signal(np.ones(100), 400, 160)
        assert frames.shape == (1, 400)
        assert frames[0, :100].sum() == 100

    def test_rejects_2d(self):
        with pytest.raises(ShapeError):
            frame_signal(np.zeros((10, 10)), 4, 2)

    def test_frames_overlap_correctly(self, rng):
        signal = rng.standard_normal(1000)
        frames = frame_signal(signal, 400, 160)
        assert np.array_equal(frames[1], signal[160:560])


class TestMelFilterbank:
    def test_shape(self):
        bank = mel_filterbank(13, 512, 16000)
        assert bank.shape == (13, 257)

    def test_filters_are_triangular_and_positive(self):
        bank = mel_filterbank(10, 512, 16000)
        assert np.all(bank >= 0)
        assert np.all(bank <= 1.0 + 1e-12)
        # Every filter must have support.
        assert np.all(bank.sum(axis=1) > 0)

    def test_center_frequencies_increase(self):
        bank = mel_filterbank(10, 512, 16000)
        centers = bank.argmax(axis=1)
        assert np.all(np.diff(centers) > 0)


class TestExtractor:
    def test_feature_shape(self, micro_corpus, micro_extractor):
        features = micro_extractor(micro_corpus.train[0].waveform)
        assert features.ndim == 2
        assert features.shape[1] == micro_extractor.config.feature_dim

    def test_normalization_statistics(self, micro_corpus, micro_extractor):
        stacked = np.concatenate(
            [micro_extractor(u.waveform) for u in micro_corpus.train]
        )
        assert np.abs(stacked.mean(axis=0)).max() < 0.2
        assert np.abs(stacked.std(axis=0) - 1.0).max() < 0.2

    def test_deltas_triple_dimension(self, micro_corpus):
        base = FeatureExtractor(
            FeatureConfig(sample_rate=8000, num_filters=8, add_deltas=False)
        )
        with_deltas = FeatureExtractor(
            FeatureConfig(sample_rate=8000, num_filters=8, add_deltas=True)
        )
        waveform = micro_corpus.train[0].waveform
        assert (
            with_deltas.raw_features(waveform).shape[1]
            == 3 * base.raw_features(waveform).shape[1]
        )

    def test_delta_of_constant_is_zero(self):
        constant = np.ones((20, 4))
        assert np.allclose(FeatureExtractor._delta(constant), 0.0)

    def test_frame_labels_align_with_features(
        self, micro_corpus, micro_extractor, micro_phones
    ):
        utterance = micro_corpus.train[0]
        features = micro_extractor.raw_features(utterance.waveform)
        labels = micro_extractor.frame_labels(utterance, micro_phones)
        assert abs(features.shape[0] - labels.shape[0]) <= 1

    def test_frame_labels_majority_vote(self, micro_corpus, micro_extractor, micro_phones):
        utterance = micro_corpus.train[0]
        labels = micro_extractor.frame_labels(utterance, micro_phones)
        # The label sequence must visit every phone in the utterance.
        expected = {micro_phones.index(p) for p in utterance.phone_sequence()}
        assert set(labels.tolist()) <= set(range(len(micro_phones)))
        assert len(set(labels.tolist()) & expected) >= len(expected) // 2
