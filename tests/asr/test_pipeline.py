"""Training/evaluation pipeline on the micro corpus."""

import numpy as np
import pytest

from repro.asr import pipeline
from repro.asr.pipeline import TrainConfig, prepare_dataset, train_model
from repro.errors import TrainingError
from repro.nn.rnn import StackedRNNClassifier
from repro.runtime import evaluate_frame_accuracy, evaluate_per


class TestPrepareDataset:
    def test_components_aligned(self, micro_datasets):
        train, _ = micro_datasets
        for feat, lab in zip(train.features, train.frame_labels):
            assert feat.shape[0] == lab.shape[0]
        assert train.num_utterances == len(train.phone_sequences)

    def test_feature_dim_consistent(self, micro_datasets, micro_extractor):
        train, _ = micro_datasets
        assert train.feature_dim == micro_extractor.config.feature_dim


class TestTrainConfig:
    def test_validation(self):
        with pytest.raises(TrainingError):
            TrainConfig(epochs=0)
        with pytest.raises(TrainingError):
            TrainConfig(lr_decay=0.0)
        with pytest.raises(TrainingError):
            TrainConfig(admm_update_every=0)


class TestTraining:
    def test_loss_decreases(self, micro_spec, micro_datasets):
        train, _ = micro_datasets
        model = StackedRNNClassifier(micro_spec, rng=np.random.default_rng(2))
        history = train_model(
            model, train, TrainConfig(epochs=5, learning_rate=5e-3, seed=2)
        )
        assert history.losses[-1] < history.losses[0]
        assert len(history.losses) == 5
        assert len(history.frame_accuracies) == 5

    def test_deterministic_given_seed(self, micro_spec, micro_datasets):
        train, _ = micro_datasets
        runs = []
        for _ in range(2):
            model = StackedRNNClassifier(micro_spec, rng=np.random.default_rng(3))
            history = train_model(
                model, train, TrainConfig(epochs=2, seed=9)
            )
            runs.append(history.losses)
        assert runs[0] == runs[1]

    def test_admm_history_recorded(self, micro_spec, micro_datasets):
        from repro.core.admm import ADMMConfig, ADMMTrainer

        train, _ = micro_datasets
        spec = micro_spec.with_block_sizes((4,))
        model = StackedRNNClassifier(spec, rng=np.random.default_rng(4))
        trainer = ADMMTrainer(model.structured_targets(), ADMMConfig(rho=0.1))
        history = train_model(
            model,
            train,
            TrainConfig(epochs=3, admm_update_every=1, seed=4),
            admm=trainer,
        )
        assert len(history.admm_residuals) == 3


class TestEvaluation:
    def test_per_in_valid_range(self, trained_dense, micro_datasets):
        _, test = micro_datasets
        per = evaluate_per(trained_dense, test)
        assert 0.0 <= per <= 200.0

    def test_trained_beats_untrained(self, trained_dense, micro_spec, micro_datasets):
        _, test = micro_datasets
        untrained = StackedRNNClassifier(
            micro_spec, rng=np.random.default_rng(99)
        )
        trained_acc = evaluate_frame_accuracy(trained_dense, test)
        untrained_acc = evaluate_frame_accuracy(untrained, test)
        assert trained_acc > untrained_acc

    def test_per_deterministic(self, trained_dense, micro_datasets):
        _, test = micro_datasets
        assert evaluate_per(trained_dense, test) == evaluate_per(
            trained_dense, test
        )


class TestDeprecatedEvaluationShims:
    """The legacy pipeline entry points forward to the runtime, warning
    with ``stacklevel=2`` so the message points at the caller."""

    def test_evaluate_per_shim_matches_runtime(
        self, trained_dense, micro_datasets
    ):
        _, test = micro_datasets
        with pytest.warns(DeprecationWarning) as caught:
            legacy = pipeline.evaluate_per(trained_dense, test, batch_size=2)
        assert legacy == evaluate_per(trained_dense, test, batch_size=2)
        assert caught[0].filename == __file__  # stacklevel=2 -> the caller

    def test_evaluate_frame_accuracy_shim_matches_runtime(
        self, trained_dense, micro_datasets
    ):
        _, test = micro_datasets
        with pytest.warns(DeprecationWarning) as caught:
            legacy = pipeline.evaluate_frame_accuracy(trained_dense, test)
        assert legacy == evaluate_frame_accuracy(trained_dense, test)
        assert caught[0].filename == __file__
