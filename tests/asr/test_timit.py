"""Synthetic TIMIT corpus generator."""

import numpy as np
import pytest

from repro.asr.phones import SILENCE, PhoneSet
from repro.asr.timit import CorpusConfig, PhoneSegment, SyntheticTIMIT, Utterance
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def corpus():
    return SyntheticTIMIT(
        CorpusConfig(
            phone_set=PhoneSet.folded().subset(10),
            num_speakers=4,
            utterances_per_speaker=3,
            test_speakers=1,
            sample_rate=8000,
            phones_per_utterance=(3, 5),
            seed=42,
        )
    )


class TestConfig:
    def test_rejects_too_many_test_speakers(self):
        with pytest.raises(ConfigError):
            CorpusConfig(num_speakers=2, test_speakers=2)

    def test_rejects_bad_phone_range(self):
        with pytest.raises(ConfigError):
            CorpusConfig(phones_per_utterance=(5, 3))

    def test_rejects_low_sample_rate(self):
        with pytest.raises(ConfigError):
            CorpusConfig(sample_rate=1000)


class TestSegments:
    def test_segment_validation(self):
        with pytest.raises(ConfigError):
            PhoneSegment("aa", 10, 10)
        with pytest.raises(ConfigError):
            PhoneSegment("aa", -1, 5)


class TestCorpus:
    def test_split_sizes(self, corpus):
        assert len(corpus.train) == 9
        assert len(corpus.test) == 3

    def test_speaker_disjoint_splits(self, corpus):
        train_speakers = {u.speaker_id for u in corpus.train}
        test_speakers = {u.speaker_id for u in corpus.test}
        assert not train_speakers & test_speakers

    def test_deterministic_given_seed(self):
        config = CorpusConfig(
            phone_set=PhoneSet.folded().subset(6),
            num_speakers=3,
            utterances_per_speaker=2,
            test_speakers=1,
            sample_rate=8000,
            seed=7,
        )
        a, b = SyntheticTIMIT(config), SyntheticTIMIT(config)
        assert np.array_equal(a.train[0].waveform, b.train[0].waveform)
        assert a.train[0].phone_sequence() == b.train[0].phone_sequence()

    def test_utterances_bracketed_by_silence(self, corpus):
        for utterance in corpus.train:
            phones = utterance.phone_sequence()
            assert phones[0] == SILENCE and phones[-1] == SILENCE

    def test_no_adjacent_repeats_between_silences(self, corpus):
        for utterance in corpus.train:
            phones = utterance.phone_sequence()
            for a, b in zip(phones, phones[1:]):
                assert a != b

    def test_segments_tile_the_waveform(self, corpus):
        for utterance in corpus.train:
            cursor = 0
            for segment in utterance.segments:
                assert segment.start == cursor
                cursor = segment.end
            assert cursor == len(utterance.waveform)

    def test_sample_labels_cover_everything(self, corpus):
        utterance = corpus.train[0]
        labels = utterance.sample_labels(corpus.phone_set)
        assert labels.shape == utterance.waveform.shape
        assert labels.min() >= 0
        assert labels.max() < len(corpus.phone_set)

    def test_waveform_amplitude_sane(self, corpus):
        for utterance in corpus.train:
            peak = np.max(np.abs(utterance.waveform))
            assert 0.01 < peak < 10.0

    def test_phones_are_acoustically_distinct(self, corpus):
        """Mean power must differ between silence and vowel segments."""
        utterance = corpus.train[0]
        powers = {}
        for segment in utterance.segments:
            power = float(
                np.mean(utterance.waveform[segment.start : segment.end] ** 2)
            )
            powers.setdefault(segment.phone, []).append(power)
        silence_power = np.mean(powers[SILENCE])
        others = [np.mean(v) for k, v in powers.items() if k != SILENCE]
        assert all(p > 2 * silence_power for p in others)

    def test_collapse_silence_option(self, corpus):
        utterance = corpus.train[0]
        collapsed = utterance.phone_sequence(collapse_silence=True)
        assert SILENCE not in collapsed
