"""Bigram Viterbi decoder."""

import numpy as np
import pytest

from repro.asr.decoder import FrameDecoder
from repro.asr.phones import PhoneSet
from repro.asr.viterbi import BigramTransitionModel, ViterbiDecoder
from repro.errors import DecodingError


@pytest.fixture
def phones():
    return PhoneSet.folded().subset(5)


def fitted_model(phones, sequences=None):
    model = BigramTransitionModel(len(phones))
    if sequences is None:
        # Sticky sequences: phones persist ~6 frames.
        sequences = [
            np.repeat(np.array([0, 1, 2, 3]), 6),
            np.repeat(np.array([2, 0, 4, 1]), 6),
        ]
    return model.fit(sequences)


class TestTransitionModel:
    def test_rows_normalize(self, phones):
        model = fitted_model(phones)
        probs = np.exp(model.log_transitions)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_self_loops_dominate_after_sticky_fit(self, phones):
        model = fitted_model(phones)
        assert model.self_loop_mass() > 0.4

    def test_label_range_checked(self, phones):
        model = BigramTransitionModel(len(phones))
        with pytest.raises(DecodingError):
            model.fit([np.array([99])])

    def test_needs_sequences(self, phones):
        with pytest.raises(DecodingError):
            BigramTransitionModel(len(phones)).fit([])

    def test_validation(self):
        with pytest.raises(DecodingError):
            BigramTransitionModel(1)
        with pytest.raises(DecodingError):
            BigramTransitionModel(5, smoothing=0)


class TestViterbiDecoder:
    def test_clean_posteriors_recovered(self, phones):
        decoder = ViterbiDecoder(phones, fitted_model(phones))
        logits = np.full((12, len(phones)), -5.0)
        logits[:6, 0] = 5.0
        logits[6:, 1] = 5.0
        assert decoder.decode_utterance(logits) == [
            phones.label(0), phones.label(1),
        ]

    def test_smooths_single_frame_blips(self, phones):
        """A 1-frame acoustic blip should be absorbed by the sticky prior."""
        decoder = ViterbiDecoder(
            phones, fitted_model(phones), acoustic_scale=0.4
        )
        logits = np.full((12, len(phones)), -2.0)
        logits[:, 0] = 2.0
        logits[5, 0] = -2.0
        logits[5, 3] = 2.5  # the blip
        assert decoder.decode_utterance(logits) == [phones.label(0)]

    def test_argmax_recovers_with_huge_acoustic_scale(self, phones):
        decoder = ViterbiDecoder(
            phones, fitted_model(phones), acoustic_scale=100.0,
            remove_silence=False,
        )
        rng = np.random.default_rng(3)
        logits = rng.standard_normal((20, len(phones)))
        path = decoder.decode_frames(
            logits - np.log(np.exp(logits).sum(-1, keepdims=True))
        )
        # With overwhelming acoustic weight, Viterbi ≈ framewise argmax.
        agreement = (path == logits.argmax(-1)).mean()
        assert agreement > 0.8

    def test_mismatched_sizes_rejected(self, phones):
        other = BigramTransitionModel(3)
        with pytest.raises(DecodingError):
            ViterbiDecoder(phones, other)

    def test_decode_batch(self, phones):
        decoder = ViterbiDecoder(phones, fitted_model(phones))
        logits = np.zeros((8, 2, len(phones)))
        out = decoder.decode_batch(logits, (8, 4))
        assert len(out) == 2

    def test_empty_input(self, phones):
        decoder = ViterbiDecoder(phones, fitted_model(phones))
        assert decoder.decode_utterance(np.zeros((0, len(phones)))) == []


class TestEndToEndImprovement:
    def test_viterbi_not_worse_than_argmax(self, micro_datasets, micro_spec):
        """On real model outputs, bigram Viterbi should match or beat the
        framewise argmax decoder.

        Trains its own copy of the micro model so the comparison cannot be
        perturbed by other tests sharing the session fixture.
        """
        import numpy as np

        from repro.asr.decoder import collapse_repeats
        from repro.asr.metrics import corpus_error_rate
        from repro.asr.pipeline import TrainConfig, train_model
        from repro.nn.autograd import no_grad
        from repro.nn.rnn import StackedRNNClassifier

        train, test = micro_datasets
        model = StackedRNNClassifier(micro_spec, rng=np.random.default_rng(5))
        train_model(
            model, train,
            TrainConfig(epochs=4, batch_size=4, learning_rate=5e-3, seed=5),
        )
        transitions = BigramTransitionModel(len(train.phone_set)).fit(
            train.frame_labels
        )
        viterbi = ViterbiDecoder(
            test.phone_set, transitions, acoustic_scale=3.0
        )
        argmax = FrameDecoder(test.phone_set)

        refs, viterbi_hyps, argmax_hyps = [], [], []
        with no_grad():
            for features, labels in zip(test.features, test.frame_labels):
                logits = model(features[:, None, :]).data[:, 0, :]
                viterbi_hyps.append(viterbi.decode_utterance(logits))
                argmax_hyps.append(argmax.decode_utterance(logits))
                refs.append(
                    argmax.reference(
                        test.phone_set.decode(collapse_repeats(list(labels)))
                    )
                )
        viterbi_per = corpus_error_rate(refs, viterbi_hyps)
        argmax_per = corpus_error_rate(refs, argmax_hyps)
        assert viterbi_per <= argmax_per + 8.0  # never materially worse
