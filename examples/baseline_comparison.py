"""Baseline comparison: regenerate the paper's Table III from the models.

Prices every configuration of the paper's headline table — ESE (pruned
sparse LSTM), C-LSTM (direct circulant training, 16-bit), and E-RNN (ADMM,
12-bit) at block sizes 8 and 16 on both FPGA platforms — and prints the
side-by-side table with paper-vs-model performance ratios.

Run:  python examples/baseline_comparison.py
"""

from repro.experiments.table3 import format_comparison, run_table3
from repro.experiments.table4 import format_table4, run_table4


def main() -> None:
    print(format_table4(run_table4()))
    print()
    print(format_comparison(run_table3()))
    print()
    print(
        "Reading guide: ESE loses on (i) effective compression (indices\n"
        "halve its 9x pruning to 4.5:1), (ii) parallelism (the irregular\n"
        "sparse structure feeds ~32 MACs/cycle where E-RNN's regular blocks\n"
        "feed hundreds of multiplier lanes), and (iii) power (off-chip\n"
        "activation tables). C-LSTM shares the block-circulant datapath but\n"
        "pays for 16-bit quantization and unoptimized PEs."
    )


if __name__ == "__main__":
    main()
