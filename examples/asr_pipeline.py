"""ASR substrate walkthrough: corpus, features, decoding, PER scoring.

Shows the task the accuracy experiments run on — from raw waveform to scored
phone sequences — including an ASCII view of one utterance's alignment and a
worked PER computation with the substitution/insertion/deletion breakdown.

Run:  python examples/asr_pipeline.py
"""

import numpy as np

from repro.asr import (
    CorpusConfig,
    FeatureConfig,
    FeatureExtractor,
    FrameDecoder,
    PhoneSet,
    SyntheticTIMIT,
    TrainConfig,
    levenshtein,
    prepare_dataset,
    train_model,
)
from repro.asr.decoder import collapse_repeats
from repro.asr.metrics import corpus_error_rate
from repro.config import RNNSpec
from repro.nn import StackedRNNClassifier, no_grad


def show_utterance(corpus, extractor, phones) -> None:
    utterance = corpus.train[0]
    seconds = len(utterance.waveform) / utterance.sample_rate
    print(f"utterance {utterance.utterance_id} ({seconds:.2f} s):")
    print("  phones:", " ".join(utterance.phone_sequence()))

    features = extractor(utterance.waveform)
    labels = extractor.frame_labels(utterance, phones)
    print(f"  features: {features.shape[0]} frames x {features.shape[1]} dims")

    # ASCII alignment strip: one character per 4 frames.
    strip = "".join(
        phones.label(labels[t])[0] for t in range(0, len(labels), 4)
    )
    print(f"  frame labels (1 char / 40 ms): {strip}")


def train_and_score(corpus, extractor, phones) -> None:
    train = prepare_dataset(corpus.train, extractor, phones)
    test = prepare_dataset(corpus.test, extractor, phones)
    spec = RNNSpec("lstm", train.feature_dim, (32,), len(phones))
    model = StackedRNNClassifier(spec, rng=np.random.default_rng(0))
    print("\ntraining LSTM-32 acoustic model ...")
    history = train_model(
        model, train, TrainConfig(epochs=15, learning_rate=5e-3, seed=7)
    )
    print(f"  final loss {history.final_loss:.3f}, "
          f"frame accuracy {history.frame_accuracies[-1]:.2%}")

    decoder = FrameDecoder(phones)
    references, hypotheses = [], []
    with no_grad():
        for features, frame_labels in zip(test.features, test.frame_labels):
            logits = model(features[:, None, :]).data[:, 0, :]
            hyp = decoder.decode_utterance(logits)
            ref = decoder.reference(
                phones.decode(collapse_repeats(list(frame_labels)))
            )
            references.append(ref)
            hypotheses.append(hyp)

    print("\nfirst three decodes:")
    for ref, hyp in list(zip(references, hypotheses))[:3]:
        ops = levenshtein(ref, hyp)
        print(f"  REF {' '.join(ref)}")
        print(f"  HYP {' '.join(hyp)}")
        print(
            f"      S={ops.substitutions} I={ops.insertions} "
            f"D={ops.deletions} -> {ops.rate:.1f}%"
        )
    per = corpus_error_rate(references, hypotheses)
    print(f"\ncorpus PER over {len(references)} held-out utterances: {per:.2f}%")


def main() -> None:
    phones = PhoneSet.folded().subset(16)
    corpus = SyntheticTIMIT(
        CorpusConfig(
            phone_set=phones,
            num_speakers=8,
            utterances_per_speaker=8,
            test_speakers=2,
            sample_rate=8000,
            noise_level=0.25,
            seed=5,
        )
    )
    extractor = FeatureExtractor(FeatureConfig(sample_rate=8000, num_filters=13))
    extractor.fit_normalizer(corpus.train)
    print(f"{corpus}\n")
    show_utterance(corpus, extractor, phones)
    train_and_score(corpus, extractor, phones)


if __name__ == "__main__":
    main()
