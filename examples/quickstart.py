"""Quickstart: compress an LSTM with ADMM and size its FPGA implementation.

The five-minute tour of the library:

1. generate a synthetic TIMIT-like corpus and extract features;
2. train a dense LSTM acoustic model;
3. compress it to block-circulant form with ADMM (the E-RNN flow);
4. quantize to 12-bit fixed point with PWL activations;
5. size the FPGA accelerator and print the implementation report;
6. compile the compressed model and stream frames through a session.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import runtime
from repro.asr import (
    CorpusConfig,
    FeatureConfig,
    FeatureExtractor,
    PhoneSet,
    SyntheticTIMIT,
    TrainConfig,
    prepare_dataset,
    train_model,
)
from repro.api import Design
from repro.config import RNNSpec
from repro.hw import quantized_copy, quantized_dataset
from repro.nn import StackedRNNClassifier
from repro.runtime import evaluate_per


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Data: a small synthetic corpus (16 phones, 8 kHz, 10 speakers).
    # ------------------------------------------------------------------
    phones = PhoneSet.folded().subset(16)
    corpus = SyntheticTIMIT(
        CorpusConfig(
            phone_set=phones,
            num_speakers=8,
            utterances_per_speaker=8,
            test_speakers=2,
            sample_rate=8000,
            noise_level=0.25,
            seed=1,
        )
    )
    extractor = FeatureExtractor(
        FeatureConfig(sample_rate=8000, num_filters=13)
    )
    extractor.fit_normalizer(corpus.train)
    train = prepare_dataset(corpus.train, extractor, phones)
    test = prepare_dataset(corpus.test, extractor, phones)
    print(f"corpus: {corpus}, feature dim {train.feature_dim}")

    # ------------------------------------------------------------------
    # 2. Dense baseline.
    # ------------------------------------------------------------------
    spec = RNNSpec("lstm", train.feature_dim, (48,), len(phones))
    model = StackedRNNClassifier(spec, rng=np.random.default_rng(0))
    train_model(
        model, train,
        TrainConfig(epochs=20, learning_rate=5e-3, lr_decay=0.96, seed=7),
    )
    dense_per = evaluate_per(model, test)
    print(f"dense LSTM-48 PER: {dense_per:.2f}%")

    # ------------------------------------------------------------------
    # 3. ADMM compression to block-circulant (block size 4 -> 4x fewer
    #    weights, Fig. 6 flow: ADMM -> projection -> structured retrain).
    # ------------------------------------------------------------------
    design = (
        Design.lstm(*spec.layer_sizes)
        .io(train.feature_dim, len(phones))
        .blocks(4)
        .on("XCKU060")
        .bits(12)
    )
    result = design.compress(model, train)
    compressed_per = evaluate_per(result.model, test)
    print(
        f"E-RNN block-4 PER: {compressed_per:.2f}% "
        f"(degradation {compressed_per - dense_per:+.2f}; "
        f"final ADMM residual {result.final_residual:.3f})"
    )
    print(
        f"parameters: {model.num_parameters():,} dense -> "
        f"{result.model.num_parameters():,} compressed"
    )

    # ------------------------------------------------------------------
    # 4. Hardware-faithful inference: 12-bit weights/inputs + PWL σ/tanh.
    # ------------------------------------------------------------------
    hardware_model = quantized_copy(result.model, 12, pwl_segments=16)
    quantized_per = evaluate_per(hardware_model, quantized_dataset(test, 12))
    print(
        f"12-bit fixed-point + PWL activations PER: {quantized_per:.2f}% "
        f"(quantization cost {quantized_per - compressed_per:+.2f})"
    )

    # ------------------------------------------------------------------
    # 5. FPGA implementation (at paper scale the same call prices the
    #    Table III designs; here it prices the toy model).
    # ------------------------------------------------------------------
    priced = design.price()
    print(
        f"KU060 implementation: {priced.num_pes} PEs in {priced.num_cus} CUs, "
        f"{priced.latency_us:.2f} us/frame, {priced.fps:,.0f} FPS, "
        f"{priced.power_watts:.1f} W "
        f"({priced.energy_efficiency:,.0f} FPS/W)"
    )

    # ------------------------------------------------------------------
    # 6. Deployment: compile to the fixed-point CU backend and stream an
    #    utterance frame by frame (byte-identical to the batched run).
    # ------------------------------------------------------------------
    compiled = runtime.compile(
        result.model, backend="fixed", weight_bits=12, phone_set=phones
    )
    utterance = test.features[0][:, None, :]  # (T, 1, D)
    session = compiled.session()
    streamed = np.stack([session.push(frame) for frame in utterance])
    assert np.array_equal(streamed, compiled.run(utterance))
    hypothesis = compiled.decoder().decode_utterance(streamed[:, 0])
    print(
        f"streamed {session.frames_pushed} frames through the CU emulator; "
        f"decoded: {' '.join(hypothesis) or '(silence)'}"
    )


if __name__ == "__main__":
    main()
