"""Hardware code generation: the HLS framework of Fig. 13, via `repro.api`.

Builds the full flow for the paper's Table III workloads — operation-graph
generation, CGPipe scheduling, and HLS C code emission — through the fluent
:class:`repro.api.Design` facade, and prints the schedule plus an excerpt
of the generated source.  Because every ``codegen()`` routes through the
shared build engine, re-running a design point is a cache hit.

Run:  python examples/hardware_codegen.py
"""

from repro.api import Design, default_engine


def build_and_report(name: str, design: Design) -> None:
    print(f"=== {name}: {design.describe()} ===")
    result = design.codegen()

    print(
        f"operation graph: {result.graph.number_of_nodes()} nodes, "
        f"{result.graph.number_of_edges()} edges"
    )
    print(f"accelerator: {result.design.num_pes} PEs "
          f"({result.design.pes_per_cu} per CU)")

    print("CGPipe schedule:")
    for stage in sorted(result.schedule.stage_cycles):
        ops = result.schedule.ops_in_stage(stage)
        summary = ", ".join(
            f"{op.name.split('.')[-1]}({op.duration_cycles:.0f})"
            for op in ops
            if op.engine != "none"
        )
        print(
            f"  stage {stage}: {result.schedule.stage_cycles[stage]:7.0f} "
            f"cycles | {summary}"
        )
    print(
        f"frame: {result.frame_cycles:.0f} cycles = {result.latency_us:.2f} us "
        f"at 200 MHz"
    )

    lines = result.code.splitlines()
    print(f"\ngenerated HLS C ({len(lines)} lines); excerpt:")
    for line in lines[:18]:
        print(f"    {line}")
    print("    ...\n")


def main() -> None:
    build_and_report(
        "LSTM FFT8",
        Design.lstm(1024).blocks(8).peephole().project(512).on("XCKU060"),
    )
    build_and_report("GRU FFT16", Design.gru(1024).blocks(16).on("XCKU060"))
    # Mixed block sizes: the Phase-I fine-tuning case — coarser blocks on the
    # non-recurrent input/output matrices (Sec. VI-B Step Three).
    build_and_report(
        "LSTM FFT8 + io-block 16",
        Design.lstm(1024).blocks(8).io_block(16).peephole().project(512)
        .on("XCKU060"),
    )
    # Revisit the first design point: the engine serves it from cache, so
    # the stats line below shows one hit against the three cold builds.
    Design.lstm(1024).blocks(8).peephole().project(512).on("XCKU060").codegen()
    print(default_engine().stats().describe())


if __name__ == "__main__":
    main()
