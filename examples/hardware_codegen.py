"""Hardware code generation: the HLS framework of Fig. 13.

Builds the full flow for the paper's Table III workloads — operation-graph
generation, CGPipe scheduling, and HLS C code emission — and prints the
schedule plus an excerpt of the generated source.

Run:  python examples/hardware_codegen.py
"""

from repro.config import AccelSpec, RNNSpec
from repro.hls import HLSFramework


def build_and_report(name: str, spec: RNNSpec) -> None:
    print(f"=== {name}: {spec.describe()} ===")
    result = HLSFramework(spec, AccelSpec("XCKU060")).build()

    print(
        f"operation graph: {result.graph.number_of_nodes()} nodes, "
        f"{result.graph.number_of_edges()} edges"
    )
    print(f"accelerator: {result.design.num_pes} PEs "
          f"({result.design.pes_per_cu} per CU)")

    print("CGPipe schedule:")
    for stage in sorted(result.schedule.stage_cycles):
        ops = result.schedule.ops_in_stage(stage)
        summary = ", ".join(
            f"{op.name.split('.')[-1]}({op.duration_cycles:.0f})"
            for op in ops
            if op.engine != "none"
        )
        print(
            f"  stage {stage}: {result.schedule.stage_cycles[stage]:7.0f} "
            f"cycles | {summary}"
        )
    print(
        f"frame: {result.frame_cycles:.0f} cycles = {result.latency_us:.2f} us "
        f"at 200 MHz"
    )

    lines = result.code.splitlines()
    print(f"\ngenerated HLS C ({len(lines)} lines); excerpt:")
    for line in lines[:18]:
        print(f"    {line}")
    print("    ...\n")


def main() -> None:
    build_and_report(
        "LSTM FFT8",
        RNNSpec(
            "lstm", 153, (1024,), 39, block_sizes=(8,),
            peephole=True, projection_size=512,
        ),
    )
    build_and_report(
        "GRU FFT16", RNNSpec("gru", 153, (1024,), 39, block_sizes=(16,))
    )
    # Mixed block sizes: the Phase-I fine-tuning case — coarser blocks on the
    # non-recurrent input/output matrices (Sec. VI-B Step Three).
    build_and_report(
        "LSTM FFT8 + io-block 16",
        RNNSpec(
            "lstm", 153, (1024,), 39, block_sizes=(8,),
            peephole=True, projection_size=512, io_block_size=16,
        ),
    )


if __name__ == "__main__":
    main()
