"""Design-space exploration: the full E-RNN two-phase framework.

Reproduces the paper's Fig. 2 flow on a scaled workload: start from a dense
LSTM baseline and an accuracy budget, let Phase I pick the model (block-size
bounds from BRAM + the Fig. 8 cost model, block sweep, LSTM->GRU switch,
io-matrix fine-tuning), then let Phase II size the hardware.

The run prints every training trial — the point of the framework is that
there are only ~5 of them.

Run:  python examples/design_space_exploration.py
"""

import numpy as np

from repro.api import Design
from repro.config import AccelSpec
from repro.core.cost_model import fig8_curve
from repro.core.phase1 import PhaseIConfig
from repro.core.phase2 import PhaseIIConfig
from repro.experiments.common import ExperimentHarness, ExperimentSettings


def paper_scale_bounds() -> None:
    """Show the two explorations at the paper's real dimensions."""
    print("=== Design explorations at paper scale ===")
    full = Design.lstm(1024, 1024).peephole().project(512)
    for name in ("ADM-PCIE-7V3", "XCKU060"):
        report = full.on(name).bounds()
        print(f"  {name}: smallest block size that fits BRAM = {report.lower}")
    curve = fig8_curve(1024, (2, 4, 8, 16, 32, 64))
    print("  Fig. 8 curve (layer 1024):",
          {b: round(v, 3) for b, v in curve.items()})
    report = full.on("XCKU060").bounds()
    print(f"  -> search range [{report.lower}, {report.upper}]; with "
          f"power-of-2 steps that is at most {report.num_trials} trials\n")


def scaled_two_phase_run() -> None:
    """Run both phases with real (scaled) training trials."""
    print("=== Phase I + II on the scaled corpus ===")
    harness = ExperimentHarness(ExperimentSettings(
        dense_epochs=15, admm_epochs=6, retrain_epochs=8, direct_epochs=12,
    ))
    baseline = harness.make_spec("lstm", (32, 32))

    result = (
        Design.from_specs(baseline, AccelSpec("XCKU060"))
        .optimize(
            harness.trainer(),
            phase1_config=PhaseIConfig(
                accuracy_budget=5.0,  # scaled corpus => coarser PER steps
                platform="XCKU060",
                max_block=16,
            ),
            phase2_config=PhaseIIConfig(platform="XCKU060"),
        )
    )
    print(result.describe())

    # Price the chosen model at paper scale for context: scale the layer
    # sizes back up by 16 and keep the chosen block structure.
    chosen = result.phase1.final_spec
    paper = (
        Design.cell(chosen.cell_type, *(16 * size for size in chosen.layer_sizes))
        .blocks(*chosen.effective_block_sizes)
        .io_block(chosen.io_block_size)
        .on("XCKU060")
    )
    priced = paper.price()
    print(
        f"\nsame structure at paper scale ({paper.rnn_spec().describe()}): "
        f"{priced.latency_us:.1f} us/frame, {priced.fps:,.0f} FPS"
    )


if __name__ == "__main__":
    np.seterr(all="raise", under="ignore")
    paper_scale_bounds()
    scaled_two_phase_run()
