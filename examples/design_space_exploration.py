"""Design-space exploration: the E-RNN sweep engine plus the two-phase flow.

Part 1 reproduces the paper's design optimization as one declarative sweep
(Fig. 8 / Tables 3-4): a base LSTM design, three axes (block size,
quantization width, platform), parallel evaluation through the cached
engine, and a Pareto frontier of the PER-proxy-vs-latency trade-off.
Repeat runs are warm: built accelerator designs persist in the shared disk
cache (``~/.cache/repro-ernn`` or ``$REPRO_CACHE_DIR``).

Part 2 runs the full two-phase framework (Fig. 2) with *real* training
trials on a scaled corpus: Phase I picks the model under an accuracy
budget, Phase II sizes the hardware.

Run:  python examples/design_space_exploration.py
"""

import numpy as np

from repro.api import Design, DiskCache, Engine, Sweep
from repro.config import AccelSpec
from repro.core.phase1 import PhaseIConfig
from repro.core.phase2 import PhaseIIConfig
from repro.experiments.common import ExperimentHarness, ExperimentSettings


def sweep_paper_grid() -> None:
    """Part 1: the declarative sweep at the paper's real dimensions."""
    print("=== Parallel design-space sweep at paper scale ===")
    base = Design.lstm(1024, 1024).peephole().project(512)
    sweep = (
        Sweep(base)
        .over(
            blocks=[4, 8, 16, 32],
            bits=[8, 12, 16],
            platform=["ADM-PCIE-7V3", "XCKU060"],
        )
    )
    engine = Engine(disk=DiskCache.from_env())  # warm across runs/processes
    result = sweep.run(mode="thread", engine=engine)
    print(result.describe(k=3))

    print("\nPER proxy vs energy efficiency frontier:")
    for point in result.pareto(objectives=("per_proxy", "-energy_efficiency")):
        m = point.metrics
        print(
            f"  [{point.index:3d}] {point.label()}: "
            f"PER~{m.per_proxy:.2f}%, {m.energy_efficiency:,.0f} FPS/W"
        )

    best = result.best(key="fps")
    print(
        f"\nfastest feasible design: {best.spec.describe()} on "
        f"{best.accel.platform} -> {best.metrics.fps:,.0f} FPS "
        f"({best.metrics.latency_us:.2f} us/frame)\n"
    )


def scaled_two_phase_run() -> None:
    """Part 2: both phases with real (scaled) training trials."""
    print("=== Phase I + II on the scaled corpus ===")
    harness = ExperimentHarness(ExperimentSettings(
        dense_epochs=15, admm_epochs=6, retrain_epochs=8, direct_epochs=12,
    ))
    baseline = harness.make_spec("lstm", (32, 32))

    result = (
        Design.from_specs(baseline, AccelSpec("XCKU060"))
        .optimize(
            harness.trainer(),
            phase1_config=PhaseIConfig(
                accuracy_budget=5.0,  # scaled corpus => coarser PER steps
                platform="XCKU060",
                max_block=16,
            ),
            phase2_config=PhaseIIConfig(platform="XCKU060"),
        )
    )
    print(result.describe())

    # Price the chosen model at paper scale for context: scale the layer
    # sizes back up by 16 and keep the chosen block structure.
    chosen = result.phase1.final_spec
    paper = (
        Design.cell(chosen.cell_type, *(16 * size for size in chosen.layer_sizes))
        .blocks(*chosen.effective_block_sizes)
        .io_block(chosen.io_block_size)
        .on("XCKU060")
    )
    priced = paper.price()
    print(
        f"\nsame structure at paper scale ({paper.rnn_spec().describe()}): "
        f"{priced.latency_us:.1f} us/frame, {priced.fps:,.0f} FPS"
    )


if __name__ == "__main__":
    np.seterr(all="raise", under="ignore")
    sweep_paper_grid()
    scaled_two_phase_run()
