"""Shared configuration dataclasses for the E-RNN reproduction.

Two specifications flow through the whole library:

* :class:`RNNSpec` describes an RNN *model* — cell type, layer sizes, block
  sizes, peephole/projection options — exactly the variables Phase I of the
  paper optimizes (Sec. VI-B).
* :class:`AccelSpec` describes a *hardware implementation* of such a model —
  target platform, quantization bit width, activation implementation — the
  variables Phase II optimizes (Sec. VII).

Both are frozen dataclasses: a spec is a value, and derived objects (trained
models, accelerator reports) reference the spec that produced them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.errors import BlockSizeError, ConfigError

#: Built-in cell types (Sec. II).  The authoritative list is the cell
#: registry (:data:`repro.api.registry.CELL_REGISTRY`), which third-party
#: cells join via :func:`repro.api.register_cell`; this tuple is kept for
#: backward compatibility with code that imported it from here.
CELL_TYPES = ("lstm", "gru")


def _cell_info(cell_type: str):
    """Resolve a cell type through the registry (lazy import: the registry
    lives under ``repro.api`` and this module must stay a dependency leaf)."""
    from repro.api.registry import CELL_REGISTRY

    try:
        return CELL_REGISTRY.get(cell_type)
    except ConfigError:
        raise ConfigError(
            f"cell_type must be one of {CELL_REGISTRY.names()}, "
            f"got {cell_type!r}"
        ) from None


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two (1 counts)."""
    return value >= 1 and (value & (value - 1)) == 0


def validate_block_size(block_size: int, *dims: int) -> None:
    """Check that a block size is a power of two dividing every dimension.

    The paper restricts block sizes to powers of two so the FFT kernels stay
    radix-2 (Sec. IV), and a block-circulant partition only exists when the
    block size divides both matrix dimensions (Sec. III-A).
    """
    if not isinstance(block_size, int) or block_size < 1:
        raise BlockSizeError(f"block size must be a positive int, got {block_size!r}")
    if not is_power_of_two(block_size):
        raise BlockSizeError(f"block size must be a power of two, got {block_size}")
    for dim in dims:
        if dim % block_size != 0:
            raise BlockSizeError(
                f"block size {block_size} does not divide dimension {dim}"
            )


@dataclass(frozen=True)
class RNNSpec:
    """Specification of a (possibly block-circulant) stacked RNN.

    Parameters mirror Tables I and II of the paper: ``layer_sizes`` such as
    ``(1024, 1024)`` and ``block_sizes`` such as ``(8, 8)``.  A block size of
    1 means the layer keeps an unstructured (dense) weight matrix, which is
    the paper's baseline ("-" rows in the tables).

    ``io_block_size`` implements the Phase-I fine-tuning step (Sec. VI-B,
    Step Three): a single *larger* block size applied only to the non-recurrent
    input/output matrices.  ``None`` disables the override.
    """

    cell_type: str
    input_size: int
    layer_sizes: tuple[int, ...]
    output_size: int
    block_sizes: tuple[int, ...] = ()
    peephole: bool = False
    projection_size: int | None = None
    io_block_size: int | None = None

    def __post_init__(self) -> None:
        cell = _cell_info(self.cell_type)
        if not self.layer_sizes:
            raise ConfigError("layer_sizes must be non-empty")
        if any(size <= 0 for size in self.layer_sizes):
            raise ConfigError(f"layer sizes must be positive: {self.layer_sizes}")
        if self.input_size <= 0 or self.output_size <= 0:
            raise ConfigError("input_size and output_size must be positive")
        if self.block_sizes:
            if len(self.block_sizes) != len(self.layer_sizes):
                raise ConfigError(
                    "block_sizes must match layer_sizes length "
                    f"({len(self.block_sizes)} vs {len(self.layer_sizes)})"
                )
            for block, layer in zip(self.block_sizes, self.layer_sizes):
                validate_block_size(block, layer)
        if self.projection_size is not None:
            if not cell.supports_projection:
                raise ConfigError(
                    f"projection is not defined for {self.cell_type.upper()} cells"
                )
            if self.projection_size <= 0:
                raise ConfigError("projection_size must be positive")
        if self.peephole and not cell.supports_peephole:
            raise ConfigError(
                f"peephole connections are not defined for "
                f"{self.cell_type.upper()} cells"
            )
        if self.io_block_size is not None:
            validate_block_size(self.io_block_size)

    @property
    def num_layers(self) -> int:
        return len(self.layer_sizes)

    @property
    def is_block_circulant(self) -> bool:
        """True when any layer uses a non-trivial circulant block size."""
        return any(block > 1 for block in self.effective_block_sizes)

    @property
    def effective_block_sizes(self) -> tuple[int, ...]:
        """Per-layer block sizes with 1 (dense) filled in when unset."""
        if self.block_sizes:
            return self.block_sizes
        return tuple(1 for _ in self.layer_sizes)

    def with_block_sizes(self, block_sizes: tuple[int, ...]) -> "RNNSpec":
        """Return a copy with new per-layer block sizes (Phase-I sweeps)."""
        return dataclasses.replace(self, block_sizes=tuple(block_sizes))

    def with_cell_type(self, cell_type: str) -> "RNNSpec":
        """Return a copy with a new cell type (Phase-I LSTM→GRU switch).

        Options the target cell does not support (GRU has neither peepholes
        nor a projection layer) are dropped rather than rejected.
        """
        cell = _cell_info(cell_type)
        return dataclasses.replace(
            self,
            cell_type=cell_type,
            peephole=self.peephole and cell.supports_peephole,
            projection_size=(
                self.projection_size if cell.supports_projection else None
            ),
        )

    def with_io_block_size(self, io_block_size: int | None) -> "RNNSpec":
        """Return a copy with the input/output block-size override."""
        return dataclasses.replace(self, io_block_size=io_block_size)

    def describe(self) -> str:
        """Human-readable one-line summary, Table I/II style."""
        layers = "-".join(str(size) for size in self.layer_sizes)
        if self.is_block_circulant:
            blocks = "-".join(str(block) for block in self.effective_block_sizes)
        else:
            blocks = "dense"
        flags = []
        if self.peephole:
            flags.append("peephole")
        if self.projection_size is not None:
            flags.append(f"projection({self.projection_size})")
        if self.io_block_size is not None:
            flags.append(f"io-block({self.io_block_size})")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return f"{self.cell_type.upper()} {layers} / blocks {blocks}{suffix}"


@dataclass(frozen=True)
class AccelSpec:
    """Specification of an FPGA implementation of an :class:`RNNSpec`.

    ``platform`` names one of the registered FPGA platforms (``"ADM-PCIE-7V3"``
    or ``"XCKU060"``, Table IV).  ``weight_bits``/``input_bits`` select the
    fixed-point formats (Sec. VII-D; paper uses 12-bit).  ``pwl_segments``
    sizes the piecewise-linear activation tables (Sec. VIII-B1).
    """

    platform: str
    weight_bits: int = 12
    input_bits: int = 12
    clock_mhz: float = 200.0
    pwl_segments: int = 16
    num_compute_units: int | None = None

    def __post_init__(self) -> None:
        if self.weight_bits < 2 or self.weight_bits > 32:
            raise ConfigError(f"weight_bits out of range: {self.weight_bits}")
        if self.input_bits < 2 or self.input_bits > 32:
            raise ConfigError(f"input_bits out of range: {self.input_bits}")
        if self.clock_mhz <= 0:
            raise ConfigError("clock_mhz must be positive")
        if self.pwl_segments < 2:
            raise ConfigError("pwl_segments must be at least 2")
        if self.num_compute_units is not None and self.num_compute_units < 1:
            raise ConfigError("num_compute_units must be at least 1")

    @property
    def clock_period_ns(self) -> float:
        return 1000.0 / self.clock_mhz
