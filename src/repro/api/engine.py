"""The cached build engine: ``(RNNSpec, AccelSpec) → built artifact``.

Phase-I sweeps, the Table III/IV benchmarks, and the parallel
:class:`repro.api.explorer.Sweep` all revisit the same handful of design
points; a full :func:`repro.hls.framework.build_hls` run costs tens of
milliseconds while the specs themselves are small frozen dataclasses —
i.e. perfect cache keys.  :class:`Engine` memoizes both build products
behind one keyed LRU cache so a repeat ``price()``/``codegen()`` is a dict
lookup:

>>> engine = Engine(maxsize=64)
>>> engine.design(spec, accel)      # cold: runs the accelerator model
>>> engine.design(spec, accel)      # hot: O(1)
>>> engine.stats().hits
1

Two tiers:

* the in-memory LRU (always on) — shared safely between threads; lookups
  and bookkeeping hold an internal lock, builds run outside it so parallel
  sweeps still build concurrently;
* an optional :class:`repro.api.diskcache.DiskCache` — accelerator designs
  are serialized to content-keyed JSON artifacts, so a *different process*
  (or a rerun tomorrow) starts warm.  HLS results stay memory-only (their
  operation graph is a networkx object), but ``hls()`` routes its inner
  design build through ``design()`` and therefore still benefits.

Every memoized path records hits/misses through the same code path, so
``stats()`` and ``contains()`` agree no matter which verb populated the
cache.  The cache is safe because every artifact is a frozen dataclass
referencing frozen specs — callers cannot mutate a cached entry.
``benchmarks/bench_engine_cache.py`` and ``benchmarks/bench_explorer.py``
record the measured speedups.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Hashable

from repro.api.diskcache import (
    NO_CACHE_ENV,
    DiskCache,
    decode_accelerator_design,
    encode_accelerator_design,
)
from repro.config import AccelSpec, RNNSpec
from repro.hls.framework import HLSResult, build_hls
from repro.hw.accelerator import AcceleratorDesign, build_design

__all__ = ["CacheStats", "Engine", "default_engine", "set_default_engine"]


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of one engine's cache counters.

    ``misses`` counts every lookup the in-memory LRU could not serve;
    ``disk_hits`` counts the subset of those served by the disk tier
    instead of a build, so ``misses - disk_hits`` is the number of actual
    builds.
    """

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int
    disk_hits: int = 0
    disk_misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def builds(self) -> int:
        """Cold builds actually executed."""
        return self.misses - self.disk_hits

    def describe(self) -> str:
        text = (
            f"engine cache: {self.hits} hits / {self.misses} misses "
            f"({100 * self.hit_rate:.1f}%), {self.size}/{self.maxsize} "
            f"entries, {self.evictions} evictions"
        )
        if self.disk_hits or self.disk_misses:
            text += f"; disk tier: {self.disk_hits} hits / {self.disk_misses} misses"
        return text


class Engine:
    """Memoizing builder for accelerator designs and HLS results.

    One LRU cache spans both artifact kinds; the key includes the kind tag,
    the frozen specs, and ``pe_efficiency``.  ``maxsize`` bounds memory for
    long sweeps — the oldest untouched entry is evicted first.  ``disk``
    (a :class:`DiskCache`, a directory path, or ``None``) adds the
    persistent second tier for accelerator designs; the ``REPRO_NO_CACHE``
    environment variable is a kill switch that drops the disk tier even
    when one is passed explicitly.
    """

    def __init__(
        self,
        maxsize: int = 128,
        disk: "DiskCache | Path | str | None" = None,
    ):
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        if disk is not None and os.environ.get(NO_CACHE_ENV):
            disk = None
        if disk is not None and not isinstance(disk, DiskCache):
            disk = DiskCache(root=disk, namespace="engine")
        self._disk = disk
        self._lock = threading.RLock()
        self._cache: OrderedDict[Hashable, Any] = OrderedDict()  # guarded-by: _lock
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._evictions = 0  # guarded-by: _lock
        self._disk_hits = 0  # guarded-by: _lock
        self._disk_misses = 0  # guarded-by: _lock

    @property
    def disk(self) -> DiskCache | None:
        """The persistent tier, if one is attached."""
        return self._disk

    # ------------------------------------------------------------------
    @staticmethod
    def _key(
        kind: str, spec: RNNSpec, accel: AccelSpec, pe_efficiency: float
    ) -> tuple:
        """The one key shape every memoized path and ``contains`` share."""
        return (kind, spec, accel, pe_efficiency)

    def _insert(self, key: Hashable, value: Any) -> None:  # holds-lock: _lock
        self._cache[key] = value
        self._cache.move_to_end(key)
        if len(self._cache) > self.maxsize:
            self._cache.popitem(last=False)
            self._evictions += 1

    def _memoized(
        self,
        key: tuple,
        build: Callable[[], Any],
        encode: Callable[[Any], Any] | None = None,
        decode: Callable[[Any], Any] | None = None,
    ) -> Any:
        with self._lock:
            try:
                value = self._cache[key]
            except KeyError:
                self._misses += 1
            else:
                self._hits += 1
                self._cache.move_to_end(key)
                return value

        disk_key = None
        if self._disk is not None and decode is not None:
            disk_key = self._disk.key(*key)
            payload = self._disk.get(disk_key)
            value = decode(payload) if payload is not None else None
            if value is not None:
                with self._lock:
                    self._disk_hits += 1
                    self._insert(key, value)
                return value
            with self._lock:
                self._disk_misses += 1

        value = build()
        if disk_key is not None and encode is not None:
            try:
                self._disk.put(disk_key, encode(value))
            except (OSError, TypeError, ValueError):
                pass  # a failed disk write only costs warmth, never results
        with self._lock:
            self._insert(key, value)
        return value

    # ------------------------------------------------------------------
    def design(
        self, spec: RNNSpec, accel: AccelSpec, pe_efficiency: float = 1.0
    ) -> AcceleratorDesign:
        """Size the accelerator (Phase-II pricing), memoized in both tiers."""
        return self._memoized(
            self._key("design", spec, accel, pe_efficiency),
            lambda: build_design(spec, accel, pe_efficiency=pe_efficiency),
            encode=encode_accelerator_design,
            decode=decode_accelerator_design,
        )

    def hls(
        self, spec: RNNSpec, accel: AccelSpec, pe_efficiency: float = 1.0
    ) -> HLSResult:
        """Run the full HLS flow (graph, schedule, C source), memoized.

        The inner accelerator sizing goes through :meth:`design`, so the
        design cache is populated (and its hits/misses counted) identically
        whether a spec is first seen by ``price()`` or by ``codegen()``.
        """
        return self._memoized(
            self._key("hls", spec, accel, pe_efficiency),
            lambda: build_hls(
                spec,
                accel,
                pe_efficiency=pe_efficiency,
                design=self.design(spec, accel, pe_efficiency),
            ),
        )

    def compiled(self, fingerprint: str, build: Callable[[], Any]) -> Any:
        """Memoize a :class:`repro.runtime.CompiledModel` by content hash.

        ``fingerprint`` is the artifact's own content fingerprint (spec +
        backend + options + weight bytes), so a retrained model never
        collides with a stale artifact.  Shares the LRU, eviction policy
        and hit/miss counters with the design/HLS verbs; the disk tier is
        not used (runtime artifacts persist through
        ``CompiledModel.save``/``compile(artifact_dir=...)`` instead).
        """
        return self._memoized(("compiled", fingerprint), build)

    # ------------------------------------------------------------------
    def contains(
        self,
        kind: str,
        spec: RNNSpec,
        accel: AccelSpec,
        pe_efficiency: float = 1.0,
    ) -> bool:
        """True when the in-memory tier holds this artifact.

        Uses the same key construction as :meth:`design`/:meth:`hls` and
        never perturbs the hit/miss counters.
        """
        with self._lock:
            return self._key(kind, spec, accel, pe_efficiency) in self._cache

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._cache),
                maxsize=self.maxsize,
                disk_hits=self._disk_hits,
                disk_misses=self._disk_misses,
            )

    def clear(self) -> None:
        """Drop all in-memory artifacts and reset the counters.

        The disk tier is left untouched — use ``engine.disk.clear()`` to
        invalidate persisted artifacts.
        """
        with self._lock:
            self._cache.clear()
            self._hits = self._misses = self._evictions = 0
            self._disk_hits = self._disk_misses = 0

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._cache

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)


_default_engine = Engine()


def default_engine() -> Engine:
    """The process-wide engine used by :class:`repro.api.Design` verbs."""
    return _default_engine


def set_default_engine(engine: Engine) -> Engine:
    """Swap the process-wide engine (returns the previous one)."""
    global _default_engine
    previous = _default_engine
    _default_engine = engine
    return previous
