"""The cached build engine: ``(RNNSpec, AccelSpec) → built artifact``.

Phase-I sweeps, the Table III/IV benchmarks, and any future serving path
all revisit the same handful of design points; a full
:func:`repro.hls.framework.build_hls` run costs tens of milliseconds while
the specs themselves are small frozen dataclasses — i.e. perfect cache
keys.  :class:`Engine` memoizes both build products behind one keyed LRU
cache so a repeat ``price()``/``codegen()`` is a dict lookup:

>>> engine = Engine(maxsize=64)
>>> engine.design(spec, accel)      # cold: runs the accelerator model
>>> engine.design(spec, accel)      # hot: O(1)
>>> engine.stats().hits
1

The cache is safe because every artifact is a frozen dataclass referencing
frozen specs — callers cannot mutate a cached entry.  ``benchmarks/
bench_engine_cache.py`` records the measured cold-vs-hot speedup.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from repro.config import AccelSpec, RNNSpec
from repro.hls.framework import HLSResult, build_hls
from repro.hw.accelerator import AcceleratorDesign, build_design

__all__ = ["CacheStats", "Engine", "default_engine", "set_default_engine"]


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of one engine's cache counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def describe(self) -> str:
        return (
            f"engine cache: {self.hits} hits / {self.misses} misses "
            f"({100 * self.hit_rate:.1f}%), {self.size}/{self.maxsize} "
            f"entries, {self.evictions} evictions"
        )


class Engine:
    """Memoizing builder for accelerator designs and HLS results.

    One LRU cache spans both artifact kinds; the key includes the kind tag,
    the frozen specs, and ``pe_efficiency``.  ``maxsize`` bounds memory for
    long sweeps — the oldest untouched entry is evicted first.
    """

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._cache: OrderedDict[Hashable, Any] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    def _memoized(self, key: Hashable, build) -> Any:
        try:
            value = self._cache[key]
        except KeyError:
            self._misses += 1
            value = build()
            self._cache[key] = value
            if len(self._cache) > self.maxsize:
                self._cache.popitem(last=False)
                self._evictions += 1
            return value
        self._hits += 1
        self._cache.move_to_end(key)
        return value

    # ------------------------------------------------------------------
    def design(
        self, spec: RNNSpec, accel: AccelSpec, pe_efficiency: float = 1.0
    ) -> AcceleratorDesign:
        """Size the accelerator (Phase-II pricing), memoized."""
        key = ("design", spec, accel, pe_efficiency)
        return self._memoized(
            key, lambda: build_design(spec, accel, pe_efficiency=pe_efficiency)
        )

    def hls(
        self, spec: RNNSpec, accel: AccelSpec, pe_efficiency: float = 1.0
    ) -> HLSResult:
        """Run the full HLS flow (graph, schedule, C source), memoized."""
        key = ("hls", spec, accel, pe_efficiency)
        return self._memoized(
            key, lambda: build_hls(spec, accel, pe_efficiency=pe_efficiency)
        )

    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=len(self._cache),
            maxsize=self.maxsize,
        )

    def clear(self) -> None:
        """Drop all cached artifacts and reset the counters."""
        self._cache.clear()
        self._hits = self._misses = self._evictions = 0

    def __contains__(self, key: Hashable) -> bool:
        return key in self._cache

    def __len__(self) -> int:
        return len(self._cache)


_default_engine = Engine()


def default_engine() -> Engine:
    """The process-wide engine used by :class:`repro.api.Design` verbs."""
    return _default_engine


def set_default_engine(engine: Engine) -> Engine:
    """Swap the process-wide engine (returns the previous one)."""
    global _default_engine
    previous = _default_engine
    _default_engine = engine
    return previous
