"""Structured results for the facade's check/bounds verbs.

These dataclasses carry what ``repro fit-check`` / ``repro bounds`` used to
compute inline in ``cli.py``, so the CLI, the examples, and programmatic
callers share one implementation — including the infeasible-range handling
the old CLI lacked (a model whose BRAM *lower* bound exceeds the Fig. 8
*upper* bound has no legal block size on that platform, and saying "at most
0 trials" with exit 0 hid that).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

from repro.config import RNNSpec
from repro.hw.bram import StorageBreakdown
from repro.hw.platform import FPGAPlatform

__all__ = ["FitReport", "BoundsReport"]


@dataclass(frozen=True)
class FitReport:
    """Phase-I Step One: does the whole model fit on-chip? (Sec. VI-B)"""

    spec: RNNSpec
    platform: FPGAPlatform
    bits: int
    breakdown: StorageBreakdown
    fits: bool

    def to_json(self) -> dict:
        """Stable JSON-encodable form (golden regression fixtures)."""
        return {
            "spec": dataclasses.asdict(self.spec),
            "platform": self.platform.name,
            "bits": self.bits,
            "breakdown": dataclasses.asdict(self.breakdown),
            "fits": self.fits,
        }

    def describe(self) -> str:
        b = self.breakdown
        verdict = "FITS" if self.fits else "DOES NOT FIT"
        return "\n".join([
            f"{self.spec.describe()} on {self.platform.name}:",
            f"  weights {b.weights / 8e6:.2f} MB, "
            f"vectors {b.vectors / 8e6:.3f} MB, "
            f"buffers {b.buffers / 8e6:.3f} MB",
            f"  BRAM capacity {self.platform.bram_bytes / 1e6:.2f} MB "
            f"-> {verdict}",
        ])


@dataclass(frozen=True)
class BoundsReport:
    """Phase-I block-size search range: BRAM lower bound, Fig. 8 upper."""

    spec: RNNSpec
    platform_name: str
    bits: int
    lower: int
    upper: int

    @property
    def feasible(self) -> bool:
        """False when no block size both fits BRAM and still buys compute."""
        return self.upper >= self.lower

    @property
    def num_trials(self) -> int:
        """Power-of-two sweep length between the bounds (0 when infeasible)."""
        if not self.feasible:
            return 0
        return int(math.log2(self.upper) - math.log2(self.lower)) + 1

    @property
    def block_sizes(self) -> tuple[int, ...]:
        """The candidate block sizes, largest first (the Phase-I walk order)."""
        if not self.feasible:
            return ()
        return tuple(
            self.upper >> shift for shift in range(self.num_trials)
        )

    def to_json(self) -> dict:
        """Stable JSON-encodable form (golden regression fixtures)."""
        return {
            "spec": dataclasses.asdict(self.spec),
            "platform": self.platform_name,
            "bits": self.bits,
            "lower": self.lower,
            "upper": self.upper,
            "feasible": self.feasible,
            "num_trials": self.num_trials,
            "block_sizes": list(self.block_sizes),
        }

    def describe(self) -> str:
        lines = [
            f"Phase-I block-size search range for {self.spec.describe()}:",
            f"  lower bound (BRAM fit, {self.platform_name}): {self.lower}",
            f"  upper bound (Fig. 8 convergence): {self.upper}",
        ]
        if self.feasible:
            lines.append(
                f"  power-of-2 sweep: at most {self.num_trials} training trials"
            )
        else:
            lines.append(
                f"  INFEASIBLE: the smallest block size fitting "
                f"{self.platform_name} BRAM ({self.lower}) exceeds the "
                f"computation-convergence bound ({self.upper}); pick a "
                f"larger platform or a smaller model"
            )
        return "\n".join(lines)
