"""`repro.api` — the library's front door.

One coherent facade over the whole E-RNN flow:

* :class:`Design` — a fluent, immutable builder that compiles to the frozen
  ``(RNNSpec, AccelSpec)`` pair and exposes every verb of the paper's
  workflow as a chained call::

      from repro.api import Design

      design = (Design.lstm(1024).blocks(8).peephole().project(512)
                      .on("XCKU060").bits(12))
      design.fit_check()     # Phase-I Step One: BRAM sanity check
      design.bounds()        # Phase-I block-size search range
      design.price()         # Phase-II sizing: latency / FPS / power
      design.codegen()       # the HLS flow: schedule + generated C
      design.compress(model, dataset)       # ADMM compression (Fig. 6)
      design.optimize(trainer, baseline_per=20.01)  # Phase I + II

* :class:`Engine` — a keyed LRU cache over built artifacts, so sweeps and
  benchmarks that revisit a spec pay for the build once; optionally backed
  by a persistent :class:`DiskCache` shared across processes and sessions.
* :class:`Sweep` — parallel design-space exploration over any set of design
  axes, returning an :class:`ExplorationResult` with Pareto-frontier
  extraction, top-k selection, and text/CSV/JSON reports::

      from repro.api import Design, Sweep

      result = (Sweep(Design.lstm(1024).peephole().project(512))
                .over(blocks=[4, 8, 16], bits=[8, 12, 16],
                      platform=["ADM-PCIE-7V3", "XCKU060"])
                .run(mode="thread"))
      result.pareto()          # PER proxy vs latency frontier
      result.top_k(3, "fps")
      print(result.describe())

* the component registries (:data:`PLATFORM_REGISTRY`, :data:`CELL_REGISTRY`,
  :data:`ACTIVATION_REGISTRY`) with their ``register_*`` hooks.

The module body stays import-light (registries only); the heavy façade
classes load on first attribute access so that low-level modules can import
``repro.api.registry`` during package initialization without cycles.
"""

from __future__ import annotations

from repro.api.registry import (
    ACTIVATION_REGISTRY,
    CELL_REGISTRY,
    PLATFORM_REGISTRY,
    ActivationInfo,
    CellInfo,
    Registry,
    register_activation,
    register_cell,
    register_platform,
)

__all__ = [
    "Design",
    "Engine",
    "CacheStats",
    "default_engine",
    "set_default_engine",
    "DiskCache",
    "default_cache_root",
    "Sweep",
    "Candidate",
    "PointMetrics",
    "EvaluatedPoint",
    "ExplorationResult",
    "FitReport",
    "BoundsReport",
    "Registry",
    "CellInfo",
    "ActivationInfo",
    "PLATFORM_REGISTRY",
    "CELL_REGISTRY",
    "ACTIVATION_REGISTRY",
    "register_platform",
    "register_cell",
    "register_activation",
]

# Lazily-exported heavy attributes (PEP 562): importing them at body level
# would cycle back into repro.config / repro.hw during package init.
_LAZY = {
    "Design": "repro.api.design",
    "Engine": "repro.api.engine",
    "CacheStats": "repro.api.engine",
    "default_engine": "repro.api.engine",
    "set_default_engine": "repro.api.engine",
    "DiskCache": "repro.api.diskcache",
    "default_cache_root": "repro.api.diskcache",
    "Sweep": "repro.api.explorer",
    "Candidate": "repro.api.explorer",
    "PointMetrics": "repro.api.explorer",
    "EvaluatedPoint": "repro.api.explorer",
    "ExplorationResult": "repro.api.explorer",
    "FitReport": "repro.api.reports",
    "BoundsReport": "repro.api.reports",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
