"""The fluent ``Design`` builder: one immutable object, six verbs.

``Design`` is the facade's session type.  Construction verbs each return a
*new* frozen instance (so partial designs can be shared and forked safely
in sweeps), and the whole object compiles down to the library's frozen
``(RNNSpec, AccelSpec)`` pair on demand:

>>> from repro.api import Design
>>> d = (Design.lstm(1024).blocks(8).peephole().project(512)
...            .on("XCKU060").bits(12))
>>> d.fit_check().fits
True
>>> d.bounds().num_trials
4
>>> d.price().fps           # cached by the shared Engine
>>> d.codegen().code        # ditto
>>> d.compress(dense_model, dataset)
>>> d.optimize(trainer, baseline_per=20.01)

Every action verb routes hardware builds through an
:class:`repro.api.engine.Engine` (the process default unless ``.using()``
pins one), so repeated pricing in sweeps and benchmarks is O(1) after the
first build.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.api.engine import Engine, default_engine
from repro.api.registry import CELL_REGISTRY
from repro.api.reports import BoundsReport, FitReport
from repro.config import AccelSpec, RNNSpec

if TYPE_CHECKING:
    from repro.core.ernn import ERNNResult
    from repro.core.flow import CompressionResult
    from repro.core.phase1 import PhaseIConfig, Trainer
    from repro.core.phase2 import PhaseIIConfig
    from repro.hls.framework import HLSResult
    from repro.hw.accelerator import AcceleratorDesign

__all__ = ["Design"]


@dataclass(frozen=True)
class Design:
    """An immutable, chainable description of one E-RNN design point."""

    cell_type: str = "lstm"
    layer_sizes: tuple[int, ...] = (1024,)
    input_size: int = 153
    output_size: int = 39
    block_sizes: tuple[int, ...] = ()
    io_block_size: int | None = None
    use_peephole: bool = False
    projection_size: int | None = None
    platform: str = "XCKU060"
    weight_bits: int = 12
    input_bits: int = 12
    clock_mhz: float = 200.0
    pwl_segments: int = 16
    num_compute_units: int | None = None
    pe_efficiency: float = 1.0
    engine: Engine | None = field(default=None, compare=False)

    # -- constructors ---------------------------------------------------
    @classmethod
    def lstm(cls, *layer_sizes: int) -> "Design":
        """Start an LSTM design: ``Design.lstm(1024)`` or ``lstm(1024, 1024)``."""
        return cls.cell("lstm", *layer_sizes)

    @classmethod
    def gru(cls, *layer_sizes: int) -> "Design":
        """Start a GRU design."""
        return cls.cell("gru", *layer_sizes)

    @classmethod
    def cell(cls, cell_type: str, *layer_sizes: int) -> "Design":
        """Start a design with any registered cell type."""
        CELL_REGISTRY.get(cell_type)  # fail fast on unknown cells
        return cls(
            cell_type=cell_type,
            layer_sizes=tuple(layer_sizes) if layer_sizes else (1024,),
        )

    @classmethod
    def from_specs(cls, spec: RNNSpec, accel: AccelSpec) -> "Design":
        """Lift an existing frozen spec pair into the fluent world."""
        return cls(
            cell_type=spec.cell_type,
            layer_sizes=spec.layer_sizes,
            input_size=spec.input_size,
            output_size=spec.output_size,
            block_sizes=spec.block_sizes,
            io_block_size=spec.io_block_size,
            use_peephole=spec.peephole,
            projection_size=spec.projection_size,
            platform=accel.platform,
            weight_bits=accel.weight_bits,
            input_bits=accel.input_bits,
            clock_mhz=accel.clock_mhz,
            pwl_segments=accel.pwl_segments,
            num_compute_units=accel.num_compute_units,
        )

    # -- model-side verbs ----------------------------------------------
    def _replace(self, **changes: Any) -> "Design":
        return dataclasses.replace(self, **changes)

    def layers(self, *layer_sizes: int) -> "Design":
        """Set the hidden sizes, one per layer."""
        return self._replace(layer_sizes=tuple(layer_sizes))

    def with_cell(self, cell_type: str) -> "Design":
        """Switch the cell type in place (the Phase-I LSTM→GRU move).

        Options the target cell does not support (GRU has neither peepholes
        nor a projection layer) are dropped, mirroring
        :meth:`repro.config.RNNSpec.with_cell_type` — so sweeps can put the
        cell type on an axis without manufacturing invalid combinations.
        """
        cell = CELL_REGISTRY.get(cell_type)
        return self._replace(
            cell_type=cell_type,
            use_peephole=self.use_peephole and cell.supports_peephole,
            projection_size=(
                self.projection_size if cell.supports_projection else None
            ),
        )

    def blocks(self, *block_sizes: int) -> "Design":
        """Set circulant block sizes: one uniform value or one per layer."""
        if len(block_sizes) == 1:
            block_sizes = tuple(block_sizes[0] for _ in self.layer_sizes)
        return self._replace(block_sizes=tuple(block_sizes))

    def dense(self) -> "Design":
        """Drop compression — the paper's dense baseline rows."""
        return self._replace(block_sizes=(), io_block_size=None)

    def io_block(self, block_size: int | None) -> "Design":
        """Coarser block size for the non-recurrent I/O matrices (Step Three)."""
        return self._replace(io_block_size=block_size)

    def peephole(self, enabled: bool = True) -> "Design":
        """Toggle LSTM peephole connections."""
        return self._replace(use_peephole=enabled)

    def project(self, projection_size: int | None) -> "Design":
        """Set the LSTM projection layer width (``None`` disables)."""
        return self._replace(projection_size=projection_size)

    def io(self, input_size: int | None = None, output_size: int | None = None) -> "Design":
        """Set the feature and classifier dimensions."""
        changes: dict[str, Any] = {}
        if input_size is not None:
            changes["input_size"] = input_size
        if output_size is not None:
            changes["output_size"] = output_size
        return self._replace(**changes)

    # -- hardware-side verbs -------------------------------------------
    def on(self, platform: str) -> "Design":
        """Target a registered FPGA platform (name or alias)."""
        return self._replace(platform=platform)

    def bits(self, weight_bits: int, input_bits: int | None = None) -> "Design":
        """Set the fixed-point widths (inputs default to the weight width)."""
        return self._replace(
            weight_bits=weight_bits,
            input_bits=input_bits if input_bits is not None else weight_bits,
        )

    def clock(self, clock_mhz: float) -> "Design":
        """Set the target clock frequency."""
        return self._replace(clock_mhz=clock_mhz)

    def pwl(self, segments: int) -> "Design":
        """Size the piecewise-linear activation tables (Sec. VIII-B1)."""
        return self._replace(pwl_segments=segments)

    def compute_units(self, num_cus: int | None) -> "Design":
        """Pin the CU count (``None`` restores the Table III default of 3)."""
        return self._replace(num_compute_units=num_cus)

    def efficiency(self, pe_efficiency: float) -> "Design":
        """Scale PE throughput (the C-LSTM comparison knob)."""
        return self._replace(pe_efficiency=pe_efficiency)

    def using(self, engine: Engine) -> "Design":
        """Route this design's builds through a specific engine."""
        return self._replace(engine=engine)

    # -- compilation ----------------------------------------------------
    def rnn_spec(self) -> RNNSpec:
        """Compile the model half to the frozen :class:`RNNSpec`."""
        return RNNSpec(
            cell_type=self.cell_type,
            input_size=self.input_size,
            layer_sizes=self.layer_sizes,
            output_size=self.output_size,
            block_sizes=self.block_sizes,
            peephole=self.use_peephole,
            projection_size=self.projection_size,
            io_block_size=self.io_block_size,
        )

    def accel_spec(self) -> AccelSpec:
        """Compile the hardware half to the frozen :class:`AccelSpec`."""
        return AccelSpec(
            platform=self.platform,
            weight_bits=self.weight_bits,
            input_bits=self.input_bits,
            clock_mhz=self.clock_mhz,
            pwl_segments=self.pwl_segments,
            num_compute_units=self.num_compute_units,
        )

    def specs(self) -> tuple[RNNSpec, AccelSpec]:
        return self.rnn_spec(), self.accel_spec()

    def describe(self) -> str:
        spec = self.rnn_spec()
        return f"{spec.describe()} on {self.platform} @ {self.clock_mhz:.0f} MHz"

    def _engine(self) -> Engine:
        return self.engine if self.engine is not None else default_engine()

    # -- action verbs ---------------------------------------------------
    def fit_check(self) -> FitReport:
        """Phase-I Step One: BRAM sanity check (Sec. VI-B)."""
        from repro.hw.bram import fits_bram, storage_breakdown
        from repro.hw.platform import get_platform

        spec = self.rnn_spec()
        platform = get_platform(self.platform)
        return FitReport(
            spec=spec,
            platform=platform,
            bits=self.weight_bits,
            breakdown=storage_breakdown(spec, self.weight_bits),
            fits=fits_bram(spec, platform, self.weight_bits),
        )

    def bounds(self) -> BoundsReport:
        """Phase-I block-size search range (BRAM lower, Fig. 8 upper)."""
        from repro.core.cost_model import recommended_block_upper_bound
        from repro.hw.bram import min_block_size_for_bram
        from repro.hw.platform import get_platform

        dense = self.rnn_spec().with_block_sizes(())
        return BoundsReport(
            spec=dense,
            platform_name=get_platform(self.platform).name,
            bits=self.weight_bits,
            lower=min_block_size_for_bram(
                dense, get_platform(self.platform), self.weight_bits
            ),
            upper=recommended_block_upper_bound(max(self.layer_sizes)),
        )

    def price(self) -> "AcceleratorDesign":
        """Phase-II hardware sizing: latency / FPS / power (cached)."""
        spec, accel = self.specs()
        return self._engine().design(spec, accel, self.pe_efficiency)

    def codegen(self, output: str | Path | None = None) -> "HLSResult":
        """Run the HLS flow (cached); optionally write the C source."""
        spec, accel = self.specs()
        result = self._engine().hls(spec, accel, self.pe_efficiency)
        if output is not None:
            Path(output).write_text(result.code)
        return result

    def compress(
        self,
        dense_model: Any,
        dataset: Any,
        **flow_kwargs: Any,
    ) -> "CompressionResult":
        """ADMM-compress a pretrained dense model to this design's blocks.

        Wraps :func:`repro.core.flow.ernn_compress` (Fig. 6); keyword
        arguments (``admm_config``, ``admm_train``, ``retrain``, ``rng``)
        pass through.
        """
        from repro.core.flow import ernn_compress

        return ernn_compress(dense_model, self.rnn_spec(), dataset, **flow_kwargs)

    def optimize(
        self,
        trainer: "Trainer",
        baseline_per: float | None = None,
        phase1_config: "PhaseIConfig | None" = None,
        phase2_config: "PhaseIIConfig | None" = None,
        quant_eval_factory: Any = None,
    ) -> "ERNNResult":
        """Run the full two-phase flow from this design's dense baseline.

        The design's *structure* (cell, layers, I/O, peephole, projection)
        seeds Phase I; its *hardware* fields (platform, bits) become the
        default search configuration unless explicit configs are given.
        """
        from repro.core.ernn import run_two_phase_flow
        from repro.core.phase1 import PhaseIConfig

        baseline = self.rnn_spec().with_block_sizes(()).with_io_block_size(None)
        if phase1_config is None:
            phase1_config = PhaseIConfig(
                platform=self.platform, weight_bits=self.weight_bits
            )
        return run_two_phase_flow(
            baseline,
            trainer,
            baseline_per=baseline_per,
            phase1_config=phase1_config,
            phase2_config=phase2_config,
            quant_eval_factory=quant_eval_factory,
        )
