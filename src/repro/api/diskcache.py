"""Persistent content-keyed JSON cache shared across processes and sessions.

The in-memory LRU of :class:`repro.api.engine.Engine` makes repeated builds
free *within* one process; design-space sweeps, benchmark reruns, and CI
jobs pay the cold cost again every time the interpreter restarts.
:class:`DiskCache` is the second tier: a flat directory of JSON artifacts,
content-keyed by SHA-256 over a canonical encoding of the cache key (for the
engine that key is ``(kind, RNNSpec, AccelSpec, pe_efficiency)``, mirroring
the LRU), so equal specs land on the same file no matter which process or
machine computed them first.

Concurrent writers are safe without locks: every ``put`` writes to a
process/thread-unique temporary file in the destination directory and
publishes it with :func:`os.replace`, which is atomic on POSIX — readers
either see the previous complete artifact or the new complete artifact,
never a torn write.  A corrupt or truncated file (e.g. from a crash before
the rename) reads as a miss and is rebuilt.

Location resolution, in priority order:

1. an explicit ``root`` argument;
2. the ``REPRO_CACHE_DIR`` environment variable;
3. ``$XDG_CACHE_HOME/repro-ernn`` (defaulting to ``~/.cache/repro-ernn``).

Setting ``REPRO_NO_CACHE=1`` makes :func:`DiskCache.from_env` return
``None``, which every caller treats as "no disk tier".
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import threading
from pathlib import Path
from typing import Any

from repro.config import AccelSpec, RNNSpec
from repro.errors import ReproError
from repro.hw.accelerator import AcceleratorDesign
from repro.hw.cu import CUTiming
from repro.hw.platform import FPGAPlatform, ResourceVector

__all__ = [
    "DiskCache",
    "default_cache_root",
    "encode_accelerator_design",
    "decode_accelerator_design",
]

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable disabling all disk caching when set non-empty.
NO_CACHE_ENV = "REPRO_NO_CACHE"

_tmp_counter = itertools.count()


def default_cache_root() -> Path:
    """The resolved cache directory (env override, then XDG, then ~)."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-ernn"


def _canonical(value: Any) -> Any:
    """Reduce a key part to deterministic JSON-encodable primitives."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        encoded = {
            name: _canonical(getattr(value, name))
            for name in sorted(f.name for f in dataclasses.fields(value))
        }
        encoded["__type__"] = type(value).__name__
        return encoded
    if isinstance(value, (tuple, list)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot build a cache key from {type(value).__name__}")


class DiskCache:
    """A namespaced directory of atomic JSON artifacts.

    Keys are opaque hex strings from :meth:`key`; values are anything
    ``json.dumps`` accepts.  One root directory can hold several namespaces
    (the engine's built designs, the experiment harness's measured PERs)
    without key collisions.
    """

    def __init__(
        self,
        root: Path | str | None = None,
        namespace: str = "engine",
    ):
        if not namespace or any(sep in namespace for sep in "/\\"):
            raise ValueError(f"invalid cache namespace: {namespace!r}")
        self.root = Path(root).expanduser() if root is not None else default_cache_root()
        self.namespace = namespace
        self.path = self.root / namespace
        self._lock = threading.Lock()
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock

    @classmethod
    def from_env(
        cls, root: Path | str | None = None, namespace: str = "engine"
    ) -> "DiskCache | None":
        """Build a cache honouring ``REPRO_NO_CACHE`` (returns ``None`` when set)."""
        if os.environ.get(NO_CACHE_ENV):
            return None
        return cls(root=root, namespace=namespace)

    # -- keys -----------------------------------------------------------
    def key(self, *parts: Any) -> str:
        """Content key: SHA-256 over the canonical JSON of ``parts``.

        Frozen dataclasses (``RNNSpec``, ``AccelSpec``, ...) are encoded
        field-by-field with their type name, so two specs are equal keys
        exactly when they are equal values.
        """
        payload = json.dumps(
            _canonical(list(parts)), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _path_for(self, key: str) -> Path:
        return self.path / key[:2] / f"{key}.json"

    # -- operations -----------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        """Read one artifact; any read/parse failure is a miss."""
        path = self._path_for(key)
        try:
            value = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            with self._lock:
                self._misses += 1
            return default
        with self._lock:
            self._hits += 1
        return value

    def put(self, key: str, value: Any) -> Path:
        """Atomically publish one artifact (concurrent writers are safe)."""
        path = self._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / (
            f".{key}.{os.getpid()}.{threading.get_ident()}"
            f".{next(_tmp_counter)}.tmp"
        )
        try:
            tmp.write_text(json.dumps(value, sort_keys=True))
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        return path

    def delete(self, key: str) -> bool:
        try:
            self._path_for(key).unlink()
            return True
        except OSError:
            return False

    def clear(self) -> int:
        """Remove every artifact in this namespace; returns the count.

        Also sweeps any ``*.tmp`` litter a crashed writer left behind
        (litter does not count toward the returned number).
        """
        removed = 0
        if self.path.exists():
            for file in self.path.glob("*/*.json"):
                try:
                    file.unlink()
                    removed += 1
                except OSError:
                    pass
            for litter in self.path.glob("*/*.tmp"):
                try:
                    litter.unlink()
                except OSError:
                    pass
        return removed

    # -- introspection --------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return self._path_for(key).exists()

    def __len__(self) -> int:
        if not self.path.exists():
            return 0
        return sum(1 for _ in self.path.glob("*/*.json"))

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    def describe(self) -> str:
        with self._lock:
            hits, misses = self._hits, self._misses
        return (
            f"disk cache [{self.namespace}] at {self.path}: "
            f"{len(self)} artifacts, {hits} hits / {misses} misses"
        )


# ----------------------------------------------------------------------
# Codecs for the engine's built artifacts.
#
# AcceleratorDesign is a tree of small frozen dataclasses, so a plain
# field dictionary round-trips it exactly; HLSResult is not disk-cached
# (its operation graph is a networkx object and its generated C is cheap
# to re-emit once the design half is warm).
# ----------------------------------------------------------------------

_CODEC_VERSION = 1


def encode_accelerator_design(design: AcceleratorDesign) -> dict:
    """JSON-encodable payload reconstructing ``design`` exactly."""
    return {
        "version": _CODEC_VERSION,
        "spec": dataclasses.asdict(design.spec),
        "accel": dataclasses.asdict(design.accel),
        "platform": dataclasses.asdict(design.platform),
        "num_pes": design.num_pes,
        "num_cus": design.num_cus,
        "pes_per_cu": design.pes_per_cu,
        "timing": dataclasses.asdict(design.timing),
        "resources_used": dataclasses.asdict(design.resources_used),
    }


def decode_accelerator_design(payload: dict) -> AcceleratorDesign | None:
    """Inverse of :func:`encode_accelerator_design` (``None`` on mismatch)."""
    if not isinstance(payload, dict) or payload.get("version") != _CODEC_VERSION:
        return None
    try:
        spec_fields = dict(payload["spec"])
        spec_fields["layer_sizes"] = tuple(spec_fields["layer_sizes"])
        spec_fields["block_sizes"] = tuple(spec_fields["block_sizes"])
        return AcceleratorDesign(
            spec=RNNSpec(**spec_fields),
            accel=AccelSpec(**payload["accel"]),
            platform=FPGAPlatform(**payload["platform"]),
            num_pes=int(payload["num_pes"]),
            num_cus=int(payload["num_cus"]),
            pes_per_cu=int(payload["pes_per_cu"]),
            timing=CUTiming(**payload["timing"]),
            resources_used=ResourceVector(**payload["resources_used"]),
        )
    except (KeyError, TypeError, ValueError, ReproError):
        return None
