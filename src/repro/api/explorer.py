"""Parallel design-space exploration: the paper's Fig. 8 / Tables 3-4 sweep
as a first-class API.

E-RNN's contribution is a *design optimization flow*: sweep block size,
quantization, and platform, then pick the best PER-vs-hardware trade-off.
:class:`Sweep` declares that grid over a base :class:`repro.api.Design`,
evaluates every candidate (serially, in a thread pool, or in a process
pool), and returns an :class:`ExplorationResult` with Pareto-frontier
extraction, top-k selection, and text/CSV/JSON reports:

>>> from repro.api import Design, Sweep
>>> result = (Sweep(Design.lstm(1024).peephole().project(512))
...           .over(blocks=[4, 8, 16], bits=[8, 12, 16],
...                 platform=["ADM-PCIE-7V3", "XCKU060"])
...           .run(mode="thread"))
>>> len(result)
18
>>> result.pareto()                  # PER proxy vs latency frontier
>>> result.top_k(3, key="fps")
>>> print(result.describe())

Determinism is a hard guarantee: candidates are enumerated in declaration
order (``itertools.product`` over the axes), ``.random(n, seed=...)``
subsamples by seeded index choice, and results are returned in candidate
order regardless of completion order — so a serial run and a parallel run
of the same sweep produce byte-identical reports (test-enforced).

Evaluation is cheap-model-only (BRAM fit, Phase-I bounds, the Fig. 8
multiplication count, the Tables I-II PER proxy, and the Phase-II
accelerator sizing); training never runs here.  Builds route through a
shared thread-safe :class:`repro.api.engine.Engine`, optionally backed by a
:class:`repro.api.diskcache.DiskCache` so repeated sweeps across processes
and sessions are warm.
"""

from __future__ import annotations

import dataclasses
import io
import itertools
import json
import multiprocessing
import os
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

from repro.api.design import Design
from repro.api.diskcache import NO_CACHE_ENV, DiskCache
from repro.api.engine import CacheStats, Engine, default_engine
from repro.core.cost_model import normalized_multiplications, per_proxy
from repro.core.parallel import EXECUTION_MODES, map_ordered
from repro.errors import ConfigError, ReproError

__all__ = [
    "Sweep",
    "Candidate",
    "PointMetrics",
    "EvaluatedPoint",
    "ExplorationResult",
    "SWEEP_AXES",
]


# ----------------------------------------------------------------------
# Axes: name -> how one value rewrites the base design.
# ----------------------------------------------------------------------

def _set_blocks(design: Design, value: Any) -> Design:
    if value in (None, 0):
        return design.dense()
    if isinstance(value, (tuple, list)):
        return design.blocks(*value)
    return design.blocks(value)


def _set_layers(design: Design, value: Any) -> Design:
    if isinstance(value, (tuple, list)):
        return design.layers(*value)
    return design.layers(value)


#: Sweepable axes.  Values are applied through the fluent verbs, so an axis
#: behaves exactly like hand-writing the chained call.
SWEEP_AXES: dict[str, Callable[[Design, Any], Design]] = {
    "blocks": _set_blocks,
    "layers": _set_layers,
    "cell": lambda d, v: d.with_cell(v),
    "platform": lambda d, v: d.on(v),
    "bits": lambda d, v: d.bits(v),
    "clock": lambda d, v: d.clock(v),
    "pwl": lambda d, v: d.pwl(v),
    "peephole": lambda d, v: d.peephole(v),
    "projection": lambda d, v: d.project(v),
    "io_block": lambda d, v: d.io_block(v),
    "compute_units": lambda d, v: d.compute_units(v),
    "efficiency": lambda d, v: d.efficiency(v),
}


#: Axis application order: ``layers`` first so a scalar ``blocks`` value
#: expands against the candidate's *final* layer count, ``cell`` last so
#: the switch can drop options the target cell does not support (GRU +
#: projection) no matter where the axes were declared.  Ties keep
#: declaration order.
_AXIS_PRIORITY = {"layers": 0, "cell": 2}


@dataclass(frozen=True)
class Candidate:
    """One grid point: the base design with this candidate's axis values.

    ``error`` is set when applying the axis values themselves failed (e.g.
    an unknown cell name) — the design is then the partial result and the
    sweep records the point as failed instead of aborting.
    """

    index: int
    overrides: tuple[tuple[str, Any], ...]
    design: Design
    error: str | None = None


@dataclass(frozen=True)
class PointMetrics:
    """Everything the cheap models say about one candidate.

    The first block is always available; the pricing block is ``None`` when
    Phase-II sizing failed (e.g. the model does not fit the platform).
    """

    fits: bool
    weight_megabytes: float
    feasible: bool
    bound_lower: int
    bound_upper: int
    normalized_mults: float
    per_proxy: float
    latency_us: float | None = None
    fps: float | None = None
    power_watts: float | None = None
    energy_efficiency: float | None = None
    num_pes: int | None = None
    num_cus: int | None = None
    bram_utilization: float | None = None
    dsp_utilization: float | None = None

    @property
    def priced(self) -> bool:
        return self.latency_us is not None


@dataclass(frozen=True)
class EvaluatedPoint:
    """A candidate plus its metrics (or the error that stopped it)."""

    index: int
    overrides: tuple[tuple[str, Any], ...]
    spec: Any  # RNNSpec | None (None when the combination does not compile)
    accel: Any  # AccelSpec | None
    pe_efficiency: float
    metrics: PointMetrics | None
    error: str | None

    @property
    def ok(self) -> bool:
        return self.error is None and self.metrics is not None and self.metrics.priced

    def label(self) -> str:
        if self.overrides:
            return ", ".join(f"{name}={value}" for name, value in self.overrides)
        return f"point {self.index}"

    def metric(self, name: str) -> float | None:
        if self.metrics is None:
            return None
        return getattr(self.metrics, name)

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "overrides": [[name, value] for name, value in self.overrides],
            "spec": dataclasses.asdict(self.spec) if self.spec is not None else None,
            "accel": dataclasses.asdict(self.accel) if self.accel is not None else None,
            "pe_efficiency": self.pe_efficiency,
            "metrics": (
                dataclasses.asdict(self.metrics) if self.metrics is not None else None
            ),
            "error": self.error,
        }


# ----------------------------------------------------------------------
# Evaluation (shared by serial, thread, and process paths).
# ----------------------------------------------------------------------

#: Bump when PointMetrics or the evaluation semantics change, so stale
#: persisted points never leak into new reports.
_POINT_CODEC_VERSION = 1


def _decode_cached_point(payload: Any) -> tuple[PointMetrics | None, str | None] | None:
    if not isinstance(payload, dict) or payload.get("version") != _POINT_CODEC_VERSION:
        return None
    try:
        metrics = payload["metrics"]
        if metrics is not None:
            metrics = PointMetrics(**metrics)
        error = payload["error"]
    except (KeyError, TypeError):
        return None
    return metrics, error


def _evaluate_point(
    index: int,
    overrides: tuple[tuple[str, Any], ...],
    spec,
    accel,
    pe_efficiency: float,
    engine: Engine,
    point_cache: DiskCache | None = None,
) -> EvaluatedPoint:
    """Evaluate one candidate, memoized (when a cache is attached) on disk.

    The point cache stores the *whole* metrics block keyed on the frozen
    specs, so a warm rerun skips fit/bounds/cost-model/pricing entirely.
    JSON round-trips finite floats exactly, which preserves the explorer's
    byte-identical-reports guarantee across cache states.
    """
    cache_key = None
    if point_cache is not None:
        cache_key = point_cache.key(
            "point", _POINT_CODEC_VERSION, spec, accel, pe_efficiency
        )
        cached = _decode_cached_point(point_cache.get(cache_key))
        if cached is not None:
            metrics, error = cached
            return EvaluatedPoint(
                index, overrides, spec, accel, pe_efficiency, metrics, error
            )

    point = _compute_point(index, overrides, spec, accel, pe_efficiency, engine)
    if cache_key is not None:
        try:
            point_cache.put(cache_key, {
                "version": _POINT_CODEC_VERSION,
                "metrics": (
                    dataclasses.asdict(point.metrics)
                    if point.metrics is not None else None
                ),
                "error": point.error,
            })
        except (OSError, TypeError, ValueError):
            pass
    return point


def _compute_point(
    index: int,
    overrides: tuple[tuple[str, Any], ...],
    spec,
    accel,
    pe_efficiency: float,
    engine: Engine,
) -> EvaluatedPoint:
    design = Design.from_specs(spec, accel).using(engine).efficiency(pe_efficiency)
    try:
        fit = design.fit_check()
        blocks = spec.effective_block_sizes
        norm = sum(
            normalized_multiplications(layer, block)
            for layer, block in zip(spec.layer_sizes, blocks)
        ) / len(spec.layer_sizes)
        per = per_proxy(spec, accel.weight_bits)
    except ReproError as exc:
        return EvaluatedPoint(
            index, overrides, spec, accel, pe_efficiency, None,
            f"{type(exc).__name__}: {exc}",
        )

    # Bounds can fail outright (no block size fits BRAM at all); that is a
    # legitimate data point, not an evaluation error.
    try:
        bounds = design.bounds()
        feasible, lower, upper = bounds.feasible, bounds.lower, bounds.upper
    except ReproError:
        feasible, lower, upper = False, 0, 0

    error = None
    price_fields: dict[str, Any] = {}
    try:
        priced = design.price()
        utilization = priced.utilization
        price_fields = {
            "latency_us": priced.latency_us,
            "fps": priced.fps,
            "power_watts": priced.power_watts,
            "energy_efficiency": priced.energy_efficiency,
            "num_pes": priced.num_pes,
            "num_cus": priced.num_cus,
            "bram_utilization": utilization["bram"],
            "dsp_utilization": utilization["dsp"],
        }
    except ReproError as exc:
        error = f"{type(exc).__name__}: {exc}"

    metrics = PointMetrics(
        fits=fit.fits,
        weight_megabytes=fit.breakdown.weights / 8e6,
        feasible=feasible,
        bound_lower=lower,
        bound_upper=upper,
        normalized_mults=norm,
        per_proxy=per,
        **price_fields,
    )
    return EvaluatedPoint(
        index, overrides, spec, accel, pe_efficiency, metrics, error
    )


#: Per-process caches for the process-pool path, keyed by disk location so
#: every worker in one sweep shares one warm cache directory.
_WORKER_ENGINES: dict[str | None, Engine] = {}
_WORKER_POINT_CACHES: dict[str, DiskCache] = {}


def _worker_engine(disk_root: str | None) -> Engine:
    engine = _WORKER_ENGINES.get(disk_root)
    if engine is None:
        disk = DiskCache(root=disk_root, namespace="engine") if disk_root else None
        engine = Engine(maxsize=256, disk=disk)
        _WORKER_ENGINES[disk_root] = engine
    return engine


def _worker_point_cache(disk_root: str | None) -> DiskCache | None:
    if disk_root is None or os.environ.get(NO_CACHE_ENV):
        return None
    cache = _WORKER_POINT_CACHES.get(disk_root)
    if cache is None:
        cache = DiskCache(root=disk_root, namespace="explorer")
        _WORKER_POINT_CACHES[disk_root] = cache
    return cache


def _process_evaluate(payload: tuple) -> EvaluatedPoint:
    """Module-level worker so ``ProcessPoolExecutor`` can pickle it."""
    index, overrides, spec, accel, pe_efficiency, disk_root = payload
    return _evaluate_point(
        index, overrides, spec, accel, pe_efficiency,
        _worker_engine(disk_root), _worker_point_cache(disk_root),
    )


# ----------------------------------------------------------------------
# The sweep builder.
# ----------------------------------------------------------------------

class Sweep:
    """Declarative grid over a base design, evaluated (optionally) in parallel.

    Immutable in the fluent style: :meth:`over` and :meth:`random` return new
    sweeps, so partial sweeps can be shared and forked like designs.
    """

    def __init__(
        self,
        base: Design | None = None,
        _axes: tuple[tuple[str, tuple[Any, ...]], ...] = (),
        _sample: tuple[int, int] | None = None,
    ):
        self.base = base if base is not None else Design.lstm(1024)
        self._axes = _axes
        self._sample = _sample  # (n, seed)

    # -- construction ---------------------------------------------------
    def over(self, **axes: Sequence[Any]) -> "Sweep":
        """Add axes: ``.over(blocks=[4, 8, 16], platform=[...])``.

        Axes combine as a full cartesian product in declaration order.
        Within one ``over()`` call the keyword order is preserved
        (Python dicts are ordered).
        """
        new_axes = list(self._axes)
        seen = {name for name, _ in new_axes}
        for name, values in axes.items():
            if name not in SWEEP_AXES:
                raise ConfigError(
                    f"unknown sweep axis {name!r}; valid axes: "
                    f"{', '.join(sorted(SWEEP_AXES))}"
                )
            if name in seen:
                raise ConfigError(f"sweep axis {name!r} declared twice")
            values = tuple(values)
            if not values:
                raise ConfigError(f"sweep axis {name!r} has no values")
            new_axes.append((name, values))
            seen.add(name)
        return Sweep(self.base, tuple(new_axes), self._sample)

    def random(self, n: int, seed: int = 0) -> "Sweep":
        """Deterministically subsample the grid to at most ``n`` candidates.

        For large grids this is the paper's "sample the design space" move:
        the seeded choice makes reruns (and serial-vs-parallel comparisons)
        reproducible.
        """
        if n < 1:
            raise ConfigError(f"random sample size must be positive, got {n}")
        return Sweep(self.base, self._axes, (n, seed))

    # -- enumeration ----------------------------------------------------
    @property
    def axes(self) -> tuple[tuple[str, tuple[Any, ...]], ...]:
        return self._axes

    def grid_size(self) -> int:
        """Full cartesian-product size, before any random subsampling."""
        size = 1
        for _, values in self._axes:
            size *= len(values)
        return size

    def __len__(self) -> int:
        size = self.grid_size()
        if self._sample is not None:
            size = min(size, self._sample[0])
        return size

    def candidates(self) -> tuple[Candidate, ...]:
        """The evaluation order: deterministic, declaration-ordered."""
        names = [name for name, _ in self._axes]
        value_lists = [values for _, values in self._axes]
        combos = list(itertools.product(*value_lists))
        if self._sample is not None and len(combos) > self._sample[0]:
            n, seed = self._sample
            chosen = sorted(random.Random(seed).sample(range(len(combos)), n))
            combos = [combos[i] for i in chosen]
        apply_order = sorted(
            range(len(names)),
            key=lambda i: (_AXIS_PRIORITY.get(names[i], 1), i),
        )
        out = []
        for index, combo in enumerate(combos):
            design, error = self.base, None
            for i in apply_order:
                try:
                    design = SWEEP_AXES[names[i]](design, combo[i])
                except (ReproError, TypeError, ValueError) as exc:
                    error = f"{type(exc).__name__}: {exc}"
                    break
            out.append(Candidate(index, tuple(zip(names, combo)), design, error))
        return tuple(out)

    # -- execution ------------------------------------------------------
    def run(
        self,
        mode: str = "thread",
        workers: int | None = None,
        engine: Engine | None = None,
        disk: DiskCache | Path | str | None = None,
    ) -> "ExplorationResult":
        """Evaluate every candidate and return the ordered result.

        ``mode`` is ``"serial"``, ``"thread"`` (default; builds share one
        in-process engine), or ``"process"`` (workers each hold a private
        engine — attach ``disk`` so they share warmth through the
        filesystem).  Results are always in candidate order, so the report
        bytes do not depend on the mode.

        ``disk`` and ``engine`` are mutually exclusive: an engine carries
        its own disk tier (``Engine(disk=...)``), and silently dropping an
        explicit ``disk`` request would cost the caller their warm reruns.
        ``REPRO_NO_CACHE=1`` disables the disk tier either way.
        """
        if mode not in EXECUTION_MODES:
            raise ConfigError(
                f"mode must be serial, thread, or process, got {mode!r}"
            )
        if engine is not None and disk is not None:
            raise ConfigError(
                "pass either engine= or disk=, not both; attach the disk "
                "tier to the engine itself: Engine(disk=...)"
            )
        if engine is None:
            engine = Engine(disk=disk) if disk is not None else default_engine()
        point_cache = (
            DiskCache(root=engine.disk.root, namespace="explorer")
            if engine.disk is not None and not os.environ.get(NO_CACHE_ENV)
            else None
        )

        jobs: list[tuple] = []
        points: dict[int, EvaluatedPoint] = {}
        for candidate in self.candidates():
            try:
                if candidate.error is not None:
                    raise ConfigError(candidate.error)
                spec, accel = candidate.design.specs()
            except ReproError as exc:
                error = (
                    candidate.error
                    if candidate.error is not None
                    else f"{type(exc).__name__}: {exc}"
                )
                points[candidate.index] = EvaluatedPoint(
                    candidate.index, candidate.overrides, None, None,
                    candidate.design.pe_efficiency, None, error,
                )
                continue
            jobs.append(
                (candidate.index, candidate.overrides, spec, accel,
                 candidate.design.pe_efficiency)
            )

        if mode == "process":
            disk_root = str(engine.disk.root) if engine.disk is not None else None
            payloads = [job + (disk_root,) for job in jobs]
            # Prefer fork so workers inherit runtime state — in particular
            # platforms/cells registered in this process, which a spawned
            # worker's fresh import would not know about.
            mp_context = (
                multiprocessing.get_context("fork")
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
            evaluated = map_ordered(
                _process_evaluate, payloads, mode="process",
                workers=workers, mp_context=mp_context,
            )
        else:
            evaluated = map_ordered(
                lambda job: _evaluate_point(*job, engine, point_cache),
                jobs, mode=mode, workers=workers,
            )

        for point in evaluated:
            points[point.index] = point
        ordered = tuple(points[index] for index in sorted(points))
        return ExplorationResult(
            points=ordered,
            axes=self._axes,
            mode=mode,
            engine_stats=engine.stats(),
        )


# ----------------------------------------------------------------------
# Results: Pareto, top-k, reports.
# ----------------------------------------------------------------------

def _objective_getters(
    objectives: Sequence[str],
) -> list[tuple[str, float]]:
    """Parse objective names; a leading ``-`` means maximize."""
    parsed = []
    for name in objectives:
        sign = 1.0
        if name.startswith("-"):
            sign, name = -1.0, name[1:]
        if name not in PointMetrics.__dataclass_fields__:
            raise ConfigError(
                f"unknown objective {name!r}; valid metrics: "
                f"{', '.join(PointMetrics.__dataclass_fields__)}"
            )
        parsed.append((name, sign))
    return parsed


@dataclass(frozen=True)
class ExplorationResult:
    """Ordered sweep results with frontier extraction and reports."""

    points: tuple[EvaluatedPoint, ...]
    axes: tuple[tuple[str, tuple[Any, ...]], ...]
    mode: str = field(compare=False, default="serial")
    engine_stats: CacheStats | None = field(compare=False, default=None)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[EvaluatedPoint]:
        return iter(self.points)

    def ok(self) -> tuple[EvaluatedPoint, ...]:
        """Fully priced, error-free points (candidates worth ranking)."""
        return tuple(p for p in self.points if p.ok)

    def failed(self) -> tuple[EvaluatedPoint, ...]:
        return tuple(p for p in self.points if p.error is not None)

    # -- selection ------------------------------------------------------
    def pareto(
        self, objectives: Sequence[str] = ("per_proxy", "latency_us")
    ) -> tuple[EvaluatedPoint, ...]:
        """Non-dominated points, minimizing each objective.

        Prefix an objective with ``-`` to maximize it (``"-fps"``).  The
        default frontier is the paper's Fig. 8 / Table III trade-off:
        accuracy proxy against frame latency.
        """
        parsed = _objective_getters(objectives)
        candidates = [
            (p, tuple(sign * p.metric(name) for name, sign in parsed))
            for p in self.ok()
        ]
        front = []
        for point, values in candidates:
            dominated = False
            for _, other in candidates:
                if other is values:
                    continue
                if all(o <= v for o, v in zip(other, values)) and any(
                    o < v for o, v in zip(other, values)
                ):
                    dominated = True
                    break
            if not dominated:
                front.append(point)
        return tuple(front)

    def top_k(
        self, k: int = 5, key: str = "fps", largest: bool = True
    ) -> tuple[EvaluatedPoint, ...]:
        """The ``k`` best priced points by one metric (ties break by index)."""
        (name, sign), = _objective_getters([key])
        ranked = sorted(
            self.ok(),
            key=lambda p: ((-sign if largest else sign) * p.metric(name), p.index),
        )
        return tuple(ranked[:k])

    def best(self, key: str = "fps", largest: bool = True) -> EvaluatedPoint | None:
        top = self.top_k(1, key=key, largest=largest)
        return top[0] if top else None

    # -- reports --------------------------------------------------------
    def to_json(self) -> str:
        """Canonical JSON: byte-identical for identical sweep outcomes."""
        payload = {
            "axes": [[name, list(values)] for name, values in self.axes],
            "points": [point.to_json() for point in self.points],
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    _CSV_COLUMNS = (
        "index", "design", "platform", "bits", "fits", "feasible",
        "per_proxy", "normalized_mults", "latency_us", "fps",
        "power_watts", "energy_efficiency", "num_pes", "bram_utilization",
        "error",
    )

    def to_csv(self) -> str:
        """Flat CSV of every point (spreadsheet-ready, deterministic)."""
        import csv

        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self._CSV_COLUMNS)
        for p in self.points:
            m = p.metrics
            writer.writerow([
                p.index,
                p.spec.describe() if p.spec is not None else "",
                p.accel.platform if p.accel is not None else "",
                p.accel.weight_bits if p.accel is not None else "",
                "" if m is None else m.fits,
                "" if m is None else m.feasible,
                "" if m is None else f"{m.per_proxy:.4f}",
                "" if m is None else f"{m.normalized_mults:.6f}",
                "" if m is None or m.latency_us is None else f"{m.latency_us:.4f}",
                "" if m is None or m.fps is None else f"{m.fps:.1f}",
                "" if m is None or m.power_watts is None else f"{m.power_watts:.3f}",
                "" if m is None or m.energy_efficiency is None
                else f"{m.energy_efficiency:.2f}",
                "" if m is None or m.num_pes is None else m.num_pes,
                "" if m is None or m.bram_utilization is None
                else f"{m.bram_utilization:.4f}",
                p.error or "",
            ])
        return buffer.getvalue()

    def describe(self, k: int = 5, stats: bool = False) -> str:
        """Human-readable sweep summary: counts, frontier, top-k.

        Deterministic by default (byte-identical across execution modes,
        like :meth:`to_json`/:meth:`to_csv`); ``stats=True`` appends the
        engine's cache counters, which *do* depend on mode and cache state.
        """
        lines = [
            f"Design-space sweep: {len(self.points)} candidates "
            f"({len(self.ok())} priced, {len(self.failed())} failed)",
        ]
        if self.axes:
            lines.append(
                "  axes: " + "; ".join(
                    f"{name} in {list(values)}" for name, values in self.axes
                )
            )
        front = self.pareto()
        if front:
            lines.append(
                f"  Pareto frontier (PER proxy vs latency): {len(front)} points"
            )
            for p in front:
                m = p.metrics
                lines.append(
                    f"    [{p.index:3d}] {p.label()}: "
                    f"PER~{m.per_proxy:.2f}%, {m.latency_us:.2f} us, "
                    f"{m.fps:,.0f} FPS, {m.power_watts:.1f} W"
                )
        top = self.top_k(k, key="fps")
        if top:
            lines.append(f"  top {len(top)} by FPS:")
            for p in top:
                m = p.metrics
                lines.append(
                    f"    [{p.index:3d}] {p.label()}: {m.fps:,.0f} FPS, "
                    f"{m.latency_us:.2f} us, PER~{m.per_proxy:.2f}%, "
                    f"BRAM {100 * m.bram_utilization:.0f}%"
                )
        for p in self.failed():
            lines.append(f"  failed [{p.index:3d}] {p.label()}: {p.error}")
        if stats and self.engine_stats is not None:
            lines.append(f"  {self.engine_stats.describe()}")
        return "\n".join(lines)
