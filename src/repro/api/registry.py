"""Component registries: platforms, RNN cells, activation implementations.

The seed hard-coded its extension points as string branches — ``cli.py``
offered ``choices=("lstm", "gru")``, ``hw/platform.py`` kept a literal
``PLATFORMS`` dict, and the PWL activations were reachable only through the
``pwl_sigmoid``/``pwl_tanh`` module functions.  This module replaces those
branches with three :class:`Registry` instances plus decorator-style
registration, so a new platform, cell, or activation is one registration
call instead of edits scattered across the tree:

>>> from repro.api import register_platform
>>> register_platform(FPGAPlatform(name="VU9P", ...), aliases=("vu9p",))
>>> Design.lstm(1024).blocks(8).on("VU9P").price()

This module is a dependency *leaf*: it imports only :mod:`repro.errors` and
the standard library, so low-level modules (``repro.config``,
``repro.hw.platform``) can consult it without import cycles.  Built-in
components are seeded lazily by dotted path and resolved on first lookup.
"""

from __future__ import annotations

import importlib
from collections.abc import Iterator, Mapping
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import RegistryError

__all__ = [
    "Registry",
    "CellInfo",
    "ActivationInfo",
    "PLATFORM_REGISTRY",
    "CELL_REGISTRY",
    "ACTIVATION_REGISTRY",
    "register_platform",
    "register_cell",
    "register_activation",
]


@dataclass
class _LazyRef:
    """A ``"module:attribute"`` pointer resolved on first access."""

    target: str

    def resolve(self) -> Any:
        module_name, _, attribute = self.target.partition(":")
        module = importlib.import_module(module_name)
        return getattr(module, attribute)


class Registry(Mapping):
    """A named collection of components with alias-aware lookup.

    Behaves as a read-only mapping from canonical name to component (so the
    legacy ``PLATFORMS`` dict idioms — iteration, ``in``, ``sorted(...)`` —
    keep working), plus:

    * case-insensitive alias resolution (``get("ku060")``);
    * duplicate-name detection at registration time;
    * lazy built-in entries that defer the import of heavy modules.
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._items: dict[str, Any] = {}
        self._aliases: dict[str, str] = {}

    # -- registration ---------------------------------------------------
    def register(self, name: str, obj: Any, aliases: tuple[str, ...] = ()) -> Any:
        if not name:
            raise RegistryError(f"{self.kind} name must be non-empty")
        lowered = name.lower()
        if name in self._items or lowered in self._aliases:
            raise RegistryError(f"duplicate {self.kind} name {name!r}")
        for alias in aliases:
            if alias.lower() in self._aliases:
                raise RegistryError(
                    f"{self.kind} alias {alias!r} collides with an existing entry"
                )
        self._items[name] = obj
        self._aliases[lowered] = name
        for alias in aliases:
            self._aliases[alias.lower()] = name
        return obj

    def register_lazy(
        self, name: str, target: str, aliases: tuple[str, ...] = ()
    ) -> None:
        """Register a built-in by dotted ``"module:attribute"`` path."""
        self.register(name, _LazyRef(target), aliases=aliases)

    # -- lookup ---------------------------------------------------------
    def canonical_name(self, name: str) -> str:
        if name in self._items:
            return name
        canonical = self._aliases.get(name.lower())
        if canonical is None:
            raise RegistryError(
                f"unknown {self.kind} {name!r}; known: {sorted(self._items)}"
            )
        return canonical

    def get(self, name: str) -> Any:
        canonical = self.canonical_name(name)
        obj = self._items[canonical]
        if isinstance(obj, _LazyRef):
            obj = obj.resolve()
            self._items[canonical] = obj
        return obj

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._items))

    # -- Mapping protocol ----------------------------------------------
    def __getitem__(self, name: str) -> Any:
        try:
            return self.get(name)
        except RegistryError as error:
            raise KeyError(str(error)) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        return name in self._items or name.lower() in self._aliases

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {sorted(self._items)})"


@dataclass(frozen=True)
class CellInfo:
    """Capabilities and factory of one RNN cell type.

    ``factory`` builds one recurrent cell: ``factory(input_size, hidden_size,
    **kwargs) -> Module``.  The capability flags drive :class:`RNNSpec`
    validation — peepholes and projection are LSTM concepts, and a custom
    cell must opt in explicitly before a spec using them will validate.
    """

    name: str
    factory: Callable[..., Any]
    supports_peephole: bool = False
    supports_projection: bool = False
    description: str = ""


@dataclass(frozen=True)
class ActivationInfo:
    """One hardware activation implementation.

    ``builder(segments) -> PiecewiseLinearActivation`` (or any callable
    object mapping arrays to arrays with a ``resources(bits)`` method).
    """

    name: str
    builder: Callable[[int], Any]
    description: str = ""


PLATFORM_REGISTRY = Registry("platform")
CELL_REGISTRY = Registry("cell")
ACTIVATION_REGISTRY = Registry("activation")

# Built-ins, seeded lazily so this module stays import-light.  The dotted
# targets are the modules that own the objects; nothing here imports numpy.
PLATFORM_REGISTRY.register_lazy(
    "ADM-PCIE-7V3",
    "repro.hw.platform:ADM_PCIE_7V3",
    aliases=("7v3", "virtex-7"),
)
PLATFORM_REGISTRY.register_lazy(
    "XCKU060",
    "repro.hw.platform:XCKU060",
    aliases=("ku060", "kintex-ultrascale"),
)
def _lazy_callable(target: str) -> Callable[..., Any]:
    """A callable proxy that imports ``"module:attr"`` on first invocation."""
    ref = _LazyRef(target)

    def call(*args: Any, **kwargs: Any) -> Any:
        return ref.resolve()(*args, **kwargs)

    call.__qualname__ = call.__name__ = target.rpartition(":")[2]
    return call


CELL_REGISTRY.register(
    "lstm",
    CellInfo(
        name="lstm",
        factory=_lazy_callable("repro.nn.lstm:LSTMCell"),
        supports_peephole=True,
        supports_projection=True,
        description="LSTM with optional peephole connections and projection",
    ),
)
CELL_REGISTRY.register(
    "gru",
    CellInfo(
        name="gru",
        factory=_lazy_callable("repro.nn.gru:GRUCell"),
        supports_peephole=False,
        supports_projection=False,
        description="GRU (fewer gates; paper Sec. VI-B Step Three)",
    ),
)
ACTIVATION_REGISTRY.register(
    "sigmoid",
    ActivationInfo(
        name="sigmoid",
        builder=_lazy_callable("repro.hw.activation:pwl_sigmoid"),
        description="PWL logistic over [-8, 8] (Sec. VIII-B1)",
    ),
)
ACTIVATION_REGISTRY.register(
    "tanh",
    ActivationInfo(
        name="tanh",
        builder=_lazy_callable("repro.hw.activation:pwl_tanh"),
        description="PWL tanh over [-4, 4] (Sec. VIII-B1)",
    ),
)


def register_platform(platform: Any, aliases: tuple[str, ...] = ()) -> Any:
    """Register an :class:`repro.hw.platform.FPGAPlatform` by its name."""
    return PLATFORM_REGISTRY.register(platform.name, platform, aliases=aliases)


def register_cell(
    name: str,
    *,
    supports_peephole: bool = False,
    supports_projection: bool = False,
    description: str = "",
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator registering a cell factory under ``name``.

    >>> @register_cell("mgu", description="minimal gated unit")
    ... class MGUCell(Module): ...
    """

    def decorate(factory: Callable[..., Any]) -> Callable[..., Any]:
        CELL_REGISTRY.register(
            name,
            CellInfo(
                name=name,
                factory=factory,
                supports_peephole=supports_peephole,
                supports_projection=supports_projection,
                description=description,
            ),
        )
        return factory

    return decorate


def register_activation(
    name: str, *, description: str = ""
) -> Callable[[Callable[[int], Any]], Callable[[int], Any]]:
    """Decorator registering an activation builder (``segments -> unit``)."""

    def decorate(builder: Callable[[int], Any]) -> Callable[[int], Any]:
        ACTIVATION_REGISTRY.register(
            name, ActivationInfo(name=name, builder=builder, description=description)
        )
        return builder

    return decorate
