"""``compile()`` and the :class:`CompiledModel` artifact.

Compilation snapshots everything inference needs — the frozen
:class:`RNNSpec`, every trained parameter, the backend name and its
options (bit widths, PWL segments), and optional phone-set/decoder
metadata — into one immutable, serializable artifact.  The artifact is
the unit of deployment: build it once, cache it (in-process through
:class:`repro.api.Engine`, on disk as a versioned ``.npz``), then open
sessions or serve it from any process without the training stack's
mutable state.

>>> from repro.runtime import compile
>>> compiled = compile(model, backend="fixed", weight_bits=12)
>>> logits = compiled.run(features)            # batched (T, B, D) -> (T, B, C)
>>> session = compiled.session()               # streaming, carried state
>>> posteriors = session.push(features[0, 0])  # one frame at a time
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from types import MappingProxyType
from typing import Any, Mapping

import numpy as np

from repro.config import RNNSpec
from repro.errors import ConfigError, SerializationError
from repro.runtime.backends import BACKEND_REGISTRY, Executor, build_executor
from repro.runtime.workloads import WORKLOAD_REGISTRY, WorkloadInfo

__all__ = ["RuntimeMeta", "LMMeta", "CompiledModel", "compile", "compile_model"]

#: Schema/version stamped into ``CompiledModel.save`` artifacts.
ARTIFACT_SCHEMA = "repro/compiled-model"
ARTIFACT_VERSION = 1


class RuntimeMeta:
    """Decoder-side metadata carried by a compiled artifact.

    Records the phone inventory and scoring conventions so a serving
    process can decode posteriors without the training corpus on hand.
    """

    __slots__ = ("phone_labels", "remove_silence", "smooth_width")

    def __init__(
        self,
        phone_labels: tuple[str, ...],
        remove_silence: bool = True,
        smooth_width: int = 5,
    ):
        object.__setattr__(self, "phone_labels", tuple(phone_labels))
        object.__setattr__(self, "remove_silence", bool(remove_silence))
        object.__setattr__(self, "smooth_width", int(smooth_width))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("RuntimeMeta is immutable")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RuntimeMeta) and self.to_dict() == other.to_dict()

    def to_dict(self) -> dict:
        return {
            "phone_labels": list(self.phone_labels),
            "remove_silence": self.remove_silence,
            "smooth_width": self.smooth_width,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RuntimeMeta":
        return cls(
            phone_labels=tuple(payload["phone_labels"]),
            remove_silence=payload["remove_silence"],
            smooth_width=payload["smooth_width"],
        )

    @classmethod
    def from_phone_set(
        cls, phone_set: Any, remove_silence: bool = True, smooth_width: int = 5
    ) -> "RuntimeMeta":
        return cls(tuple(phone_set.phones), remove_silence, smooth_width)


class LMMeta:
    """Language-model metadata carried by a compiled artifact.

    Records the character vocabulary so a serving process can decode
    generated token ids to text without the corpus on hand.  Discriminated
    from :class:`RuntimeMeta` on load by its ``vocab`` key.
    """

    __slots__ = ("vocab",)

    def __init__(self, vocab: tuple[str, ...]):
        vocab = tuple(vocab)
        for ch in vocab:
            if not isinstance(ch, str) or len(ch) != 1:
                raise ConfigError(f"vocab entries must be single chars: {ch!r}")
        if len(set(vocab)) != len(vocab):
            raise ConfigError("vocab characters must be unique")
        object.__setattr__(self, "vocab", vocab)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("LMMeta is immutable")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LMMeta) and self.vocab == other.vocab

    def to_dict(self) -> dict:
        return {"vocab": list(self.vocab)}

    @classmethod
    def from_dict(cls, payload: dict) -> "LMMeta":
        return cls(vocab=tuple(payload["vocab"]))


def _freeze_state(state: Mapping[str, np.ndarray]) -> dict[str, np.ndarray]:
    frozen = {}
    for name, values in state.items():
        values = np.array(values, dtype=np.float64)
        values.setflags(write=False)
        frozen[name] = values
    return frozen


def _fingerprint(
    spec: RNNSpec,
    structured: bool,
    backend: str,
    options: Mapping[str, Any],
    state: Mapping[str, np.ndarray],
    meta: Any = None,
    workload: str = "asr",
) -> str:
    """Content hash over everything that determines the artifact's bytes."""
    digest = hashlib.sha256()
    from repro.nn.serialization import spec_to_dict

    header = {
        "spec": spec_to_dict(spec),
        "structured": structured,
        "backend": backend,
        "options": dict(sorted(options.items())),
        "meta": meta.to_dict() if meta is not None else None,
    }
    if workload != "asr":
        # Key present only for non-default workloads, so every artifact
        # and Engine cache entry fingerprinted before workloads existed
        # keeps its hash.
        header["workload"] = workload
    digest.update(json.dumps(header, sort_keys=True).encode())
    for name in sorted(state):
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(state[name]).tobytes())
    return digest.hexdigest()


class CompiledModel:
    """An immutable inference artifact: weights + backend + metadata.

    Instances are produced by :func:`compile` (or :meth:`load`), never
    mutated: the parameter arrays are write-protected, the executor is
    built once and shared, and every public field is read-only.  That is
    what makes one artifact safe to share between threads, sessions and
    the :class:`repro.runtime.Server`.
    """

    def __init__(
        self,
        spec: RNNSpec,
        structured: bool,
        state: Mapping[str, np.ndarray],
        backend: str,
        options: Mapping[str, Any] | None = None,
        meta: Any = None,
        workload: str = "asr",
        _fingerprint_hint: str | None = None,
    ):
        backend = BACKEND_REGISTRY.canonical_name(backend)
        workload = WORKLOAD_REGISTRY.canonical_name(workload)
        self._spec = spec
        self._structured = bool(structured)
        self._state = _freeze_state(state)
        self._backend = backend
        self._options = dict(sorted((options or {}).items()))
        self._meta = meta
        self._workload = workload
        if WORKLOAD_REGISTRY.get(workload).token_input:
            if spec.input_size != spec.output_size:
                raise ConfigError(
                    f"workload {workload!r} feeds tokens as one-hot rows and "
                    "needs input_size == output_size == vocab_size, got "
                    f"{spec.input_size} vs {spec.output_size}"
                )
        # ``_fingerprint_hint`` lets compile() pass the hash it already
        # computed for cache lookup; anything loaded from disk recomputes
        # from the actual contents (that recompute *is* the integrity check).
        self._fingerprint = (
            _fingerprint_hint
            if _fingerprint_hint is not None
            else _fingerprint(
                spec,
                self._structured,
                backend,
                self._options,
                self._state,
                meta,
                workload,
            )
        )
        self._executor: Executor | None = None
        import threading

        self._lock = threading.Lock()

    # -- read-only surface ---------------------------------------------
    @property
    def spec(self) -> RNNSpec:
        return self._spec

    @property
    def structured(self) -> bool:
        return self._structured

    @property
    def state(self) -> Mapping[str, np.ndarray]:
        """The parameter snapshot (arrays are write-protected)."""
        return MappingProxyType(self._state)

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def options(self) -> Mapping[str, Any]:
        return MappingProxyType(self._options)

    @property
    def meta(self) -> Any:
        return self._meta

    @property
    def workload(self) -> str:
        """The registered workload this artifact serves (default ``asr``)."""
        return self._workload

    @property
    def workload_info(self) -> WorkloadInfo:
        return WORKLOAD_REGISTRY.get(self._workload)

    def vocab(self) -> Any:
        """The :class:`repro.lm.corpus.CharVocab` recorded at compile time."""
        if not isinstance(self._meta, LMMeta):
            raise ConfigError(
                "this artifact carries no vocabulary metadata; compile with "
                "vocab=... to enable text decoding"
            )
        from repro.lm.corpus import CharVocab

        return CharVocab(self._meta.vocab)

    @property
    def fingerprint(self) -> str:
        """Content hash — the identity :class:`repro.api.Engine` caches on."""
        return self._fingerprint

    @property
    def input_size(self) -> int:
        return self._spec.input_size

    @property
    def num_classes(self) -> int:
        return self._spec.output_size

    def describe(self) -> str:
        if isinstance(self._meta, RuntimeMeta):
            meta = f", {len(self._meta.phone_labels)} phones"
        elif isinstance(self._meta, LMMeta):
            meta = f", vocab {len(self._meta.vocab)}"
        else:
            meta = ""
        workload = (
            f" | workload={self._workload}" if self._workload != "asr" else ""
        )
        opts = ", ".join(f"{k}={v}" for k, v in self._options.items())
        return (
            f"CompiledModel({self._spec.describe()} | backend={self._backend}"
            + (f" [{opts}]" if opts else "")
            + f"{meta}{workload} | {self._fingerprint[:12]})"
        )

    __repr__ = describe

    # -- execution ------------------------------------------------------
    def executor(self) -> Executor:
        """The backend executor (built once, then shared; thread-safe)."""
        with self._lock:
            if self._executor is None:
                self._executor = build_executor(self)
            return self._executor

    def to_model(self) -> Any:
        """Rebuild a (mutable, trainable) ``StackedRNNClassifier`` copy."""
        from repro.nn.rnn import StackedRNNClassifier

        model = StackedRNNClassifier(
            self._spec, structured=self._structured, rng=np.random.default_rng(0)
        )
        model.load_state_dict(dict(self._state))
        return model

    def run(self, inputs: np.ndarray) -> np.ndarray:
        """Batched inference: ``(T, B, D)`` features → ``(T, B, C)`` logits.

        Byte-identical to pushing the same frames through a width-``B``
        :meth:`session` (the backend conformance contract).
        """
        return self.executor().run(inputs)

    def session(self, batch_size: int = 1) -> Any:
        """Open a stateful streaming session (see :class:`Session`)."""
        from repro.runtime.session import Session

        return Session(self, batch_size=batch_size)

    def serve(self, **kwargs: Any) -> Any:
        """Start a micro-batching :class:`repro.runtime.Server` over this model."""
        from repro.runtime.server import Server

        return Server(self, **kwargs)

    # -- decoding -------------------------------------------------------
    def phone_set(self) -> Any:
        """The phone inventory recorded at compile time, if any."""
        if not isinstance(self._meta, RuntimeMeta):
            raise ConfigError(
                "this artifact carries no phone-set metadata; compile with "
                "phone_set=... to enable decoding"
            )
        from repro.asr.phones import PhoneSet

        return PhoneSet(self._meta.phone_labels)

    def decoder(self) -> Any:
        """A :class:`repro.asr.decoder.FrameDecoder` per the stored metadata."""
        from repro.asr.decoder import FrameDecoder

        meta = self._meta
        if not isinstance(meta, RuntimeMeta):
            raise ConfigError(
                "this artifact carries no decoder metadata; compile with "
                "phone_set=... to enable decoding"
            )
        return FrameDecoder(
            self.phone_set(),
            remove_silence=meta.remove_silence,
            smooth_width=meta.smooth_width,
        )

    # -- persistence ----------------------------------------------------
    def save(self, path: Path | str) -> Path:
        """Write the artifact as a schema-versioned ``.npz``."""
        from repro.nn.serialization import spec_to_dict

        payload = {
            "schema": ARTIFACT_SCHEMA,
            "version": ARTIFACT_VERSION,
            "spec": spec_to_dict(self._spec),
            "structured": self._structured,
            "backend": self._backend,
            "options": self._options,
            "meta": self._meta.to_dict() if self._meta else None,
            "fingerprint": self._fingerprint,
        }
        if self._workload != "asr":
            # Written only for non-default workloads so pre-workload
            # readers (and fingerprints) are unaffected.
            payload["workload"] = self._workload
        header = json.dumps(payload)
        path = Path(path)
        arrays = {f"param/{name}": data for name, data in self._state.items()}
        np.savez(path, __header__=np.array(header), **arrays)
        return path

    @classmethod
    def load(cls, path: Path | str) -> "CompiledModel":
        """Load an artifact written by :meth:`save`.

        Raises :class:`repro.errors.SerializationError` (a
        ``RuntimeError``) on any schema or version mismatch — including
        when handed a training checkpoint, which belongs to
        :func:`repro.nn.serialization.load_model`.
        """
        from repro.nn.serialization import check_schema, read_header, spec_from_dict

        header = read_header(path)
        check_schema(
            header,
            path,
            ARTIFACT_SCHEMA,
            (ARTIFACT_VERSION,),
            hint="training checkpoints load via repro.nn.serialization.load_model()",
        )
        with np.load(Path(path), allow_pickle=False) as archive:
            state = {
                name[len("param/"):]: archive[name]
                for name in archive.files
                if name.startswith("param/")
            }
        meta = header.get("meta")
        if not meta:
            parsed_meta = None
        elif "vocab" in meta:
            parsed_meta = LMMeta.from_dict(meta)
        else:
            parsed_meta = RuntimeMeta.from_dict(meta)
        compiled = cls(
            spec=spec_from_dict(header["spec"]),
            structured=header["structured"],
            state=state,
            backend=header["backend"],
            options=header.get("options") or {},
            meta=parsed_meta,
            workload=header.get("workload", "asr"),
        )
        recorded = header.get("fingerprint")
        if recorded is not None and recorded != compiled.fingerprint:
            raise SerializationError(
                f"{path} is corrupt: stored fingerprint {recorded[:12]}… does "
                f"not match its contents ({compiled.fingerprint[:12]}…)"
            )
        return compiled


# ----------------------------------------------------------------------
# compile()
# ----------------------------------------------------------------------


def _resolve_source(source: Any, backend: str) -> tuple[RNNSpec, bool, dict, dict]:
    """Normalize a compile source to ``(spec, structured, state, defaults)``."""
    from repro.nn.rnn import StackedRNNClassifier

    defaults: dict[str, Any] = {}
    if isinstance(source, CompiledModel):
        return source.spec, source.structured, dict(source.state), defaults
    if isinstance(source, StackedRNNClassifier):
        return source.spec, source.structured, source.state_dict(), defaults

    spec = None
    if isinstance(source, RNNSpec):
        spec = source
    else:
        specs = getattr(source, "specs", None)
        if callable(specs):  # a repro.api.Design
            spec, accel = specs()
            defaults["weight_bits"] = accel.weight_bits
    if spec is None:
        raise ConfigError(
            "compile() accepts a StackedRNNClassifier, CompiledModel, "
            f"RNNSpec or repro.api.Design, not {type(source).__name__}"
        )
    model = StackedRNNClassifier(
        spec,
        structured=spec.is_block_circulant,
        rng=np.random.default_rng(0),
    )
    return spec, model.structured, model.state_dict(), defaults


def compile(
    source: Any,
    backend: str = "float",
    *,
    weight_bits: int | None = None,
    pwl_segments: int | None = None,
    phone_set: Any = None,
    remove_silence: bool = True,
    smooth_width: int = 5,
    workload: str | None = None,
    vocab: Any = None,
    engine: Any = None,
    cache: bool = True,
    artifact_dir: Path | str | None = None,
) -> CompiledModel:
    """Compile a model (or spec/design) into a :class:`CompiledModel`.

    ``source`` may be a trained :class:`~repro.nn.rnn.StackedRNNClassifier`,
    an existing :class:`CompiledModel` (re-targeted at another backend), a
    bare :class:`RNNSpec`, or a :class:`repro.api.Design` — the latter two
    produce a deterministically-initialized untrained model (useful for
    performance work; a ``Design`` also contributes its accelerator
    ``weight_bits`` as the default).

    ``backend`` names an entry of :data:`BACKEND_REGISTRY`; the ``fixed``
    backend additionally honours ``weight_bits`` (default 12) and
    ``pwl_segments`` (default 16) and requires a block-circulant model.

    ``phone_set`` (a :class:`repro.asr.phones.PhoneSet`) attaches decoder
    metadata so the artifact can be served without the training corpus.

    ``workload`` names an entry of
    :data:`repro.runtime.workloads.WORKLOAD_REGISTRY` (default ``"asr"``;
    re-targeting a :class:`CompiledModel` inherits its workload).  The
    ``lm`` workload requires ``input_size == output_size == vocab_size``
    and enables the ``generate``/``score`` session ops; ``vocab`` (a
    :class:`repro.lm.corpus.CharVocab` or character sequence) attaches the
    vocabulary so servers can decode generated ids to text.

    Compilation is memoized on a content fingerprint through the build
    :class:`~repro.api.engine.Engine` (``engine`` overrides the
    process-wide default; ``cache=False`` bypasses it), and optionally
    persisted: with ``artifact_dir``, the compiled artifact is written to
    ``<dir>/<fingerprint>.npz`` once and loaded from there on repeat
    compiles — the disk tier a separate process starts warm from.
    """
    backend = BACKEND_REGISTRY.canonical_name(backend)
    if workload is None:
        workload = (
            source.workload if isinstance(source, CompiledModel) else "asr"
        )
    workload = WORKLOAD_REGISTRY.canonical_name(workload)
    spec, structured, state, defaults = _resolve_source(source, backend)

    options: dict[str, Any] = {}
    if backend == "fixed":
        if not structured:
            raise ConfigError(
                "the fixed backend emulates spectral BRAM weights and needs "
                "a block-circulant (structured) model"
            )
        options["weight_bits"] = (
            weight_bits
            if weight_bits is not None
            else defaults.get("weight_bits", 12)
        )
        options["pwl_segments"] = 16 if pwl_segments is None else pwl_segments
    # The float backend computes exact math: quantization options are
    # meaningless there and deliberately excluded from the fingerprint.

    if phone_set is not None:
        if vocab is not None:
            raise ConfigError("phone_set and vocab are mutually exclusive")
        meta = RuntimeMeta.from_phone_set(phone_set, remove_silence, smooth_width)
    elif vocab is not None:
        if not WORKLOAD_REGISTRY.get(workload).token_input:
            raise ConfigError(
                "vocab=... attaches token metadata; compile with "
                "workload='lm' to use it"
            )
        chars = tuple(getattr(vocab, "chars", vocab))
        if len(chars) != spec.input_size:
            raise ConfigError(
                f"vocab of {len(chars)} characters does not match the "
                f"model's vocab_size {spec.input_size}"
            )
        meta = LMMeta(chars)
    elif isinstance(source, CompiledModel):
        meta = source.meta  # re-targeting keeps the decoder/vocab metadata
    else:
        meta = None

    fingerprint = _fingerprint(
        spec, structured, backend, options, state, meta, workload
    )

    def build() -> CompiledModel:
        compiled = CompiledModel(
            spec=spec,
            structured=structured,
            state=state,
            backend=backend,
            options=options,
            meta=meta,
            workload=workload,
            _fingerprint_hint=fingerprint,
        )
        compiled.executor()  # compilation = building the backend artifacts
        return compiled

    if artifact_dir is not None:
        artifact_dir = Path(artifact_dir)
        artifact_path = artifact_dir / f"{fingerprint}.npz"
        if artifact_path.is_file():
            return CompiledModel.load(artifact_path)
        compiled = build()
        artifact_dir.mkdir(parents=True, exist_ok=True)
        # Write-temp + atomic rename, like repro.api.diskcache: a reader in
        # another process must never see a half-written archive.
        import os
        import tempfile

        # Suffix must end in .npz or np.savez would append one of its own.
        handle, temp_path = tempfile.mkstemp(
            dir=artifact_dir, prefix=".compile-tmp-", suffix=".npz"
        )
        try:
            os.close(handle)
            compiled.save(temp_path)
            os.replace(temp_path, artifact_path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        return compiled

    if not cache:
        return build()
    if engine is None:
        from repro.api.engine import default_engine

        engine = default_engine()
    return engine.compiled(fingerprint, build)


#: Alias for contexts where shadowing the builtin ``compile`` is awkward.
compile_model = compile
