"""One shared input-coercion path for every inference surface.

Frames reach the runtime from four directions — :meth:`Session.push`,
:meth:`ServerSession.push`, batched :meth:`CompiledModel.run`, and the
network layer (:mod:`repro.runtime.net`) — and they must all agree, byte
for byte, on what a frame *is*: a C-contiguous float64 array of the
executor's feature width, with NaN/Inf rejected before they can poison a
micro-batch shared with other streams.  Historically each surface rolled
its own cast-and-validate inline, and they drifted (the server session
refused ``(1, D)`` frames that a width-1 session accepted).  This module
is the single implementation they all call.

Casting to float64 is exact for every integer and float32 input, so a
client may hand in whatever dtype its feature extractor produced and the
logits are byte-identical to the float64 path — pinned by
``tests/runtime/test_coerce.py`` across all four surfaces.
"""

from __future__ import annotations

# bit-exact: this module is on the fixed/float byte-identity surface
# (docs/analysis.md, REP003) — dtypes stay explicit, reductions ordered.

import numpy as np

from repro.errors import ConfigError

__all__ = ["coerce_frame", "coerce_stream", "coerce_tokens", "one_hot_rows"]


def coerce_frame(
    frame: np.ndarray, batch: int, input_size: int
) -> tuple[np.ndarray, bool]:
    """Validate one frame for a width-``batch`` stream.

    Accepts a ``(batch, input_size)`` array — or, for width-1 streams, a
    bare ``(input_size,)`` vector — in any real dtype; returns the
    C-contiguous float64 ``(batch, input_size)`` frame plus ``squeezed``,
    true when the caller passed a bare vector (and so expects a bare
    ``(C,)`` logits vector back).  Raises :class:`ConfigError` on any
    shape/dtype/finiteness violation.
    """
    try:
        frame = np.asarray(frame, dtype=np.float64)
    except (TypeError, ValueError) as error:
        raise ConfigError(f"frame is not numeric: {error}") from None
    squeezed = frame.ndim == 1
    if squeezed:
        if batch != 1:
            raise ConfigError(
                f"a width-{batch} session needs (B, D) frames; "
                "bare (D,) vectors are for batch_size=1"
            )
        frame = frame[None, :]
    if frame.ndim != 2 or frame.shape != (batch, input_size):
        raise ConfigError(
            f"expected a ({batch}, {input_size}) frame, got {frame.shape}"
        )
    if not np.all(np.isfinite(frame)):
        raise ConfigError(
            "frame contains NaN or Inf; refusing to poison the stream"
        )
    return np.ascontiguousarray(frame), squeezed


def coerce_tokens(tokens, vocab_size: int, *, min_len: int = 1) -> np.ndarray:
    """Validate a 1-D sequence of integer token ids for an LM session.

    Accepts any integer sequence (list, tuple, or integer ndarray);
    returns a C-contiguous int64 ``(K,)`` array with every id in
    ``[0, vocab_size)``.  Floats are rejected even when integral — token
    ids are symbols, not measurements, and a silent cast would hide an
    upstream indexing bug.  Raises :class:`ConfigError` on violation.
    """
    # Probe the *caller's* dtype before pinning: a float input must be
    # rejected, not silently truncated to int64.
    arr = np.asarray(tokens)  # repro: ignore[REP003] dtype probe, pinned below
    if arr.dtype == object or not np.issubdtype(arr.dtype, np.integer):
        raise ConfigError(
            f"token ids must be integers, got dtype {arr.dtype!s}"
        )
    arr = np.ascontiguousarray(arr, dtype=np.int64)
    if arr.ndim != 1:
        raise ConfigError(f"expected a 1-D token sequence, got {arr.shape}")
    if arr.shape[0] < min_len:
        raise ConfigError(
            f"expected at least {min_len} token(s), got {arr.shape[0]}"
        )
    if arr.size and (int(arr.min()) < 0 or int(arr.max()) >= vocab_size):
        raise ConfigError(
            f"token ids must lie in [0, {vocab_size}), got range "
            f"[{int(arr.min())}, {int(arr.max())}]"
        )
    return arr


def one_hot_rows(tokens: np.ndarray, vocab_size: int) -> np.ndarray:
    """Encode int64 token ids as the float64 one-hot rows the LM steps on.

    The char-LM workload feeds the stacked RNN exactly what ASR scoring
    feeds it — C-contiguous float64 ``(K, vocab_size)`` rows — so every
    byte-identity surface (micro-batch coalescing, journal replay,
    failover) applies to token streams unchanged.  The first cell's input
    weights *are* the embedding.
    """
    tokens = coerce_tokens(tokens, vocab_size, min_len=0)
    rows = np.zeros((tokens.shape[0], vocab_size), dtype=np.float64)
    if tokens.size:
        rows[np.arange(tokens.shape[0], dtype=np.int64), tokens] = 1.0
    return np.ascontiguousarray(rows)


def coerce_stream(inputs: np.ndarray, input_size: int) -> np.ndarray:
    """Validate a ``(T, B, D)`` stack for batched ``run``.

    Same cast/finiteness rules as :func:`coerce_frame`, applied to the
    whole stream at once.
    """
    try:
        inputs = np.asarray(inputs, dtype=np.float64)
    except (TypeError, ValueError) as error:
        raise ConfigError(f"inputs are not numeric: {error}") from None
    if inputs.ndim != 3:
        raise ConfigError(f"expected (T, B, D) inputs, got {inputs.shape}")
    if inputs.shape[-1] != input_size:
        raise ConfigError(
            f"expected feature width {input_size}, got {inputs.shape}"
        )
    if not np.all(np.isfinite(inputs)):
        raise ConfigError(
            "inputs contain NaN or Inf; refusing to poison the stream"
        )
    return inputs
