"""The cluster tier: a consistent-hash gateway over N NetServer backends.

:class:`Gateway` is the layer above :class:`repro.runtime.net.NetServer`
— one TCP front door for a fleet of backend servers, speaking the
existing v1/v2 wire protocol *transparently*: a client dials the gateway
exactly as it would dial a single server, and every session op is
forwarded verbatim to the backend that owns the session.  Binary v2
frames are proxied **without re-encode** — the gateway reads the fixed
header (to learn the routing session id and request id), then forwards
the original bytes; payloads are never decoded to arrays.

Routing is a SHA-256 vnode ring (:mod:`repro.runtime.cluster.hashring`),
not modulo: adding or removing one of ``N`` backends remaps only ~1/N of
sessions.  A **placement table** pins each opened session to the backend
its ``open`` chose, so ring changes never move a *live* stream — only
sessions that re-place (reattach after their backend died, or reopen
after an eviction) walk the new ring.

Failure model — built on the PR 8 reattach contract:

* A backend that drops its connections or misses ``down_after`` health
  probes is marked **down**: its placements are dropped, every in-flight
  request to it is answered with the existing structured *retryable*
  error frame, and new requests route around it.  A reattaching
  :class:`~repro.runtime.net.client.NetSession` then reconnects, reopens
  (landing on the ring's next backend), sees ``seq: 0``, and replays its
  journal — the stream continues **byte-identically** on the new node.
* ``cluster_drain`` rolls a backend out without dropping a frame: new
  placement stops immediately, pinned sessions either finish on their
  own (close / idle-TTL eviction) or are force-migrated by evicting them
  — which triggers exactly the reattach replay above — and once the
  backend reports zero sessions it is removed from the ring.

The gateway's own control plane (``cluster_health``, ``cluster_drain``,
``cluster_undrain``, ``cluster_add``) rides the same NDJSON framing as
every other op, so :class:`~repro.runtime.net.client.Client` drives it
with plain requests.

>>> with Gateway(["127.0.0.1:7001", "127.0.0.1:7002"]) as gw:
...     client = Client(*gw.address)
...     logits = client.session("stream-7").push(frame)  # routed + pinned
"""

from __future__ import annotations

import asyncio
import itertools
import json
import struct
import sys
import threading
import time
from collections import Counter
from typing import Any, Iterable

from repro.errors import ConfigError
from repro.runtime.cluster.hashring import DEFAULT_VNODES, HashRing
from repro.runtime.net.protocol import (
    BIN_MAGIC,
    BIN_PREFIX,
    CLUSTER_OPS,
    MAX_BIN_NDIM,
    MAX_BIN_SESSION,
    MAX_FRAME_BYTES,
    MAX_LINE_BYTES,
    OPS,
    SESSION_OPS,
    NetError,
    dump_line,
    error_reply,
    parse_line,
)
from repro.runtime.net.server import _FrameReader, _LineTooLong

__all__ = ["Gateway", "backend_key"]

#: Ops the gateway answers itself (no backend round trip).
_GATEWAY_OPS = frozenset({"ping", "health"}) | set(CLUSTER_OPS)

#: Ops fanned out to every reachable backend over the admin connections.
_FANOUT_OPS = frozenset({"stats", "sessions"})

#: Session ops whose ok reply releases the session's placement.
_RELEASE_OPS = frozenset({"close", "evict"})


def backend_key(spec: Any) -> str:
    """Normalize a backend spec (``"host:port"`` or ``(host, port)``)."""
    if isinstance(spec, str):
        host, sep, port = spec.rpartition(":")
        if not sep or not host or not port.isdigit():
            raise ConfigError(
                f"backend spec {spec!r} is not 'host:port'"
            )
        return f"{host}:{int(port)}"
    try:
        host, port = spec
        return f"{host}:{int(port)}"
    except (TypeError, ValueError):
        raise ConfigError(
            f"backend spec {spec!r} is not 'host:port' or (host, port)"
        ) from None


class _Backend:
    """One backend's gateway-side record (event-loop thread)."""

    __slots__ = ("key", "host", "port", "state", "hello", "misses",
                 "reader", "writer", "frames", "admin_lock", "prober",
                 "drain_task", "remaining", "last_health")

    def __init__(self, key: str):
        self.key = key
        host, _, port = key.rpartition(":")
        self.host = host
        self.port = int(port)
        self.state = "up"  # up | down | draining | removed
        self.hello: dict = {}
        self.misses = 0
        self.reader = None       # admin connection (prober + fan-outs)
        self.writer = None
        self.frames: _FrameReader | None = None
        self.admin_lock: asyncio.Lock | None = None
        self.prober: asyncio.Task | None = None
        self.drain_task: asyncio.Task | None = None
        self.remaining = 0       # sessions left at the last drain poll
        self.last_health: dict = {}

    def placeable(self) -> bool:
        """May this backend keep serving its *pinned* sessions?"""
        return self.state in ("up", "draining")


class _Upstream:
    """One lazily dialed (client connection, backend) forwarding link."""

    __slots__ = ("key", "reader", "writer", "frames", "pending", "pump",
                 "gone", "binary")

    def __init__(self, key: str, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.key = key
        self.reader = reader
        self.writer = writer
        self.frames = _FrameReader(reader)
        self.pending: dict[Any, tuple[str, str]] = {}  # rid -> (op, session)
        self.pump: asyncio.Task | None = None
        self.gone = False
        self.binary = False      # has this link granted protocol v2?


class _ClientConn:
    """Per-client-connection state (event-loop thread only)."""

    __slots__ = ("id", "writer", "upstreams")

    def __init__(self, conn_id: int, writer: asyncio.StreamWriter):
        self.id = conn_id
        self.writer = writer
        self.upstreams: dict[str, _Upstream] = {}


class Gateway:
    """Front N NetServer backends behind one consistent-hash TCP endpoint.

    ``backends`` are ``"host:port"`` specs (or ``(host, port)`` pairs) of
    running :class:`~repro.runtime.net.NetServer` instances; all of them
    must be reachable — and serving the same model shape — at
    :meth:`start`.  ``port=0`` binds an ephemeral port; read
    :attr:`address` after start.

    Health probing: every ``probe_interval_s`` each backend's ``health``
    op is polled on a dedicated admin connection; ``down_after``
    consecutive misses (or any connection-level failure on a forwarding
    link) marks the backend down.  A down backend keeps being probed and
    rejoins placement when its probes answer again.

    ``drain_timeout_s`` is the default ``cluster_drain`` wait before the
    reply reports progress instead of completion (the drain keeps
    running in the background either way).
    """

    def __init__(
        self,
        backends: Iterable[Any],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        vnodes: int = DEFAULT_VNODES,
        probe_interval_s: float = 0.5,
        probe_timeout_s: float = 5.0,
        down_after: int = 3,
        connect_timeout_s: float = 10.0,
        drain_poll_s: float = 0.25,
        drain_timeout_s: float = 30.0,
    ):
        keys = [backend_key(spec) for spec in backends]
        if not keys:
            raise ConfigError("Gateway needs at least one backend")
        if len(set(keys)) != len(keys):
            raise ConfigError(f"duplicate backends in {keys}")
        if probe_interval_s <= 0 or probe_timeout_s <= 0:
            raise ConfigError("probe interval/timeout must be positive")
        if down_after < 1:
            raise ConfigError(f"down_after must be >= 1, got {down_after}")
        self._backend_keys = keys
        self._host = host
        self._port = port
        self._vnodes = vnodes
        self._probe_interval_s = probe_interval_s
        self._probe_timeout_s = probe_timeout_s
        self._down_after = down_after
        self._connect_timeout_s = connect_timeout_s
        self._drain_poll_s = drain_poll_s
        self._drain_timeout_s = drain_timeout_s

        # Event-loop-thread state (no locks: the loop owns all of it,
        # exactly like NetServer's connection state).
        self._backends: dict[str, _Backend] = {}
        self._removed: list[str] = []
        self._ring = HashRing(vnodes=vnodes)
        self._placements: dict[str, str] = {}  # session -> backend key
        self._conns: dict[int, _ClientConn] = {}
        self._conn_ids = itertools.count(1)
        self._admin_ids = itertools.count(1)
        self._tasks: set[asyncio.Task] = set()
        self._hello_meta: dict = {}
        self.retryable_errors_total = 0

        self._events: list[dict] = []  # guarded-by: _events_lock
        self._events_lock = threading.Lock()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._stop_async: asyncio.Event | None = None
        self._stop_serving = threading.Event()
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._lifecycle = threading.Lock()
        self._state = "new"  # guarded-by: _lifecycle (new -> started -> closed)
        self._closing = False

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (resolves ``port=0``)."""
        return self._host, self._port

    @property
    def port(self) -> int:
        return self._port

    @property
    def events(self) -> list[dict]:
        """Snapshot of the gateway journal (downs, drains, removals)."""
        with self._events_lock:
            return list(self._events)

    def _log_event(self, event: str, backend: str | None = None,
                   **detail: Any) -> None:
        entry: dict[str, Any] = {"ts": round(time.time(), 3), "event": event}
        if backend is not None:
            entry["backend"] = backend
        entry.update(detail)
        with self._events_lock:
            self._events.append(entry)
        tail = " ".join(f"{k}={v}" for k, v in detail.items())
        where = f" backend={backend}" if backend is not None else ""
        print(f"repro.cluster: {event}{where}" + (f" {tail}" if tail else ""),
              file=sys.stderr)

    # ------------------------------------------------------------------
    # Lifecycle (mirrors NetServer: loop on a daemon thread).
    # ------------------------------------------------------------------
    def start(self) -> "Gateway":
        with self._lifecycle:
            if self._state == "started":
                return self
            if self._state == "closed":
                raise ConfigError("Gateway cannot be restarted after close()")
            self._loop = asyncio.new_event_loop()
            self._loop_thread = threading.Thread(
                target=self._run_loop, name="repro-gateway", daemon=True
            )
            self._loop_thread.start()
            self._started.wait(timeout=60)
            if self._startup_error is not None:
                raise ConfigError(
                    f"gateway failed to start: {self._startup_error}"
                )
            if not self._started.is_set():
                raise ConfigError("gateway did not start within 60s")
            self._state = "started"
            return self

    def close(self) -> None:
        self._stop_serving.set()
        with self._lifecycle:
            if self._state != "started":
                self._state = "closed"
                return
            self._state = "closed"
            self._closing = True
            loop, stop = self._loop, self._stop_async
            if loop is not None and stop is not None:
                try:
                    loop.call_soon_threadsafe(stop.set)
                except RuntimeError:
                    pass  # loop already dead
            if self._loop_thread is not None:
                self._loop_thread.join(timeout=30)

    def serve_forever(self, install_signals: bool = True) -> None:
        """Block until SIGTERM/SIGINT or ``close()``, then shut down."""
        import signal

        self.start()
        previous = {}
        if install_signals:
            def handler(signum: int, frame: Any) -> None:
                self._stop_serving.set()

            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    previous[signum] = signal.signal(signum, handler)
                except ValueError:
                    pass  # not the main thread; close() can still stop us
        try:
            self._stop_serving.wait()
        finally:
            for signum, old in previous.items():
                signal.signal(signum, old)
            self.close()

    def __enter__(self) -> "Gateway":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _run_loop(self) -> None:
        loop = self._loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._serve_main())
        except BaseException as error:  # noqa: BLE001 — surfaced by start()
            self._startup_error = error
            self._started.set()
        finally:
            loop.close()

    async def _serve_main(self) -> None:
        self._stop_async = asyncio.Event()
        for key in self._backend_keys:
            backend = _Backend(key)
            backend.admin_lock = asyncio.Lock()
            await self._admin_connect(backend)  # raises if unreachable
            self._check_meta(backend)
            self._backends[key] = backend
            self._ring.add(key)
        server = await asyncio.start_server(
            self._handle_conn, self._host, self._port
        )
        self._port = server.sockets[0].getsockname()[1]
        for backend in self._backends.values():
            backend.prober = asyncio.ensure_future(self._probe_loop(backend))
        self._started.set()
        await self._stop_async.wait()
        server.close()
        await server.wait_closed()
        tasks = list(self._tasks)
        for backend in self._backends.values():
            for task in (backend.prober, backend.drain_task):
                if task is not None:
                    tasks.append(task)
                    task.cancel()
        for task in list(self._tasks):
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        for backend in self._backends.values():
            await self._admin_close(backend)
        for conn in list(self._conns.values()):
            for up in conn.upstreams.values():
                up.gone = True
                try:
                    up.writer.close()
                except OSError:
                    pass
            try:
                conn.writer.close()
            except OSError:
                pass
        self._conns.clear()

    def _check_meta(self, backend: _Backend) -> None:
        """Every backend must serve the same model shape — a fleet that
        disagrees on ``input_size``/``num_classes`` would answer a
        session's frames differently depending on placement, which is a
        deployment error, not a routing decision."""
        hello = backend.hello
        if not self._hello_meta:
            self._hello_meta = {
                "backend": hello.get("backend"),
                "input_size": hello.get("input_size"),
                "num_classes": hello.get("num_classes"),
                # Workload metadata (absent on ASR backends) passes
                # through so LM clients can validate tokens and decode
                # text against the gateway exactly as against one server.
                "workload": hello.get("workload"),
                "vocab": hello.get("vocab"),
            }
            return
        for field in ("backend", "input_size", "num_classes", "workload",
                      "vocab"):
            if hello.get(field) != self._hello_meta[field]:
                raise ConfigError(
                    f"backend {backend.key} serves {field}="
                    f"{hello.get(field)!r} but the fleet serves "
                    f"{self._hello_meta[field]!r}; one gateway fronts one "
                    "model"
                )

    # ------------------------------------------------------------------
    # Admin connections (prober, fan-outs, drain polls).
    # ------------------------------------------------------------------
    async def _admin_connect(self, backend: _Backend) -> None:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(backend.host, backend.port),
            self._connect_timeout_s,
        )
        frames = _FrameReader(reader)
        line = await asyncio.wait_for(
            frames.read_line(MAX_LINE_BYTES), self._connect_timeout_s
        )
        if line is None:
            writer.close()
            raise ConfigError(
                f"backend {backend.key} closed without a hello"
            )
        hello = parse_line(line)
        if hello.get("type") != "hello":
            writer.close()
            raise ConfigError(
                f"backend {backend.key} did not greet with a hello frame"
            )
        backend.reader, backend.writer, backend.frames = reader, writer, frames
        backend.hello = hello

    async def _admin_close(self, backend: _Backend) -> None:
        writer = backend.writer
        backend.reader = backend.writer = backend.frames = None
        if writer is not None:
            try:
                writer.close()
            except OSError:
                pass

    async def _admin_request(self, backend: _Backend, op: str,
                             timeout: float | None = None,
                             **fields: Any) -> dict:
        """One JSON round trip on the backend's admin connection."""
        timeout = self._probe_timeout_s if timeout is None else timeout
        async with backend.admin_lock:
            if backend.writer is None:
                await self._admin_connect(backend)
            rid = f"gw-{next(self._admin_ids)}"
            try:
                backend.writer.write(dump_line({"id": rid, "op": op,
                                                **fields}))
                await backend.writer.drain()
                line = await asyncio.wait_for(
                    backend.frames.read_line(MAX_FRAME_BYTES), timeout
                )
            except (OSError, ConnectionError, asyncio.TimeoutError):
                await self._admin_close(backend)
                raise
            if line is None:
                await self._admin_close(backend)
                raise ConnectionError(
                    f"backend {backend.key} closed its admin connection"
                )
            reply = parse_line(line)
            if reply.get("id") != rid:
                await self._admin_close(backend)
                raise NetError(
                    f"backend {backend.key} answered out of order on the "
                    "admin connection"
                )
            return reply

    async def _probe_loop(self, backend: _Backend) -> None:
        """The health prober: one backend, forever (until removed)."""
        try:
            while True:
                await asyncio.sleep(self._probe_interval_s)
                if backend.state == "removed" or self._closing:
                    return
                try:
                    reply = await self._admin_request(backend, "health")
                except (OSError, ConnectionError, asyncio.TimeoutError,
                        NetError):
                    backend.misses += 1
                    if (backend.misses >= self._down_after
                            and backend.state in ("up", "draining")):
                        self._backend_down(
                            backend,
                            f"health probe missed x{backend.misses}",
                        )
                    continue
                backend.misses = 0
                backend.last_health = {
                    key: value for key, value in reply.items()
                    if key not in ("id", "ok", "type")
                }
                if backend.state == "down":
                    self._backend_up(backend)
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------
    # Backend state transitions (event-loop thread).
    # ------------------------------------------------------------------
    def _backend_down(self, backend: _Backend, reason: str) -> None:
        """One backend is gone: drop its placements, fail its in-flight.

        The blast radius is exactly this backend's sessions.  Each gets
        the PR 8 retryable error frame; their reattaching clients reopen
        through the gateway, land on the ring's next backend, and replay
        their journals — byte-identical recovery, now across nodes.
        """
        if backend.state in ("down", "removed"):
            return
        was_draining = backend.state == "draining"
        backend.state = "down"
        self._log_event("backend_down", backend=backend.key, reason=reason,
                        draining=was_draining)
        self._drop_placements(backend.key)
        for conn in list(self._conns.values()):
            up = conn.upstreams.get(backend.key)
            if up is not None:
                self._fail_upstream(conn, up, reason)

    def _backend_up(self, backend: _Backend) -> None:
        if backend.state != "down":
            return
        # A backend that died mid-drain comes back *draining*: the
        # operator asked for it to leave, and death is not a rollback.
        backend.state = "draining" if backend.drain_task else "up"
        self._log_event("backend_up", backend=backend.key,
                        state=backend.state)

    def _drop_placements(self, key: str) -> None:
        for session in [s for s, k in self._placements.items() if k == key]:
            del self._placements[session]

    def _remove_backend(self, backend: _Backend) -> None:
        """Post-drain removal: the node leaves the ring for good."""
        if backend.state == "removed":
            return
        backend.state = "removed"
        if backend.key in self._ring:
            self._ring.remove(backend.key)
        self._drop_placements(backend.key)
        if backend.prober is not None:
            backend.prober.cancel()
        for conn in list(self._conns.values()):
            up = conn.upstreams.get(backend.key)
            if up is not None:
                self._fail_upstream(conn, up, "backend removed after drain")
        self._backends.pop(backend.key, None)
        self._removed.append(backend.key)
        self._log_event("backend_removed", backend=backend.key,
                        ring=sorted(self._ring.nodes))

    # ------------------------------------------------------------------
    # Client connections.
    # ------------------------------------------------------------------
    def _hello(self) -> dict:
        """The gateway's hello: the fleet presented as one server."""
        live = [b for b in self._backends.values() if b.placeable()]
        pool = live or list(self._backends.values())
        return {
            "type": "hello",
            "protocol": 1,
            # The grant is negotiated per upstream open; advertising the
            # fleet *minimum* means a client never negotiates v2 through
            # the gateway unless every backend it could land on grants it.
            "max_protocol": min(
                int(b.hello.get("max_protocol", 1)) for b in pool
            ),
            "backend": self._hello_meta.get("backend"),
            "input_size": self._hello_meta.get("input_size"),
            "num_classes": self._hello_meta.get("num_classes"),
            "workers": sum(int(b.hello.get("workers", 1)) for b in pool),
            "queue_limit": min(
                int(b.hello.get("queue_limit", 1)) for b in pool
            ),
            "gateway": True,
            "backends": len(pool),
            # Mirror the backend hello shape: workload keys only appear
            # when the fleet actually serves a token workload.
            **{
                key: self._hello_meta[key]
                for key in ("workload", "vocab")
                if self._hello_meta.get(key) is not None
            },
        }

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _ClientConn(next(self._conn_ids), writer)
        self._conns[conn.id] = conn
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        self._write(conn, self._hello())
        frames = _FrameReader(reader)
        try:
            while True:
                first = await frames.peek_byte()
                if first is None:
                    break
                if first == BIN_MAGIC:
                    if not await self._read_client_binary(conn, frames):
                        break
                else:
                    try:
                        line = await frames.read_line(MAX_LINE_BYTES)
                    except _LineTooLong:
                        self._write(conn, error_reply(
                            None,
                            f"request line exceeds {MAX_LINE_BYTES} bytes",
                        ))
                        await writer.drain()
                        continue
                    if line is None:
                        break
                    await self._handle_line(conn, line)
                await writer.drain()
        except (asyncio.CancelledError, ConnectionError):
            pass
        finally:
            self._conns.pop(conn.id, None)
            if task is not None:
                self._tasks.discard(task)
            for up in list(conn.upstreams.values()):
                up.gone = True
                if up.pump is not None:
                    up.pump.cancel()
                try:
                    up.writer.close()
                except OSError:
                    pass
            try:
                writer.close()
            except Exception:  # repro: ignore[REP005] reader already failed; closing a broken transport must not mask that
                pass

    async def _read_client_binary(self, conn: _ClientConn,
                                  frames: _FrameReader) -> bool:
        """One v2 frame off a client: header-route, forward verbatim.

        Only the 24-byte prefix and the shape header are inspected (for
        the session id, request id and frame length); the payload passes
        through untouched.  Length-untrustworthy headers tear the
        connection down, exactly like NetServer — there is nothing left
        to resynchronize on.
        """
        prefix = await frames.read_exactly(BIN_PREFIX.size)
        if prefix is None:
            return False
        (_, _version, _opcode, _dtype, rid, _seq,
         slen, ndim, _pad) = BIN_PREFIX.unpack(prefix)
        if ndim > MAX_BIN_NDIM or slen > MAX_BIN_SESSION:
            self._write(conn, error_reply(rid, (
                f"binary header lengths out of range (ndim {ndim}, session "
                f"{slen} bytes); the frame cannot be skipped — closing"
            )))
            return False
        rest = await frames.read_exactly(4 * ndim + 4)
        if rest is None:
            return False
        nbytes = struct.unpack("<I", rest[-4:])[0]
        if nbytes > MAX_FRAME_BYTES:
            self._write(conn, error_reply(rid, (
                f"binary payload of {nbytes} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte cap; closing"
            )))
            return False
        body = await frames.read_exactly(slen + nbytes)
        if body is None:
            return False
        try:
            session = body[:slen].decode("utf-8")
        except UnicodeDecodeError:
            self._write(conn, error_reply(rid, "session id is not UTF-8"))
            return True
        if not session:
            self._write(conn, error_reply(
                rid, "binary frames need a non-empty session id"
            ))
            return True
        await self._forward(conn, rid, "push", session,
                            prefix + rest + body, binary=True)
        return True

    async def _handle_line(self, conn: _ClientConn, line: bytes) -> None:
        try:
            message = parse_line(line)
        except NetError as error:
            self._write(conn, error_reply(None, error))
            return
        rid = message.get("id")
        if isinstance(rid, (dict, list)):
            self._write(conn, error_reply(
                None, "request id must be a JSON scalar"
            ))
            return
        op = message.get("op")
        if not isinstance(op, str):
            self._write(conn, error_reply(
                rid, "op must be a string naming one of "
                + ", ".join(OPS + CLUSTER_OPS)
            ))
            return
        if op == "ping":
            self._write(conn, {"id": rid, "ok": True, "type": "pong"})
            return
        if op in ("health", "cluster_health"):
            self._write(conn, {"id": rid, "ok": True, "type": op,
                               **self._cluster_snapshot()})
            return
        if op == "cluster_drain":
            await self._op_cluster_drain(conn, rid, message)
            return
        if op == "cluster_undrain":
            self._op_cluster_undrain(conn, rid, message)
            return
        if op == "cluster_add":
            await self._op_cluster_add(conn, rid, message)
            return
        if op in _FANOUT_OPS:
            await self._fanout(conn, rid, op)
            return
        if op in SESSION_OPS:
            session = message.get("session")
            if not isinstance(session, str) or not session:
                self._write(conn, error_reply(
                    rid, f"op {op!r} needs a non-empty string session id"
                ))
                return
            await self._forward(conn, rid, op, session, line)
            return
        self._write(conn, error_reply(
            rid, f"unknown op {op!r}; expected one of "
            + ", ".join(OPS + CLUSTER_OPS)
        ))

    # ------------------------------------------------------------------
    # Forwarding.
    # ------------------------------------------------------------------
    def _route(self, session: str, *, placing: bool) -> _Backend | None:
        """The backend owning a session: placement first, ring second."""
        key = self._placements.get(session)
        if key is not None:
            backend = self._backends.get(key)
            if backend is not None and backend.placeable():
                return backend
            del self._placements[session]
        exclude = {key for key, b in self._backends.items()
                   if b.state != "up"}
        key = self._ring.route(session, exclude=exclude)
        if key is None:
            return None
        backend = self._backends[key]
        if placing:
            self._placements[session] = key
        return backend

    async def _forward(self, conn: _ClientConn, rid: Any, op: str,
                       session: str, raw: bytes,
                       binary: bool = False) -> None:
        """Route one session op and forward its original bytes."""
        backend = self._route(session, placing=(op == "open"))
        if backend is None:
            self.retryable_errors_total += 1
            self._write(conn, error_reply(rid, (
                f"no backend available for session {session!r} (every "
                "backend is down or draining); retry when the fleet heals"
            ), retryable=True))
            return
        up = await self._upstream(conn, backend)
        if up is None:
            self.retryable_errors_total += 1
            self._write(conn, error_reply(rid, (
                f"backend {backend.key} is unreachable; session "
                f"{session!r} will be re-placed — reopen and replay to "
                "recover"
            ), retryable=True))
            return
        if binary and not up.binary:
            # The session just moved (failover or drain) to a backend this
            # connection has never negotiated v2 with; forwarding the raw
            # frame would earn a *non-retryable* framing error.  Bounce the
            # client into its reattach path instead: the reopen is JSON,
            # renegotiates v2 on this link, and the journal replays.
            self.retryable_errors_total += 1
            self._write(conn, error_reply(rid, (
                f"session {session!r} was re-placed onto backend "
                f"{backend.key}, which has not negotiated binary framing "
                "on this connection; reopen and replay to recover"
            ), retryable=True))
            return
        up.pending[rid] = (op, session)
        try:
            up.writer.write(raw)
            await up.writer.drain()
        except (OSError, ConnectionError):
            self._backend_down(backend, "forwarding write failed")

    async def _upstream(self, conn: _ClientConn,
                        backend: _Backend) -> _Upstream | None:
        """The (connection, backend) link, dialing it on first use."""
        up = conn.upstreams.get(backend.key)
        if up is not None and not up.gone:
            return up
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(backend.host, backend.port),
                self._connect_timeout_s,
            )
        except (OSError, asyncio.TimeoutError):
            self._backend_down(backend, "connect refused or timed out")
            return None
        up = _Upstream(backend.key, reader, writer)
        hello = await up.frames.read_line(MAX_LINE_BYTES)
        if hello is None:
            self._backend_down(backend, "closed before hello")
            return None
        conn.upstreams[backend.key] = up
        up.pump = asyncio.ensure_future(self._pump_upstream(conn, up))
        self._tasks.add(up.pump)
        up.pump.add_done_callback(self._tasks.discard)
        return up

    async def _pump_upstream(self, conn: _ClientConn, up: _Upstream) -> None:
        """Forward one upstream's replies to the client, verbatim.

        Binary results: the header is read for the request id (to settle
        the pending map), then the original bytes are written through.
        JSON replies are parsed only to settle bookkeeping (placement
        release on ``close``/``evict``) — the forwarded line is the
        backend's own bytes either way.
        """
        reason = "backend closed the connection"
        try:
            while True:
                first = await up.frames.peek_byte()
                if first is None:
                    break
                if first == BIN_MAGIC:
                    raw = await self._read_upstream_binary(up)
                    if raw is None:
                        reason = "backend reply stream desynced"
                        break
                    conn.writer.write(raw)
                else:
                    line = await up.frames.read_line(MAX_FRAME_BYTES)
                    if line is None:
                        break
                    self._settle_line(up, line)
                    conn.writer.write(line)
                await conn.writer.drain()
        except asyncio.CancelledError:
            up.gone = True
            return
        except (OSError, ConnectionError):
            reason = "backend connection failed"
        if up.gone or self._closing:
            return
        backend = self._backends.get(up.key)
        if backend is not None and backend.state == "up":
            # An unexpected EOF on a live link IS the death signal — no
            # need to wait for the prober to miss thrice.
            self._backend_down(backend, reason)
        else:
            self._fail_upstream(conn, up, reason)

    async def _read_upstream_binary(self, up: _Upstream) -> bytes | None:
        """One binary reply, verbatim; None when the frame is untrusted."""
        prefix = await up.frames.read_exactly(BIN_PREFIX.size)
        if prefix is None:
            return None
        (_, _version, _opcode, _dtype, rid, _seq,
         slen, ndim, _pad) = BIN_PREFIX.unpack(prefix)
        if ndim > MAX_BIN_NDIM or slen > MAX_BIN_SESSION:
            return None
        rest = await up.frames.read_exactly(4 * ndim + 4)
        if rest is None:
            return None
        nbytes = struct.unpack("<I", rest[-4:])[0]
        if nbytes > MAX_FRAME_BYTES:
            return None
        body = await up.frames.read_exactly(slen + nbytes)
        if body is None:
            return None
        up.pending.pop(rid, None)
        return prefix + rest + body

    def _settle_line(self, up: _Upstream, line: bytes) -> None:
        try:
            reply = json.loads(line)
        except ValueError:
            return  # forwarded anyway; the client owns the complaint
        if not isinstance(reply, dict):
            return
        meta = up.pending.pop(reply.get("id"), None)
        if meta is None:
            return
        op, session = meta
        if op == "open" and reply.get("ok") and reply.get("protocol") == 2:
            up.binary = True
        if op in _RELEASE_OPS and reply.get("ok"):
            if self._placements.get(session) == up.key:
                del self._placements[session]

    def _fail_upstream(self, conn: _ClientConn, up: _Upstream,
                       reason: str) -> None:
        """Answer an upstream's in-flight requests with retryable frames."""
        if up.gone:
            return
        up.gone = True
        pending, up.pending = up.pending, {}
        for rid, (op, session) in pending.items():
            self.retryable_errors_total += 1
            self._write(conn, error_reply(rid, (
                f"backend {up.key} failed with the {op!r} request in "
                f"flight ({reason}); session {session!r} will be re-placed "
                "— reopen and replay to recover"
            ), retryable=True))
        if up.pump is not None and up.pump is not asyncio.current_task():
            up.pump.cancel()
        try:
            up.writer.close()
        except OSError:
            pass
        if conn.upstreams.get(up.key) is up:
            del conn.upstreams[up.key]

    # ------------------------------------------------------------------
    # Admin plane.
    # ------------------------------------------------------------------
    def _cluster_snapshot(self) -> dict:
        placed = Counter(self._placements.values())
        return {
            "gateway": True,
            "backends": [
                {
                    "backend": backend.key,
                    "state": backend.state,
                    "probe_misses": backend.misses,
                    "sessions_placed": placed.get(backend.key, 0),
                    "draining": backend.drain_task is not None
                    and backend.state != "removed",
                    "remaining": backend.remaining,
                    "health": backend.last_health,
                }
                for backend in self._backends.values()
            ],
            "removed": list(self._removed),
            "ring": {
                "vnodes": self._ring.vnodes,
                "nodes": sorted(self._ring.nodes),
            },
            "placements": len(self._placements),
            "retryable_errors_total": self.retryable_errors_total,
        }

    async def _fanout(self, conn: _ClientConn, rid: Any, op: str) -> None:
        """stats/sessions across the fleet, merged like NetServer's
        per-worker fan-out — one level up."""
        keys = [key for key, b in self._backends.items()
                if b.state in ("up", "draining")]
        results = await asyncio.gather(
            *(self._admin_request(self._backends[key], op) for key in keys),
            return_exceptions=True,
        )
        parts: list[dict] = []
        merged: list[dict] = []
        for key, result in zip(keys, results):
            if isinstance(result, BaseException):
                parts.append({"backend": key, "ok": False,
                              "error": str(result)})
                continue
            parts.append({"backend": key, "ok": bool(result.get("ok"))})
            field = "sessions" if op == "sessions" else "workers"
            for entry in result.get(field, ()):
                merged.append({**entry, "backend": key})
        for key, backend in self._backends.items():
            if backend.state == "down":
                parts.append({"backend": key, "ok": False,
                              "error": f"backend {key} is down"})
        payload: dict[str, Any] = {"id": rid, "ok": True, "type": op,
                                   "backends": parts}
        payload["sessions" if op == "sessions" else "workers"] = merged
        self._write(conn, payload)

    async def _op_cluster_drain(self, conn: _ClientConn, rid: Any,
                                message: dict) -> None:
        try:
            key = backend_key(message.get("backend"))
        except ConfigError as error:
            self._write(conn, error_reply(rid, error))
            return
        backend = self._backends.get(key)
        if backend is None:
            self._write(conn, error_reply(
                rid, f"unknown backend {key!r}; cluster_health lists the "
                "fleet"
            ))
            return
        if len([b for b in self._backends.values()
                if b.state in ("up", "draining")]) <= 1:
            self._write(conn, error_reply(
                rid, f"cannot drain {key!r}: it is the last placeable "
                "backend; add capacity first"
            ))
            return
        force = bool(message.get("force"))
        wait_s = message.get("wait_s", self._drain_timeout_s)
        if backend.drain_task is None:
            if backend.state == "up":
                backend.state = "draining"
            self._log_event("drain_started", backend=key, force=force)
            backend.drain_task = asyncio.ensure_future(
                self._drain_backend(backend, force)
            )
        try:
            await asyncio.wait_for(
                asyncio.shield(backend.drain_task), float(wait_s)
            )
        except asyncio.TimeoutError:
            pass
        drained = backend.state == "removed"
        self._write(conn, {
            "id": rid, "ok": True, "type": "cluster_drain", "backend": key,
            "drained": drained,
            "remaining": 0 if drained else backend.remaining,
        })

    async def _drain_backend(self, backend: _Backend, force: bool) -> None:
        """Roll one backend out: no new placements (state alone does
        that), then wait out — or force-migrate — its pinned sessions."""
        while not self._closing:
            if backend.state == "down":
                # The node died mid-drain: its sessions are already lost
                # (and their clients already reattaching elsewhere), so
                # the only work left is taking it off the ring.
                break
            try:
                reply = await self._admin_request(backend, "sessions")
                names = [entry.get("session")
                         for entry in reply.get("sessions", ())]
            except (OSError, ConnectionError, asyncio.TimeoutError,
                    NetError):
                await asyncio.sleep(self._drain_poll_s)
                continue
            backend.remaining = len(names)
            if not names:
                break
            if force:
                for name in names:
                    if self._placements.get(name) == backend.key:
                        # Placement first: by the time the evicted
                        # session's client reopens, the ring (minus this
                        # draining node) owns it.
                        del self._placements[name]
                    try:
                        await self._admin_request(
                            backend, "evict", session=name
                        )
                    except (OSError, ConnectionError,
                            asyncio.TimeoutError, NetError):
                        break
            await asyncio.sleep(self._drain_poll_s)
        if self._closing:
            return
        # An undrain may have landed after this task's last await (cancel()
        # only takes effect at an await point, and there is none between
        # the final poll and here): it clears ``drain_task`` and restores
        # the state, so removal is no longer this task's to perform.
        if backend.drain_task is not asyncio.current_task():
            return
        backend.remaining = 0
        self._remove_backend(backend)

    def _op_cluster_undrain(self, conn: _ClientConn, rid: Any,
                            message: dict) -> None:
        try:
            key = backend_key(message.get("backend"))
        except ConfigError as error:
            self._write(conn, error_reply(rid, error))
            return
        backend = self._backends.get(key)
        if backend is None:
            self._write(conn, error_reply(
                rid, f"unknown backend {key!r} (already removed?)"
            ))
            return
        if backend.drain_task is not None:
            backend.drain_task.cancel()
            backend.drain_task = None
        if backend.state == "draining":
            backend.state = "up"
        self._log_event("drain_cancelled", backend=key,
                        state=backend.state)
        self._write(conn, {"id": rid, "ok": True, "type": "cluster_undrain",
                           "backend": key, "state": backend.state})

    async def _op_cluster_add(self, conn: _ClientConn, rid: Any,
                              message: dict) -> None:
        try:
            key = backend_key(message.get("backend"))
        except ConfigError as error:
            self._write(conn, error_reply(rid, error))
            return
        if key in self._backends:
            self._write(conn, error_reply(
                rid, f"backend {key!r} is already in the fleet"
            ))
            return
        backend = _Backend(key)
        backend.admin_lock = asyncio.Lock()
        try:
            await self._admin_connect(backend)
            self._check_meta(backend)
        except (OSError, asyncio.TimeoutError, ConfigError,
                NetError) as error:
            self._write(conn, error_reply(
                rid, f"backend {key!r} cannot join: {error}"
            ))
            return
        self._backends[key] = backend
        if key in self._removed:
            self._removed.remove(key)
        self._ring.add(key)
        backend.prober = asyncio.ensure_future(self._probe_loop(backend))
        self._log_event("backend_added", backend=key,
                        ring=sorted(self._ring.nodes))
        self._write(conn, {"id": rid, "ok": True, "type": "cluster_add",
                           "backend": key,
                           "backends": len(self._backends)})

    # ------------------------------------------------------------------
    def _write(self, conn: _ClientConn, message: dict) -> None:
        try:
            conn.writer.write(dump_line(message))
        except Exception:  # repro: ignore[REP005] connection torn down mid-write; the reader path cleans up
            pass
