"""Cluster serving tier: consistent-hash gateway over NetServer fleets.

The layer above :mod:`repro.runtime.net` — one gateway endpoint fronting
N backend servers, with ring placement, health-probe failover and
rolling drain.  See ``docs/runtime.md`` ("Cluster tier") for the
semantics and the drain runbook.
"""

from repro.runtime.cluster.fleet import BackendFleet
from repro.runtime.cluster.gateway import Gateway, backend_key
from repro.runtime.cluster.hashring import DEFAULT_VNODES, HashRing

__all__ = [
    "BackendFleet",
    "DEFAULT_VNODES",
    "Gateway",
    "HashRing",
    "backend_key",
]
