"""Local backend fleets: N real :class:`NetServer` OS processes.

The gateway's failure model is *process* death — a whole backend (its
asyncio parent and every worker under it) disappearing at once — which
cannot be rehearsed with in-process servers: killing a thread is not a
thing, and a ``NetServer`` inside the test process would take the test
down with it.  :class:`BackendFleet` spawns each backend as a separate
``multiprocessing`` process (spawn context, like the NetServer workers
themselves) running a real server on an ephemeral port, so the CLI
selftest, the gateway bench and the tests can SIGKILL one mid-soak and
watch the cluster tier heal.

SIGTERM (:meth:`BackendFleet.stop`) is the *graceful* path — the child's
``serve_forever`` installs a handler that drains in-flight frames before
exiting — while :meth:`BackendFleet.kill` is SIGKILL: no drain, no
goodbye, exactly what a crashed host looks like to the gateway.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from queue import Empty
from typing import Any

from repro.errors import ConfigError

__all__ = ["BackendFleet", "backend_main"]


def backend_main(index: int, artifact_path: str, host: str,
                 ready_queue: Any, options: dict) -> None:
    """One backend process: serve the artifact until SIGTERM.

    Runs in a spawned child — module-level so it pickles.  The ephemeral
    port is reported through ``ready_queue`` as ``("ready", index,
    port)``; a startup failure reports ``("fatal", index, message)`` and
    exits nonzero instead of leaving the parent to time out.
    """
    from repro.runtime.net import NetServer

    try:
        server = NetServer(
            artifact_path=artifact_path, host=host, port=0, **options
        )
        server.start()
    except Exception as error:  # repro: ignore[REP005] child-process boundary: the parent needs the failure as a message, not a traceback in a pipe
        ready_queue.put(("fatal", index, f"{type(error).__name__}: {error}"))
        raise SystemExit(1)
    ready_queue.put(("ready", index, server.port))
    server.serve_forever(install_signals=True)
    raise SystemExit(0)


class BackendFleet:
    """Spawn and manage ``count`` NetServer backend processes.

    ``compiled`` is saved once to a temporary artifact every backend
    loads (pass ``artifact_path`` to reuse an existing ``.npz``).
    ``server_options`` are forwarded to each child's :class:`NetServer`
    (``workers``, ``session_ttl_s``, ``max_protocol``, ...) and must be
    picklable primitives.
    """

    def __init__(
        self,
        compiled: Any = None,
        *,
        artifact_path: str | Path | None = None,
        count: int = 2,
        host: str = "127.0.0.1",
        spawn_timeout_s: float = 180.0,
        **server_options: Any,
    ):
        if compiled is None and artifact_path is None:
            raise ConfigError(
                "BackendFleet needs a compiled model or artifact_path"
            )
        if count < 1:
            raise ConfigError(f"count must be positive, got {count}")
        self._compiled = compiled
        self._artifact_path = Path(artifact_path) if artifact_path else None
        self.count = count
        self.host = host
        self.spawn_timeout_s = spawn_timeout_s
        self.server_options = dict(server_options)
        self.server_options.setdefault("workers", 1)
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        self._procs: list[Any] = []
        self._queues: list[Any] = []
        self._ports: list[int] = []
        self._started = False

    # ------------------------------------------------------------------
    @property
    def addresses(self) -> list[tuple[str, int]]:
        """``(host, port)`` per backend, in spawn order."""
        return [(self.host, port) for port in self._ports]

    @property
    def keys(self) -> list[str]:
        """The ring identities (``"host:port"``) of the backends."""
        return [f"{self.host}:{port}" for port in self._ports]

    def alive(self, index: int) -> bool:
        return self._procs[index].is_alive()

    # ------------------------------------------------------------------
    def start(self) -> "BackendFleet":
        """Spawn every backend and wait for all the ready handshakes."""
        if self._started:
            return self
        import multiprocessing as mp

        if self._artifact_path is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-fleet-")
            self._artifact_path = (
                Path(self._tmpdir.name) / f"{self._compiled.fingerprint}.npz"
            )
            self._compiled.save(self._artifact_path)
        ctx = mp.get_context("spawn")
        self._queues = [ctx.Queue() for _ in range(self.count)]
        for queue in self._queues:
            queue.cancel_join_thread()
        self._procs = [
            ctx.Process(
                target=backend_main,
                args=(index, str(self._artifact_path), self.host,
                      self._queues[index], self.server_options),
                name=f"repro-backend-{index}",
                # NOT daemonic: a backend spawns its own NetServer worker
                # processes, which daemons are forbidden to do.
                daemon=False,
            )
            for index in range(self.count)
        ]
        for proc in self._procs:
            proc.start()
        self._ports = [0] * self.count
        deadline = time.monotonic() + self.spawn_timeout_s
        for index, proc in enumerate(self._procs):
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.close()
                    raise ConfigError(
                        f"backend {index} not ready after "
                        f"{self.spawn_timeout_s:g}s (spawn_timeout_s)"
                    )
                try:
                    message = self._queues[index].get(
                        timeout=min(remaining, 1.0)
                    )
                except (Empty, OSError, ValueError):
                    if not proc.is_alive():
                        self.close()
                        raise ConfigError(
                            f"backend process {proc.name} died during startup"
                        )
                    continue
                if message[0] == "ready":
                    self._ports[index] = int(message[2])
                    break
                if message[0] == "fatal":
                    self.close()
                    raise ConfigError(
                        f"backend {index} failed to start: {message[2]}"
                    )
        self._started = True
        return self

    def kill(self, index: int) -> None:
        """SIGKILL one backend: the crashed-host drill (no drain)."""
        self._procs[index].kill()

    def stop(self, index: int, timeout_s: float = 30.0) -> None:
        """SIGTERM one backend and wait for its graceful drain."""
        proc = self._procs[index]
        proc.terminate()
        proc.join(timeout=timeout_s)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=5)

    def close(self) -> None:
        """Stop every backend (graceful first, SIGKILL stragglers)."""
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=15)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5)
        self._procs = []
        self._queues = []
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None
        self._started = False

    def __enter__(self) -> "BackendFleet":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
