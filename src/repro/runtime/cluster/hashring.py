"""Consistent hashing for the cluster tier: a SHA-256 vnode ring.

The intra-node shard (:func:`repro.runtime.net.server.route_session`)
uses ``hash % workers`` because a NetServer's worker count is fixed for
its lifetime.  A *cluster* resizes — backends join, drain, die — and
under modulo routing a resize remaps almost every session, which for a
recurrent stream means almost every client replaying its journal at
once.  A consistent-hash ring bounds that blast radius: each backend
owns ``vnodes`` pseudo-random arc segments of a 64-bit circle, a
session routes to the first segment at or clockwise of its own hash
point, and adding or removing one of ``N`` backends moves only the arcs
that backend owned — ~``1/N`` of sessions, property-tested in
``tests/runtime/test_cluster_ring.py``.

Everything is derived from SHA-256, never ``hash()``: placement must be
identical across processes, restarts and machines (PYTHONHASHSEED salts
``hash()`` per process), because a gateway restart must route every
session exactly where its predecessor did.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable

from repro.errors import ConfigError

__all__ = ["HashRing"]

#: Vnodes per backend.  More vnodes → tighter balance (the max/min load
#: ratio across backends shrinks roughly with 1/sqrt(vnodes)) at the
#: price of a longer sorted ring; 128 keeps the ratio under ~1.5 for
#: small fleets while route() stays a single bisect.
DEFAULT_VNODES = 128


def _point(label: str) -> int:
    """A stable 64-bit circle position for a label (vnode or key)."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over named nodes (``"host:port"`` strings).

    Not thread-safe by itself — the gateway mutates and routes only on
    its event-loop thread, matching the rest of its connection state.
    """

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ConfigError(f"vnodes must be positive, got {vnodes}")
        self._vnodes = vnodes
        self._nodes: set[str] = set()
        self._points: list[int] = []   # sorted circle positions
        self._owners: list[str] = []   # owner of each position, same order
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    @property
    def vnodes(self) -> int:
        return self._vnodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # ------------------------------------------------------------------
    def add(self, node: str) -> None:
        """Insert a node's vnodes.  Adding a present node is an error —
        silently re-adding would hide a gateway bookkeeping bug."""
        if not node:
            raise ConfigError("ring nodes must be non-empty strings")
        if node in self._nodes:
            raise ConfigError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        for index in range(self._vnodes):
            point = _point(f"{node}#{index}")
            at = bisect.bisect_left(self._points, point)
            # SHA-256 collisions between distinct labels are not a real
            # event; equal points from the SAME label cannot happen since
            # labels are unique.  Insert unconditionally: two equal
            # points would tie-break by insertion order, deterministic
            # because add order is the caller's explicit configuration.
            self._points.insert(at, point)
            self._owners.insert(at, node)

    def remove(self, node: str) -> None:
        """Drop a node's vnodes; only its arcs change owners."""
        if node not in self._nodes:
            raise ConfigError(f"node {node!r} is not on the ring")
        self._nodes.discard(node)
        keep = [i for i, owner in enumerate(self._owners) if owner != node]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    def route(self, key: str, exclude: frozenset[str] | set[str] = frozenset()) -> str | None:
        """The node owning ``key``: first vnode clockwise of its point.

        ``exclude`` skips nodes that cannot take the key right now (down
        or draining) by walking further clockwise — the same walk every
        gateway performs, so exclusion is as deterministic as the ring.
        Returns None when no placeable node remains.
        """
        if not self._points:
            return None
        candidates = self._nodes - set(exclude)
        if not candidates:
            return None
        if len(candidates) == 1:
            return next(iter(candidates))
        start = bisect.bisect_right(self._points, _point(key))
        total = len(self._owners)
        for step in range(total):
            owner = self._owners[(start + step) % total]
            if owner in candidates:
                return owner
        return None  # unreachable while candidates is non-empty

    def table(self, keys: Iterable[str]) -> dict[str, str | None]:
        """Route many keys at once (test/diagnostic helper)."""
        return {key: self.route(key) for key in keys}
