"""Pluggable inference backends and their conformance contract.

A *backend* turns a :class:`repro.runtime.CompiledModel` into an
:class:`Executor` — the object that actually computes posteriors.  Two ship
built in, registered in :data:`BACKEND_REGISTRY` exactly like the cell and
platform registries of :mod:`repro.api.registry`:

* ``"float"`` — the training-stack nn graph (dense or circulant weights,
  exact activations), byte-identical to ``StackedRNNClassifier.__call__``;
* ``"fixed"`` — the batched CU emulator of :mod:`repro.hw.emulator`:
  quantized spectra, fixed-point intermediates, PWL activations —
  byte-identical to ``CUEmulator.forward_reference``.

The conformance contract
------------------------

Every executor must satisfy three byte-level invariants, enforced by
:func:`check_conformance` (which the test suite and ``repro serve
--selftest`` both run):

1. **Streaming ≡ batched.**  ``run((T, B, D))`` equals ``T`` successive
   ``step`` calls threading the carried state — the default ``run`` *is*
   that loop, so a backend overriding it with a hoisted implementation
   (as ``fixed`` does) must keep the bytes.
2. **Row isolation.**  ``step_rows`` serves ``R`` independent batch-1
   streams in one call; row ``r`` of its output must be byte-identical to
   ``step(frames[r:r+1], states[r])``.  This is what lets the
   :class:`repro.runtime.Server` coalesce concurrent sessions without
   perturbing any stream.  The default implementation loops rows (always
   conformant); ``fixed`` vectorizes while pinning every shape-sensitive
   GEMM to its batch-1 shape.
3. **Batch semantics are part of the result.**  Fixed-point formats are
   fit per frame *across* the batch (hardware semantics, Sec. V-A1), so a
   ``(T, B)`` batched run is not the concatenation of ``B`` independent
   streams — sessions carry their batch width from creation for exactly
   this reason.

Register a custom backend with :func:`register_backend`::

    @register_backend("my-accel", description="bit-accurate RTL emulator")
    def build_my_accel(compiled):
        return MyExecutor(compiled)
"""

from __future__ import annotations

# bit-exact: this module is on the fixed/float byte-identity surface
# (docs/analysis.md, REP003) — dtypes stay explicit, reductions ordered.

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.api.registry import Registry
from repro.errors import ConfigError, ReproError
from repro.runtime.coerce import coerce_stream

__all__ = [
    "Executor",
    "BackendInfo",
    "BACKEND_REGISTRY",
    "register_backend",
    "build_executor",
    "check_conformance",
    "ConformanceError",
]


class ConformanceError(ReproError):
    """An executor violated the backend conformance contract."""


class Executor(ABC):
    """One backend's stateless compute engine for a single compiled model.

    Executors hold weights (immutably) but never recurrent state — state
    is created by :meth:`initial_state` and threaded through :meth:`step`
    by the caller, which is what makes one executor safely shareable by
    every session and the server's dispatcher thread.
    """

    #: Feature width the executor expects (set by concrete classes).
    input_size: int
    #: Output (phone-posterior) width.
    num_classes: int

    @abstractmethod
    def initial_state(self, batch: int) -> Any:
        """Fresh zero recurrent state for a ``batch``-wide stream."""

    @abstractmethod
    def step(self, frames: np.ndarray, state: Any) -> tuple[np.ndarray, Any]:
        """One frame: ``(B, D)`` + state → ``((B, C) logits, new state)``."""

    def run(self, inputs: np.ndarray) -> np.ndarray:
        """Whole-utterance inference: ``(T, B, D)`` → ``(T, B, C)`` logits.

        Default: the streaming loop itself, so it is byte-identical to a
        session by construction.  Backends may override with a hoisted
        implementation that keeps the bytes (invariant 1).
        """
        inputs = self.check_inputs(inputs)
        frames, batch, _ = inputs.shape
        state = self.initial_state(batch)
        logits = np.empty((frames, batch, self.num_classes), dtype=np.float64)
        for t in range(frames):
            logits[t], state = self.step(inputs[t], state)
        return logits

    def step_rows(
        self, frames: np.ndarray, states: Sequence[Any]
    ) -> tuple[np.ndarray, list[Any]]:
        """Micro-batched step over independent batch-1 streams.

        Default: a per-row loop over :meth:`step` — conformant with the
        row-isolation invariant on any platform.  Backends override it
        when they can vectorize without changing any row's bytes.
        """
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim != 2 or len(frames) != len(states):
            raise ConfigError(
                f"expected ({len(states)}, D) rows, got {frames.shape}"
            )
        out = np.empty((len(frames), self.num_classes), dtype=np.float64)
        new_states = []
        for r, state in enumerate(states):
            logits, new_state = self.step(frames[r : r + 1], state)
            out[r] = logits[0]
            new_states.append(new_state)
        return out, new_states

    # ------------------------------------------------------------------
    def check_inputs(self, inputs: np.ndarray) -> np.ndarray:
        return coerce_stream(inputs, self.input_size)


# ----------------------------------------------------------------------
# Built-in executors.
# ----------------------------------------------------------------------


class FloatExecutor(Executor):
    """The nn-graph backend: exact float math, graph-free inference.

    Replays exactly the op sequence of ``StackedRNNClassifier.forward``
    (cells, then the dense head) under ``no_grad``, so ``run`` is
    byte-identical to ``model(inputs).data`` — the invariant that keeps
    PER evaluation through the runtime equal to the legacy path.
    """

    def __init__(self, model: Any):
        self._model = model
        self.input_size = model.spec.input_size
        self.num_classes = model.spec.output_size

    def initial_state(self, batch: int) -> list:
        return [cell.initial_state(batch) for cell in self._model.cells]

    def step(self, frames: np.ndarray, state: list) -> tuple[np.ndarray, list]:
        from repro.nn.autograd import as_tensor, no_grad

        with no_grad():
            value = as_tensor(np.asarray(frames, dtype=np.float64))
            new_state = list(state)
            for index, cell in enumerate(self._model.cells):
                value, new_state[index] = cell(value, new_state[index])
            logits = self._model.classifier(value)
        return logits.data, new_state


class FixedExecutor(Executor):
    """The hardware backend: the CU emulator behind the runtime contract.

    ``run`` delegates to the hoisted layer-major ``CUEmulator.forward``
    and ``step``/``step_rows`` to the emulator's streaming surface — all
    byte-identical to ``forward_reference`` (test-enforced in
    ``tests/hw`` and re-checked at the runtime layer).
    """

    def __init__(self, emulator: Any):
        self._emulator = emulator
        self.input_size = emulator.spec.input_size
        self.num_classes = emulator.spec.output_size

    @property
    def emulator(self) -> Any:
        return self._emulator

    def initial_state(self, batch: int) -> list:
        return self._emulator.initial_states(batch)

    def step(self, frames: np.ndarray, state: list) -> tuple[np.ndarray, list]:
        return self._emulator.step(frames, state)

    def run(self, inputs: np.ndarray) -> np.ndarray:
        return self._emulator.forward(self.check_inputs(inputs))

    def step_rows(
        self, frames: np.ndarray, states: Sequence[Any]
    ) -> tuple[np.ndarray, list[Any]]:
        return self._emulator.step_rows(frames, list(states))


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BackendInfo:
    """One registered backend: a factory from compiled model to executor."""

    name: str
    factory: Callable[[Any], Executor]
    description: str = ""


BACKEND_REGISTRY = Registry("backend")


def register_backend(
    name: str, *, description: str = ""
) -> Callable[[Callable[[Any], Executor]], Callable[[Any], Executor]]:
    """Decorator registering ``factory(compiled) -> Executor`` under ``name``."""

    def decorate(factory: Callable[[Any], Executor]) -> Callable[[Any], Executor]:
        BACKEND_REGISTRY.register(
            name, BackendInfo(name=name, factory=factory, description=description)
        )
        return factory

    return decorate


@register_backend("float", description="nn graph: exact float inference")
def _build_float(compiled: Any) -> FloatExecutor:
    return FloatExecutor(compiled.to_model())


@register_backend(
    "fixed", description="CU emulator: fixed-point spectra, PWL activations"
)
def _build_fixed(compiled: Any) -> FixedExecutor:
    from repro.hw.emulator import CUEmulator

    options = compiled.options
    return FixedExecutor(
        CUEmulator(
            compiled.to_model(),
            weight_bits=options.get("weight_bits", 12),
            pwl_segments=options.get("pwl_segments", 16),
        )
    )


def build_executor(compiled: Any) -> Executor:
    """Instantiate ``compiled``'s backend executor via the registry."""
    info = BACKEND_REGISTRY.get(compiled.backend)
    return info.factory(compiled)


# ----------------------------------------------------------------------
# Conformance checking.
# ----------------------------------------------------------------------


def check_conformance(
    executor: Executor,
    inputs: np.ndarray,
    rows: int | None = None,
    workload: Any = None,
) -> None:
    """Assert the executor honours the backend contract on ``inputs``.

    ``inputs`` is a ``(T, B, D)`` probe.  Checks invariant 1 (``run`` ≡
    the step loop at width ``B``) and invariant 2 (``step_rows`` over
    ``rows`` batch-1 streams ≡ per-row ``step``; default ``min(B, 4)``).
    With a ``workload`` (a :class:`repro.runtime.workloads.WorkloadInfo`)
    that serves ``generate``, additionally pins the LM surface: a seeded
    generation driven through ``step`` must produce the same tokens as
    one driven through ``step_rows`` — the invariant that lets the server
    coalesce autoregressive rows with scoring rows.  Raises
    :class:`ConformanceError` naming the first mismatch.
    """
    inputs = executor.check_inputs(inputs)
    frames, batch, _ = inputs.shape

    hoisted = executor.run(inputs)
    state = executor.initial_state(batch)
    for t in range(frames):
        logits, state = executor.step(inputs[t], state)
        if not np.array_equal(hoisted[t], logits):
            raise ConformanceError(
                f"run() and step() disagree at frame {t}: streaming must be "
                "byte-identical to the batched path"
            )

    rows = min(batch, 4) if rows is None else rows
    row_frames = np.ascontiguousarray(inputs[0, :rows])
    states = [executor.initial_state(1) for _ in range(rows)]
    coalesced, _ = executor.step_rows(row_frames, states)
    for r in range(rows):
        single, _ = executor.step(
            row_frames[r : r + 1], executor.initial_state(1)
        )
        if not np.array_equal(coalesced[r], single[0]):
            raise ConformanceError(
                f"step_rows() row {r} differs from a standalone batch-1 "
                "step: micro-batching must not perturb a stream's bytes"
            )

    if workload is not None and "generate" in getattr(workload, "ops", ()):
        _check_lm_conformance(executor, workload)


def _check_lm_conformance(executor: Executor, workload: Any) -> None:
    """Generation must be invariant to the row-serving path."""
    vocab = executor.input_size
    if executor.num_classes != vocab:
        raise ConformanceError(
            "an LM executor needs input_size == num_classes == vocab_size, "
            f"got {vocab} vs {executor.num_classes}"
        )
    params = {
        "prompt": [0, vocab - 1],
        "steps": 8,
        "temperature": 0.7,
        "top_k": min(vocab, 8),
        "seed": 1234,
    }

    def sample(step_one: Callable[[np.ndarray, Any], tuple]) -> list[int]:
        driver = workload.make_driver(
            "generate", vocab_size=vocab, params=params
        )
        state = executor.initial_state(1)
        while True:
            row = driver.next_row()
            if row is None:
                return driver.result()["tokens"]
            logits, state = step_one(row, state)
            driver.feed(logits)

    def via_step(row: np.ndarray, state: Any) -> tuple:
        logits, state = executor.step(row[None, :], state)
        return logits[0], state

    def via_rows(row: np.ndarray, state: Any) -> tuple:
        logits, states = executor.step_rows(row[None, :], [state])
        return logits[0], states[0]

    if sample(via_step) != sample(via_rows):
        raise ConformanceError(
            "generate() diverges between step() and step_rows(): "
            "autoregressive sampling must be invariant to micro-batching"
        )
