"""Workload registry: pluggable session semantics over one runtime.

A *workload* owns what a session means beyond raw frame scoring: which
ops it serves (``generate``, ``score``), how its inputs are coerced
(integer token ids vs float64 feature frames), and the step semantics of
each op.  Workloads register in :data:`WORKLOAD_REGISTRY` exactly like
backends, cells, and platforms — adding one is a registration call, not
edits across session/server/wire layers.

Two ship built in:

* ``"asr"`` — frame scoring, the original workload.  ``push`` only; the
  refactor onto this registry is byte-identical (same
  :func:`~repro.runtime.coerce.coerce_frame` path).
* ``"lm"`` — character-level language modeling.  Adds ``generate``
  (seeded temperature/top-k autoregressive sampling) and ``score``
  (per-token log-probs).  Token ids are fed to the model as one-hot
  float64 rows, so LM steps are ordinary scoring rows to every layer
  below.

The op semantics live in *row drivers* — small state machines with a
``next_row() -> (D,) row | None`` / ``feed((C,) logits)`` surface — and
every serving layer (in-process :class:`~repro.runtime.Session`, the
micro-batching :class:`~repro.runtime.Server`, the net worker scheduler)
drives the *same* driver classes.  That is what makes generation
byte-identical across backends, transports, and process boundaries: only
the transport differs, never the math.  A ``generate`` op advances the
session by ``len(prompt) + steps - 1`` rows (the last sampled token is
returned but never fed); ``score`` over ``K`` tokens advances by ``K-1``
rows and returns ``K-1`` log-probs for ``tokens[1:]``.  Both journal as
their equivalent one-hot rows, so reattach/failover replay rebuilds the
exact post-op state with the machinery frame scoring already has.
"""

from __future__ import annotations

# bit-exact: this module is on the fixed/float byte-identity surface
# (docs/analysis.md, REP003) — dtypes stay explicit, reductions ordered.

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from repro.api.registry import Registry
from repro.errors import ConfigError
from repro.lm.sampling import sample_token, validate_sampling
from repro.runtime.coerce import coerce_tokens, one_hot_rows

__all__ = [
    "WorkloadInfo",
    "WORKLOAD_REGISTRY",
    "register_workload",
    "GenerateDriver",
    "ScoreDriver",
    "generate_params",
    "score_params",
    "run_driver",
    "MAX_GENERATE_STEPS",
]

#: Upper bound on sampled tokens per ``generate`` op — one op is one
#: scheduling unit on a worker, so this caps how long a single request
#: can monopolize a session's turn.
MAX_GENERATE_STEPS = 65536


# ----------------------------------------------------------------------
# Row drivers.
# ----------------------------------------------------------------------


class GenerateDriver:
    """Autoregressive sampling as a strict next_row/feed state machine.

    Rows come out one at a time and each ``feed`` must land before the
    next ``next_row`` — token ``i+1``'s one-hot depends on the logits of
    row ``i``.  Sampling starts on the last prompt row's logits; the
    final sampled token is returned in the result but never fed.
    """

    __slots__ = (
        "_vocab",
        "_prompt",
        "_steps",
        "_temperature",
        "_top_k",
        "_rng",
        "_emitted",
        "_fed",
        "_tokens",
        "_total",
    )

    def __init__(
        self,
        vocab_size: int,
        prompt,
        steps: int,
        temperature: float,
        top_k: int,
        seed: int,
    ):
        self._vocab = int(vocab_size)
        self._prompt = coerce_tokens(prompt, self._vocab, min_len=1)
        if not isinstance(steps, (int, np.integer)) or isinstance(steps, bool):
            raise ConfigError(f"steps must be an integer, got {steps!r}")
        steps = int(steps)
        if not 1 <= steps <= MAX_GENERATE_STEPS:
            raise ConfigError(
                f"steps must be in [1, {MAX_GENERATE_STEPS}], got {steps}"
            )
        self._steps = steps
        self._temperature, self._top_k = validate_sampling(temperature, top_k)
        if not isinstance(seed, (int, np.integer)) or isinstance(seed, bool):
            raise ConfigError(f"seed must be an integer, got {seed!r}")
        if int(seed) < 0:
            raise ConfigError(f"seed must be >= 0, got {seed}")
        self._rng = np.random.default_rng(int(seed))
        self._emitted = 0
        self._fed = 0
        self._tokens: list[int] = []
        self._total = self._prompt.shape[0] + steps - 1

    @property
    def rows_total(self) -> int:
        """Rows this op feeds — the session's sequence-number advance."""
        return self._total

    @property
    def done(self) -> bool:
        return self._fed >= self._total

    def next_row(self) -> np.ndarray | None:
        """The next one-hot row to step, or None when all rows are out."""
        if self._emitted >= self._total:
            return None
        if self._emitted > self._fed:
            raise ConfigError(
                "generate is autoregressive: feed the previous row's "
                "logits before requesting the next row"
            )
        index = self._emitted
        prompt_len = self._prompt.shape[0]
        if index < prompt_len:
            token = int(self._prompt[index])
        else:
            token = self._tokens[index - prompt_len]
        self._emitted += 1
        row = np.zeros(self._vocab, dtype=np.float64)
        row[token] = 1.0
        return row

    def feed(self, logits: np.ndarray) -> None:
        """Consume the logits of the most recently emitted row."""
        if self._fed >= self._emitted:
            raise ConfigError("feed() without a matching next_row()")
        logits = np.asarray(logits, dtype=np.float64).reshape(-1)
        if logits.shape[0] != self._vocab:
            raise ConfigError(
                f"expected ({self._vocab},) logits, got {logits.shape}"
            )
        if self._fed >= self._prompt.shape[0] - 1:
            self._tokens.append(
                sample_token(
                    logits,
                    temperature=self._temperature,
                    top_k=self._top_k,
                    rng=self._rng,
                )
            )
        self._fed += 1

    def fed_rows(self) -> np.ndarray:
        """The one-hot rows fed so far — the op's journal contribution."""
        sampled = self._tokens[: max(0, self._fed - self._prompt.shape[0])]
        tokens = np.concatenate(
            [
                self._prompt[: min(self._fed, self._prompt.shape[0])],
                np.asarray(sampled, dtype=np.int64),
            ]
        )
        return one_hot_rows(tokens, self._vocab)

    def result(self) -> dict[str, Any]:
        if not self.done:
            raise ConfigError(
                f"generate incomplete: {self._fed}/{self._total} rows fed"
            )
        return {"tokens": [int(t) for t in self._tokens]}


class ScoreDriver:
    """Per-token log-probs: feed ``tokens[:-1]``, score ``tokens[1:]``.

    Unlike generation, every row is known up front, so rows may be
    emitted ahead of their feeds (the worker batches them like
    ``push_many``); feeds still arrive in row order.
    """

    __slots__ = ("_vocab", "_tokens", "_emitted", "_fed", "_logprobs")

    def __init__(self, vocab_size: int, tokens):
        self._vocab = int(vocab_size)
        self._tokens = coerce_tokens(tokens, self._vocab, min_len=2)
        self._emitted = 0
        self._fed = 0
        self._logprobs = np.empty(self._tokens.shape[0] - 1, dtype=np.float64)

    @property
    def rows_total(self) -> int:
        return self._tokens.shape[0] - 1

    @property
    def done(self) -> bool:
        return self._fed >= self.rows_total

    def next_row(self) -> np.ndarray | None:
        if self._emitted >= self.rows_total:
            return None
        index = self._emitted
        self._emitted += 1
        row = np.zeros(self._vocab, dtype=np.float64)
        row[int(self._tokens[index])] = 1.0
        return row

    def feed(self, logits: np.ndarray) -> None:
        if self._fed >= self._emitted:
            raise ConfigError("feed() without a matching next_row()")
        logits = np.asarray(logits, dtype=np.float64).reshape(-1)
        if logits.shape[0] != self._vocab:
            raise ConfigError(
                f"expected ({self._vocab},) logits, got {logits.shape}"
            )
        target = int(self._tokens[self._fed + 1])
        peak = np.max(logits)
        lse = peak + np.log(np.sum(np.exp(logits - peak)))
        self._logprobs[self._fed] = logits[target] - lse
        self._fed += 1

    def fed_rows(self) -> np.ndarray:
        return one_hot_rows(self._tokens[: self._fed], self._vocab)

    def result(self) -> dict[str, Any]:
        if not self.done:
            raise ConfigError(
                f"score incomplete: {self._fed}/{self.rows_total} rows fed"
            )
        return {"logprobs": self._logprobs.copy()}


def run_driver(
    driver, step_row: Callable[[np.ndarray], np.ndarray]
) -> dict[str, Any]:
    """Drive an op to completion with a serial row→logits callable.

    ``step_row`` maps a ``(D,)`` row to its ``(C,)`` logits.  This is the
    loop every in-process surface uses; the net worker replicates the
    same order through its scheduler, which is why the bytes agree.
    """
    while True:
        row = driver.next_row()
        if row is None:
            return driver.result()
        driver.feed(step_row(row))


# ----------------------------------------------------------------------
# Wire-safe op parameter builders.
# ----------------------------------------------------------------------


def generate_params(
    prompt,
    steps: int,
    temperature: float = 1.0,
    top_k: int = 0,
    seed: int = 0,
    *,
    vocab_size: int,
) -> dict[str, Any]:
    """Validate and normalize ``generate`` parameters to a JSON-safe dict.

    Clients call this before the op crosses the wire; the serving side
    re-validates by constructing the driver from the same dict, so a
    malformed request fails identically on both ends.
    """
    driver = GenerateDriver(vocab_size, prompt, steps, temperature, top_k, seed)
    return {
        "prompt": [int(t) for t in driver._prompt],
        "steps": int(driver._steps),
        "temperature": float(driver._temperature),
        "top_k": int(driver._top_k),
        "seed": int(seed),
    }


def score_params(tokens, *, vocab_size: int) -> dict[str, Any]:
    """Validate and normalize ``score`` parameters to a JSON-safe dict."""
    driver = ScoreDriver(vocab_size, tokens)
    return {"tokens": [int(t) for t in driver._tokens]}


def _make_generate_driver(
    vocab_size: int, params: Mapping[str, Any]
) -> GenerateDriver:
    params = dict(params)
    prompt = params.pop("prompt", None)
    steps = params.pop("steps", None)
    temperature = params.pop("temperature", 1.0)
    top_k = params.pop("top_k", 0)
    seed = params.pop("seed", 0)
    if params:
        raise ConfigError(f"unknown generate parameters: {sorted(params)}")
    if prompt is None or steps is None:
        raise ConfigError("generate requires 'prompt' and 'steps'")
    return GenerateDriver(vocab_size, prompt, steps, temperature, top_k, seed)


def _make_score_driver(
    vocab_size: int, params: Mapping[str, Any]
) -> ScoreDriver:
    params = dict(params)
    tokens = params.pop("tokens", None)
    if params:
        raise ConfigError(f"unknown score parameters: {sorted(params)}")
    if tokens is None:
        raise ConfigError("score requires 'tokens'")
    return ScoreDriver(vocab_size, tokens)


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadInfo:
    """One registered workload: its op set and driver factories."""

    name: str
    description: str = ""
    #: Session ops beyond the frame core (push/push_many/reset/close).
    ops: tuple[str, ...] = ()
    #: True when sessions accept integer token ids (coerced to one-hots).
    token_input: bool = False
    driver_factories: Mapping[str, Callable[[int, Mapping[str, Any]], Any]] = (
        field(default_factory=dict)
    )

    def make_driver(
        self, op: str, *, vocab_size: int, params: Mapping[str, Any]
    ) -> Any:
        """Build the row driver serving one ``op`` request."""
        factory = self.driver_factories.get(op)
        if factory is None:
            raise ConfigError(
                f"workload {self.name!r} does not serve op {op!r} "
                f"(serves: {sorted(self.ops) or 'frame scoring only'})"
            )
        return factory(vocab_size, params)


WORKLOAD_REGISTRY = Registry("workload")


def register_workload(
    info: WorkloadInfo, aliases: tuple[str, ...] = ()
) -> WorkloadInfo:
    """Register a workload, mirroring ``register_backend``."""
    WORKLOAD_REGISTRY.register(info.name, info, aliases=aliases)
    return info


ASR_WORKLOAD = register_workload(
    WorkloadInfo(
        name="asr",
        description="framewise acoustic scoring (push -> phone posteriors)",
    )
)

LM_WORKLOAD = register_workload(
    WorkloadInfo(
        name="lm",
        description=(
            "char-level language modeling: seeded generate + per-token score"
        ),
        ops=("generate", "score"),
        token_input=True,
        driver_factories={
            "generate": _make_generate_driver,
            "score": _make_score_driver,
        },
    ),
    aliases=("rnnlm",),
)
