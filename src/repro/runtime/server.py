"""Micro-batching inference server over one compiled model.

Concurrent callers each hold a :class:`ServerSession` and push frames; a
single dispatcher thread coalesces whatever pushes are pending (up to
``max_batch``, waiting at most ``max_delay_s`` for stragglers) into one
``step_rows`` backend call.  Because the backend contract requires *row
isolation* — each coalesced row computes exactly the bytes a standalone
batch-1 step would — micro-batching is semantically invisible: a session
served this way returns byte-identical logits to the same stream pushed
through a plain :class:`repro.runtime.Session`, regardless of how the
scheduler happened to group frames.  What changes is throughput: the
Python/numpy dispatch cost of a step is paid once per *batch* instead of
once per *frame* (``repro bench --only runtime_session`` records the
speedup).

>>> with compiled.serve(max_batch=16) as server:
...     session = server.session()
...     posteriors = session.push(frame)      # safe from any thread's session
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import ConfigError
from repro.runtime.coerce import coerce_frame
from repro.runtime.workloads import WORKLOAD_REGISTRY, run_driver

__all__ = ["Server", "ServerSession", "ServerStats"]


@dataclass(frozen=True)
class ServerStats:
    """A snapshot of one server's scheduling counters."""

    frames: int
    batches: int
    sessions_opened: int
    sessions_active: int
    max_coalesced: int
    max_batch: int

    @property
    def mean_coalesced(self) -> float:
        """Average rows per backend call — the micro-batching win."""
        return self.frames / self.batches if self.batches else 0.0

    def describe(self) -> str:
        return (
            f"server: {self.frames} frames in {self.batches} batches "
            f"(mean {self.mean_coalesced:.2f}, max {self.max_coalesced} of "
            f"{self.max_batch} rows), {self.sessions_active}/"
            f"{self.sessions_opened} sessions active"
        )

    def to_dict(self) -> dict:
        """JSON-ready snapshot (the net layer's ``stats`` reply format)."""
        return {
            "frames": self.frames,
            "batches": self.batches,
            "sessions_opened": self.sessions_opened,
            "sessions_active": self.sessions_active,
            "max_coalesced": self.max_coalesced,
            "max_batch": self.max_batch,
            "mean_coalesced": self.mean_coalesced,
        }


class _Request:
    __slots__ = ("session", "frame", "state", "future")

    def __init__(self, session: Any, frame: np.ndarray, state: Any):
        self.session = session
        self.frame = frame
        self.state = state
        self.future: Future = Future()


class Server:
    """Thread-based micro-batching scheduler for concurrent sessions.

    ``max_batch`` bounds rows per backend call; ``max_delay_s`` is how
    long the dispatcher holds an under-full batch open for more pushes
    (clients that push in lockstep — the steady serving state — coalesce
    fully without ever waiting the whole window).  Close with
    :meth:`close` or use as a context manager; pending pushes are drained
    before shutdown.
    """

    def __init__(
        self,
        compiled: Any,
        max_batch: int = 16,
        max_delay_s: float = 0.002,
    ):
        if max_batch < 1:
            raise ConfigError(f"max_batch must be positive, got {max_batch}")
        if max_delay_s < 0:
            raise ConfigError(f"max_delay_s must be >= 0, got {max_delay_s}")
        self._compiled = compiled
        self._executor = compiled.executor()
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s

        self._cond = threading.Condition()
        self._queue: deque[_Request] = deque()  # guarded-by: _cond
        # Sessions whose frames were in the previous batch: mid-stream, so
        # their next push is expected momentarily (the lockstep pattern).
        self._expected: set[int] = set()  # guarded-by: _cond
        self._closed = False  # guarded-by: _cond
        self._frames = 0  # guarded-by: _cond
        self._batches = 0  # guarded-by: _cond
        self._max_coalesced = 0  # guarded-by: _cond
        self._sessions_opened = 0  # guarded-by: _cond
        self._sessions_active = 0  # guarded-by: _cond

        self._dispatcher = threading.Thread(
            target=self._loop, name="repro-runtime-server", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------
    @property
    def compiled(self) -> Any:
        return self._compiled

    def session(self) -> "ServerSession":
        """Open a width-1 streaming session multiplexed onto this server."""
        with self._cond:
            if self._closed:
                raise ConfigError("server is closed")
            self._sessions_opened += 1
            self._sessions_active += 1
        return ServerSession(self)

    def stats(self) -> ServerStats:
        with self._cond:
            return ServerStats(
                frames=self._frames,
                batches=self._batches,
                sessions_opened=self._sessions_opened,
                sessions_active=self._sessions_active,
                max_coalesced=self._max_coalesced,
                max_batch=self.max_batch,
            )

    # ------------------------------------------------------------------
    # External-scheduler surface (the net worker's wire scheduler).
    # ------------------------------------------------------------------
    def submit(self, session: Any, frame: np.ndarray, state: Any) -> Future:
        """Queue one coerced ``(D,)`` row for micro-batching (non-blocking).

        The public row-level hook for external schedulers — the net
        worker drives its sessions through here instead of blocking a
        thread per session in :meth:`ServerSession.push`.  ``session`` is
        any identity token held stable for the stream's life (it keys the
        fill-target accounting); the returned future resolves to
        ``(logits_row, new_state)``, byte-identical to the row a
        :class:`ServerSession` would produce.  Callers must serialize
        submissions per session: a stream's next row may only be
        submitted with the state returned for its previous one.
        """
        return self._submit(session, frame, state)

    def step_inline(self, frame: np.ndarray, state: Any) -> tuple:
        """Compute one coerced ``(D,)`` row synchronously on the caller.

        The fast-path complement to :meth:`submit` for an external
        scheduler that *knows* no other stream could coalesce right now
        (a single busy session cannot batch with anyone): it skips the
        dispatcher queue and its condition-variable wakeup entirely and
        runs the same 1-row ``step_rows`` call the dispatcher would,
        so the logits and new state are byte-identical to the submitted
        path.  Counts as a 1-row batch in :meth:`stats`.  Callers keep
        the per-session serialization contract of :meth:`submit`.
        """
        with self._cond:
            if self._closed:
                raise ConfigError("server is closed")
            self._frames += 1
            self._batches += 1
            if self._max_coalesced < 1:
                self._max_coalesced = 1
        logits, states = self._executor.step_rows(
            np.stack([frame]), [state]
        )
        return logits[0], states[0]

    def initial_state(self) -> Any:
        """Fresh width-1 recurrent state for an externally scheduled stream."""
        return self._executor.initial_state(1)

    def register_session(self) -> None:
        """Count one externally scheduled stream in the stats totals."""
        with self._cond:
            if self._closed:
                raise ConfigError("server is closed")
            self._sessions_opened += 1
            self._sessions_active += 1

    def release_session(self, session: Any) -> None:
        """Release an externally scheduled stream (pairs register_session)."""
        self._release_session(session)

    def close(self) -> None:
        """Drain pending pushes, stop the dispatcher, reject new work.

        Safe (and equivalent) under concurrent calls: *every* caller
        returns only after the dispatcher has exited and every queued
        push has been resolved — completed normally during the drain, or
        failed with :class:`ConfigError`.  A push blocked in
        ``future.result()`` therefore can never outlive ``close()``.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        # Join unconditionally (not just for the first caller): a second
        # concurrent close() must not return while the drain is still in
        # flight.  Joining a finished thread is a no-op; joining from the
        # dispatcher itself (an executor callback closing its own server)
        # cannot wait, so fall through to the queue sweep instead.
        if threading.current_thread() is not self._dispatcher:
            self._dispatcher.join()
        self._fail_pending("server is closed")

    def _fail_pending(self, reason: str) -> None:
        """Fail every still-queued request — none may be silently dropped.

        Normally the dispatcher drains the queue before exiting and this
        sweeps nothing; it exists for the abnormal paths (dispatcher
        death, close() from inside the dispatcher) where queued futures
        would otherwise hang their callers forever.
        """
        with self._cond:
            pending, self._queue = list(self._queue), deque()
        for request in pending:
            if not request.future.done():
                request.future.set_exception(ConfigError(reason))

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _submit(self, session: Any, frame: np.ndarray, state: Any) -> Future:
        request = _Request(session, frame, state)
        with self._cond:
            if self._closed:
                raise ConfigError("server is closed")
            self._queue.append(request)
            self._cond.notify()  # only the dispatcher waits on the condition
        return request.future

    def _release_session(self, session: Any) -> None:
        with self._cond:
            self._sessions_active -= 1
            self._expected.discard(id(session))

    def _fill_target(self) -> int:  # holds-lock: _cond
        """Rows worth waiting for: sessions queued now or mid-stream.

        Counting *open* sessions instead would let one idle-but-open
        session (a client between utterances) make every other stream wait
        the full ``max_delay_s`` window on every frame.  A session counts
        only while it has a push queued or was in the immediately previous
        batch — i.e. its next lockstep push is genuinely imminent.
        """
        live = {id(request.session) for request in self._queue}
        live |= self._expected
        return max(1, min(self.max_batch, len(live)))

    def _loop(self) -> None:
        try:
            self._loop_inner()
        finally:
            # Dispatcher exit — normal drain or death by unexpected
            # exception.  Either way no queued future may be left to hang
            # its caller: mark the server closed so new pushes are
            # rejected, then fail anything still queued.
            with self._cond:
                self._closed = True
            self._fail_pending("server dispatcher exited with work queued")

    def _loop_inner(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue and self._closed:
                    return
                # Micro-batching window: hold the batch open briefly so
                # lockstep clients land in one backend call.  The target is
                # re-derived as pushes arrive (a fresh session joining the
                # window raises it; it never exceeds the rows that can
                # actually show up, so the window cannot stall on idle or
                # finished sessions).
                if len(self._queue) < self._fill_target() and self.max_delay_s > 0:
                    deadline = time.monotonic() + self.max_delay_s
                    while (
                        len(self._queue) < self._fill_target()
                        and not self._closed
                    ):
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._cond.wait(remaining)
                count = min(self.max_batch, len(self._queue))
                batch = [self._queue.popleft() for _ in range(count)]
                self._expected = {id(request.session) for request in batch}
                self._batches += 1
                self._frames += count
                self._max_coalesced = max(self._max_coalesced, count)
            try:
                frames = np.stack([request.frame for request in batch])
                logits, states = self._executor.step_rows(
                    frames, [request.state for request in batch]
                )
                for index, request in enumerate(batch):
                    request.future.set_result((logits[index], states[index]))
            except BaseException as error:  # noqa: BLE001 — relayed to callers
                for request in batch:
                    if not request.future.done():
                        request.future.set_exception(error)


class ServerSession:
    """A width-1 streaming session whose steps run on the server.

    Mirrors the :class:`repro.runtime.Session` surface (``push``,
    ``reset``, ``frames_pushed``) and the same byte-identity guarantee:
    the logits equal a standalone width-1 session on the same stream.
    ``push`` blocks until the coalesced backend call returns, so a
    session has at most one frame in flight and stays strictly ordered.
    One session per caller thread; open as many as you need.
    """

    def __init__(self, server: Server):
        self._server = server
        self._executor = server._executor
        # getattr with the asr default keeps duck-typed compiled stand-ins
        # (tests, custom wrappers) working: frame scoring needs no info.
        self._workload = getattr(
            server.compiled, "workload_info", None
        ) or WORKLOAD_REGISTRY.get("asr")
        self._state = self._executor.initial_state(1)
        self._frames = 0
        self._close_lock = threading.Lock()
        self._open = True  # guarded-by: _close_lock

    @property
    def frames_pushed(self) -> int:
        return self._frames

    def push(self, frame: np.ndarray) -> np.ndarray:
        """One frame in, that frame's logits out.

        Accepts a bare ``(D,)`` vector (returns ``(C,)``) or a ``(1, D)``
        frame (returns ``(1, C)``) — the same shapes, via the same
        :func:`~repro.runtime.coerce.coerce_frame`, as a width-1
        :class:`repro.runtime.Session`.
        """
        # Read under the close lock: a concurrent close() publishes
        # ``_open = False`` there, and an unsynchronized read could submit
        # a frame into a slot the server has already released.
        with self._close_lock:
            if not self._open:
                raise ConfigError("session is closed")
        frame, squeezed = coerce_frame(frame, 1, self._executor.input_size)
        future = self._server._submit(self, frame[0], self._state)
        logits, self._state = future.result()
        self._frames += 1
        return logits if squeezed else logits[None, :]

    # ------------------------------------------------------------------
    # Workload ops (token-based sessions).
    # ------------------------------------------------------------------
    def _step_row(self, row: np.ndarray) -> np.ndarray:
        future = self._server._submit(self, row, self._state)
        logits, self._state = future.result()
        self._frames += 1
        return logits

    def _run_op(self, op: str, params: dict) -> dict:
        with self._close_lock:
            if not self._open:
                raise ConfigError("session is closed")
        driver = self._workload.make_driver(
            op, vocab_size=self._executor.input_size, params=params
        )
        return run_driver(driver, self._step_row)

    def generate(
        self,
        prompt,
        steps: int = 32,
        *,
        temperature: float = 1.0,
        top_k: int = 0,
        seed: int = 0,
    ) -> list[int]:
        """Sample ``steps`` tokens after ``prompt`` (lm workload only).

        Each autoregressive row goes through :meth:`Server.submit`, so it
        coalesces with other sessions' pushes — and by row isolation the
        tokens are byte-identical to a standalone
        :meth:`repro.runtime.Session.generate` with the same seed.
        """
        return self._run_op(
            "generate",
            {
                "prompt": prompt,
                "steps": steps,
                "temperature": temperature,
                "top_k": top_k,
                "seed": seed,
            },
        )["tokens"]

    def score(self, tokens) -> np.ndarray:
        """Per-token log-probs for ``tokens[1:]`` (lm workload only)."""
        return self._run_op("score", {"tokens": tokens})["logprobs"]

    def reset(self) -> "ServerSession":
        """Zero the carried state, as between utterances.  Returns self."""
        self._state = self._executor.initial_state(1)
        self._frames = 0
        return self

    def close(self) -> None:
        """Release the session's server slot.  Idempotent, thread-safe."""
        with self._close_lock:
            if not self._open:
                return
            self._open = False
        self._server._release_session(self)

    def __enter__(self) -> "ServerSession":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
