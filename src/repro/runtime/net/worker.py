"""The serving worker process of :mod:`repro.runtime.net`.

Each worker is one OS process that loads the compiled ``.npz`` artifact
from disk and runs its **own** micro-batching
:class:`repro.runtime.Server` — numpy compute in ``N`` workers scales
across cores where one Python process cannot.  Session state lives here:
the parent routes every request for a session name to the same worker
(stable hash), so the recurrent state never crosses a process boundary.

Scheduling (PR 7) is event-driven rather than thread-per-session: a
single :class:`_Scheduler` owns every session's op queue and drives the
micro-batching server through its non-blocking :meth:`~repro.runtime.\
Server.submit` hook.  Per-session order is strict — one op executes at a
time per session, its completion callback submits the next — while
concurrent sessions' rows still coalesce into shared ``step_rows``
batches exactly as blocking threads would.  A ``push_many`` batch is
applied frame by frame through the same path, so its logits are
byte-identical to the equivalent sequence of single pushes.  When
exactly one session is busy there is nothing to coalesce with, so its
rows run inline on the consumer thread (:meth:`~repro.runtime.Server.\
step_inline`) instead of paying two dispatcher wakeups per frame —
``inline=False`` restores the dispatcher-only seed behaviour (the bench
baseline).

Transport: with a :class:`~repro.runtime.net.ring.RingPair` attached,
request payloads arrive in shared-memory ring slots (doorbells coalesced
on the request queue) and result payloads leave the same way; the pickled
queue path remains for control replies, oversized payloads, and the
``transport="pipe"`` fallback.  Every per-ticket reply — ring or queue —
carries a per-worker ``emit_seq`` so the parent restores emission order
across the two paths.

Parent → worker messages (tuples on the request queue)::

    ("kick",)                                       # drain the request ring
    ("payload", bytes)                              # oversized ring entry's payload
    ("req", ticket, op, session, payload, shape)    # pipe-transport request
    ("stats", token)
    ("sessions", token)                             # list live sessions
    ("sweep", ttl_s)                                # evict sessions idle >= ttl
    ("hb", token)                                   # heartbeat probe
    ("shutdown",)

Worker → parent messages (on this worker's own reply queue — never
shared between workers, so one worker's death cannot poison another's
queue locks)::

    ("ready", index)                    # artifact loaded, serving
    ("ring",)                           # drain the response ring
    ("res", key, emit_seq, reply)       # reply dict; key = ticket or stats token
    ("hb", index, token)                # heartbeat echo
    ("fatal", index, message)           # the worker is dead

Session lifecycle (PR 8): every session records ``last_used``; the
parent's periodic ``sweep`` evicts sessions idle at least the server's
``session_ttl_s``, and a ``session_cap`` bounds the table — a new open
at the cap sheds the least-recently-used idle session (LRU), or fails
if every session is busy.  Eviction counters ride the ``stats`` reply.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Any

import numpy as np

from repro.errors import ReproError
from repro.runtime.coerce import coerce_frame, coerce_stream
from repro.runtime.net.faults import FaultInjector
from repro.runtime.net.protocol import MAX_PUSH_MANY_FRAMES, UnknownSessionError
from repro.runtime.net.ring import (
    OP_CLOSE,
    OP_EVICT,
    OP_GENERATE,
    OP_OPEN,
    OP_PUSH,
    OP_PUSH_MANY,
    OP_RESET,
    OP_SCORE,
    RingPair,
)

__all__ = ["worker_main"]

_OP_NAMES = {OP_OPEN: "open", OP_PUSH: "push", OP_PUSH_MANY: "push_many",
             OP_RESET: "reset", OP_CLOSE: "close", OP_EVICT: "evict",
             OP_GENERATE: "generate", OP_SCORE: "score"}


def _watch_parent() -> None:
    """Die with the parent: a SIGKILLed NetServer must not leave workers.

    The request queue cannot signal parent death — this process holds
    its own write end, so the pipe never reaches EOF.  The parent
    *process sentinel* does: it fires exactly when the parent exits, at
    which point nobody is pumping our replies and the only honest move
    is immediate exit (``os._exit``: no drain — the drain's audience is
    gone).  Without this, every crashed-host drill in the cluster tier
    (gateway failover tests, ``BackendFleet.kill``) would orphan one
    worker per kill.
    """
    import multiprocessing as mp
    import os

    parent = mp.parent_process()
    if parent is None:  # directly invoked, not spawned: nothing to watch
        return
    parent.join()
    os._exit(2)


def _error(error: BaseException) -> dict:
    return {
        "ok": False,
        "type": "error",
        "kind": type(error).__name__,
        "error": str(error),
    }


class _WireSession:
    """One named stream's worker-side state: strictly ordered op queue."""

    __slots__ = ("name", "state", "frames", "ops", "busy", "last_used")

    def __init__(self, name: str, state: Any):
        self.name = name
        self.state = state
        self.frames = 0
        self.ops: deque[_Op] = deque()
        self.busy = False  # an op's rows are in the micro-batch server
        self.last_used = time.monotonic()  # refreshed on every accepted op


class _Op:
    """One accepted session op, with multi-frame progress for push_many.

    A workload op (``generate``/``score``) carries a *row driver*
    instead of pre-materialized rows: each row to step comes from
    ``driver.next_row()`` and its logits go back through
    ``driver.feed()`` — the identical driver classes every in-process
    surface runs, which is why the emitted bytes cannot differ.
    """

    __slots__ = ("ticket", "op", "rows", "many", "cursor", "collected",
                 "driver")

    def __init__(self, ticket: int, op: int,
                 rows: np.ndarray | None, many: bool, driver: Any = None):
        self.ticket = ticket
        self.op = op
        self.rows = rows  # (K, D) float64; push applies row 0 only
        self.many = many
        self.cursor = 0
        self.collected: list[np.ndarray] = []
        self.driver = driver  # workload row driver (generate/score)


class _Scheduler:
    """Event-driven session scheduler over the micro-batching server.

    All state transitions run inside :meth:`_run_pump`, a reentrancy-safe
    work pump: whichever thread (ring consumer or server dispatcher)
    schedules work while no pump is active becomes the pumper and drains
    the queue; a thread that schedules into a live pump just appends.
    This serializes every mutation without a thread per session and
    without recursion through already-completed futures.
    """

    def __init__(self, index: int, compiled: Any, server: Any,
                 rings: RingPair | None, replies: Any, *,
                 inline: bool = True, session_cap: int | None = None,
                 faults: FaultInjector | None = None):
        self._index = index
        self._server = server
        self._rings = rings
        self._replies = replies
        self._inline = inline
        self._session_cap = session_cap
        self._faults = faults if faults else None
        self._input_size = compiled.input_size
        self._workload = compiled.workload_info
        self.meta = {
            "backend": compiled.backend,
            "input_size": compiled.input_size,
            "num_classes": compiled.num_classes,
            "worker": index,
        }
        self._lock = threading.Lock()
        self._work: deque[tuple] = deque()  # guarded-by: _lock
        self._pumping = False  # guarded-by: _lock
        self._outstanding = 0  # guarded-by: _lock
        self._idle = threading.Condition(self._lock)
        # Pump-only state (serialized by the pump, no lock needed).
        self._sessions: dict[str, _WireSession] = {}
        self._busy_count = 0  # sessions with rows in (or bound for) the server
        self._emit_seq = 0
        self._evicted = {"idle": 0, "lru": 0, "admin": 0}

    # ------------------------------------------------------------------
    @property
    def session_count(self) -> int:
        return len(self._sessions)

    def lifecycle_stats(self) -> dict:
        """Session-table counters for the ``stats`` reply."""
        return {
            "sessions": len(self._sessions),
            "evicted_idle": self._evicted["idle"],
            "evicted_lru": self._evicted["lru"],
            "evicted_admin": self._evicted["admin"],
        }

    def list_sessions(self, token: str) -> None:
        """Schedule a session-table snapshot reply (any thread)."""
        self._schedule(("sessions", token))

    def sweep(self, ttl_s: float) -> None:
        """Schedule an idle-TTL eviction pass (any thread)."""
        self._schedule(("sweep", ttl_s))

    def schedule_op(self, ticket: int, op: int, session: str,
                    payload: bytes | None, shape: tuple[int, ...]) -> None:
        """Accept one parent request (ring consumer thread)."""
        with self._lock:
            self._outstanding += 1
        self._schedule(("op", ticket, op, session, payload, shape))

    def wait_idle(self, timeout: float) -> bool:
        """Block until every accepted op has emitted its reply."""
        with self._lock:
            return self._idle.wait_for(
                lambda: self._outstanding == 0, timeout=timeout
            )

    # ------------------------------------------------------------------
    def _schedule(self, item: tuple) -> None:
        with self._lock:
            self._work.append(item)
            if self._pumping:
                return
            self._pumping = True
        self._run_pump()

    def _run_pump(self) -> None:
        while True:
            with self._lock:
                if not self._work:
                    self._pumping = False
                    return
                item = self._work.popleft()
            if item[0] == "op":
                self._accept(*item[1:])
            elif item[0] == "done":
                self._complete(*item[1:])
            elif item[0] == "sweep":
                self._evict_idle(item[1])
            else:  # ("sessions", token)
                self._emit_sessions(item[1])

    # ------------------------------------------------------------------
    def _accept(self, ticket: int, op: int, session: str,
                payload: bytes | None, shape: tuple[int, ...]) -> None:
        sess = self._sessions.get(session)
        if op == OP_OPEN and sess is None:
            if (
                self._session_cap is not None
                and len(self._sessions) >= self._session_cap
                and not self._shed_lru()
            ):
                self._emit(ticket, _error(ReproError(
                    f"worker session table is full "
                    f"(cap {self._session_cap}) and every session is busy"
                )))
                return
            try:
                self._server.register_session()
                sess = _WireSession(session, self._server.initial_state())
            except ReproError as error:
                self._emit(ticket, _error(error))
                return
            self._sessions[session] = sess
            self._emit(ticket, {
                "ok": True, "type": "open", "session": session,
                "existing": False, "seq": 0, **self.meta,
            })
            return
        if op == OP_EVICT and sess is None:
            # Evicting a session that does not exist is the goal state.
            self._emit(ticket, {"ok": True, "type": "evict",
                                "session": session, "evicted": False})
            return
        if sess is None:
            self._emit(ticket, _error(UnknownSessionError(
                f"unknown session {session!r}; send an open request first"
            )))
            return
        sess.last_used = time.monotonic()
        rows = driver = None
        if op in (OP_PUSH, OP_PUSH_MANY):
            try:
                rows = self._coerce(op, payload, shape)
            except ReproError as error:
                self._emit(ticket, _error(error))
                return
        elif op in (OP_GENERATE, OP_SCORE):
            try:
                driver = self._make_driver(op, payload, shape)
            except ReproError as error:
                self._emit(ticket, _error(error))
                return
        sess.ops.append(_Op(ticket, op, rows, many=op == OP_PUSH_MANY,
                            driver=driver))
        self._pump_session(sess)

    def _coerce(self, op: int, payload: bytes | None,
                shape: tuple[int, ...]) -> np.ndarray:
        try:
            frames = np.frombuffer(payload, dtype="<f8").reshape(shape)
        except (TypeError, ValueError) as error:
            raise ReproError(f"undecodable frame payload: {error}") from None
        if op == OP_PUSH:
            coerced, _ = coerce_frame(frames, 1, self._input_size)
            return coerced  # (1, D)
        if frames.ndim != 2:
            raise ReproError(
                f"push_many wants (K, D) frames, got shape {list(shape)}"
            )
        if not 1 <= len(frames) <= MAX_PUSH_MANY_FRAMES:
            raise ReproError(
                f"push_many carries {len(frames)} frames; the server "
                f"accepts 1..{MAX_PUSH_MANY_FRAMES} per batch"
            )
        # Whole-batch validation up front: a bad frame rejects the batch
        # with NOTHING applied, exactly like the client-side contract.
        return coerce_stream(frames[:, None, :], self._input_size)[:, 0, :]

    def _make_driver(self, op: int, payload: bytes | None,
                     shape: tuple[int, ...]) -> Any:
        """Build the workload row driver serving one generate/score op.

        The driver re-validates everything (the client validated with
        the same code), so a malformed request fails identically on
        both ends — with NOTHING applied to the session.
        """
        if op == OP_GENERATE:
            try:
                params = json.loads(payload or b"{}")
            except (ValueError, UnicodeDecodeError) as error:
                raise ReproError(
                    f"undecodable generate parameters: {error}"
                ) from None
            if not isinstance(params, dict):
                raise ReproError("generate parameters must be a JSON object")
            return self._workload.make_driver(
                "generate", vocab_size=self._input_size, params=params
            )
        try:
            tokens = np.frombuffer(payload, dtype="<i8").reshape(shape)
        except (TypeError, ValueError) as error:
            raise ReproError(f"undecodable token payload: {error}") from None
        driver = self._workload.make_driver(
            "score", vocab_size=self._input_size, params={"tokens": tokens}
        )
        if driver.rows_total > MAX_PUSH_MANY_FRAMES:
            raise ReproError(
                f"score feeds {driver.rows_total} rows; the server accepts "
                f"1..{MAX_PUSH_MANY_FRAMES} per request — chunk the tokens "
                "(overlap chunks by one; state continuity makes the "
                "log-probs identical)"
            )
        return driver

    def _pump_session(self, sess: _WireSession) -> None:
        while not sess.busy and sess.ops:
            op_item = sess.ops.popleft()
            if op_item.op == OP_OPEN:
                self._emit(op_item.ticket, {
                    "ok": True, "type": "open", "session": sess.name,
                    "existing": True, "seq": sess.frames, **self.meta,
                })
            elif op_item.op == OP_RESET:
                sess.state = self._server.initial_state()
                sess.frames = 0
                self._emit(op_item.ticket, {"ok": True, "type": "reset"})
            elif op_item.op in (OP_CLOSE, OP_EVICT):
                del self._sessions[sess.name]
                self._server.release_session(sess)
                for stale in sess.ops:
                    self._emit(stale.ticket, _error(ReproError(
                        f"session {sess.name!r} was closed with this "
                        "request still queued behind the close"
                    )))
                sess.ops.clear()
                if op_item.op == OP_EVICT:
                    self._evicted["admin"] += 1
                    self._emit(op_item.ticket, {
                        "ok": True, "type": "evict", "session": sess.name,
                        "evicted": True,
                    })
                else:
                    self._emit(op_item.ticket, {"ok": True, "type": "close"})
                return
            else:
                sess.busy = True
                self._busy_count += 1
                self._submit_next(sess, op_item)

    def _submit_next(self, sess: _WireSession, op_item: _Op) -> None:
        # A driver op's next row comes from its state machine (for
        # generate it one-hots the token just sampled from the previous
        # row's logits); plain pushes index their materialized rows.
        # Either way the row takes the same step path below, coalescing
        # with other sessions' rows — autoregressive steps and
        # micro-batched scoring rows share the batches.
        if op_item.driver is not None:
            row = op_item.driver.next_row()
        else:
            row = op_item.rows[op_item.cursor]
        # Fast path: with exactly one busy session there is nothing to
        # coalesce with, so the micro-batch dispatcher hop (two thread
        # wakeups per row) buys nothing — compute the row inline on this
        # thread instead.  step_inline runs the identical 1-row
        # step_rows call, so the bytes cannot differ; completion still
        # goes through the pump as a pre-resolved future to keep one
        # code path.  The moment a second session has rows in flight,
        # rows revert to submit() and coalesce as before.
        if self._inline and self._busy_count == 1:
            future: Future = Future()
            try:
                future.set_result(self._server.step_inline(row, sess.state))
            except BaseException as error:  # noqa: BLE001 — relayed below
                future.set_exception(error)
            self._schedule(("done", sess, op_item, future))
            return
        try:
            future = self._server.submit(sess, row, sess.state)
        except ReproError as error:
            sess.busy = False
            self._busy_count -= 1
            self._emit(op_item.ticket, _error(error))
            return
        future.add_done_callback(
            lambda fut: self._schedule(("done", sess, op_item, fut))
        )

    def _complete(self, sess: _WireSession, op_item: _Op, future: Any) -> None:
        try:
            logits, state = future.result()
        except BaseException as error:  # noqa: BLE001 — relayed to the client
            sess.busy = False
            self._busy_count -= 1
            self._emit(op_item.ticket, _error(error))
            self._pump_session(sess)
            return
        sess.state = state
        sess.frames += 1
        sess.last_used = time.monotonic()
        if op_item.driver is not None:
            try:
                op_item.driver.feed(logits)
            except ReproError as error:
                # e.g. NaN logits refusing to sample: the session state
                # HAS advanced by the rows already fed, so the error
                # reply leaves the client's seq reconcile (reattach +
                # journal replay) to restore a known state.
                sess.busy = False
                self._busy_count -= 1
                self._emit(op_item.ticket, _error(error))
                self._pump_session(sess)
                return
            if not op_item.driver.done:
                self._submit_next(sess, op_item)
                return
            sess.busy = False
            self._busy_count -= 1
            self._emit_driver_result(sess, op_item)
            self._pump_session(sess)
            return
        op_item.collected.append(logits)
        op_item.cursor += 1
        if op_item.cursor < len(op_item.rows):
            self._submit_next(sess, op_item)
            return
        sess.busy = False
        self._busy_count -= 1
        self._emit_result(sess, op_item)
        self._pump_session(sess)

    # -- session lifecycle (pump-only) ---------------------------------
    def _evictable(self) -> list[_WireSession]:
        """Sessions safe to drop right now: not computing, nothing queued."""
        return [
            sess for sess in self._sessions.values()
            if not sess.busy and not sess.ops
        ]

    def _evict_one(self, sess: _WireSession, reason: str) -> None:
        del self._sessions[sess.name]
        self._server.release_session(sess)
        self._evicted[reason] += 1

    def _evict_idle(self, ttl_s: float) -> None:
        """A parent sweep: drop every idle session past its TTL."""
        cutoff = time.monotonic() - ttl_s
        for sess in self._evictable():
            if sess.last_used <= cutoff:
                self._evict_one(sess, "idle")

    def _shed_lru(self) -> bool:
        """Drop the least-recently-used idle session to admit a new one."""
        candidates = self._evictable()
        if not candidates:
            return False
        self._evict_one(min(candidates, key=lambda s: s.last_used), "lru")
        return True

    def _emit_sessions(self, token: str) -> None:
        """Session-table snapshot, straight onto the reply queue."""
        now = time.monotonic()
        self._replies.put(("res", token, None, {
            "ok": True, "type": "sessions", "worker": self._index,
            "sessions": [
                {
                    "session": sess.name,
                    "worker": self._index,
                    "seq": sess.frames,
                    "idle_s": round(max(0.0, now - sess.last_used), 3),
                    "busy": sess.busy or bool(sess.ops),
                }
                for sess in self._sessions.values()
            ],
        }))

    # ------------------------------------------------------------------
    def _next_emit(self) -> int:
        seq = self._emit_seq
        self._emit_seq += 1
        return seq

    def _emit(self, ticket: int, payload: dict) -> None:
        """Control/error reply: always a dict on the queue, in emit order."""
        self._replies.put(("res", ticket, self._next_emit(), payload))
        self._settle_one()

    def _emit_result(self, sess: _WireSession, op_item: _Op) -> None:
        """Logits reply: ring slot when it fits, queue dict otherwise."""
        op_name = _OP_NAMES[op_item.op]
        if op_item.many:
            values = np.ascontiguousarray(
                np.stack(op_item.collected), dtype=np.float64
            )
        else:
            values = np.ascontiguousarray(
                op_item.collected[0], dtype=np.float64
            )
        payload = values.astype("<f8", copy=False).tobytes()
        action = self._faults.on_publish() if self._faults else None
        if action == "drop":
            # A lost reply: no emit_seq is consumed (the op "never
            # replied"), so only this one request hangs parent-side and
            # the client's timeout + reattach is the recovery path.
            self._settle_one()
            return
        emit_seq = self._next_emit()
        rings = self._rings
        if (
            rings is not None
            and len(payload) <= rings.responses.payload_capacity
            and rings.responses.try_push(
                op_item.op, op_item.ticket, values.shape, payload,
                seq_no=sess.frames, emit_seq=emit_seq,
            )
        ):
            if action == "corrupt":
                # Published, then torn: the parent's seqlock check must
                # refuse the slot and the supervisor replace this worker.
                rings.responses.corrupt_last_published()
            if rings.ring_kick(responses=True):
                self._replies.put(("ring",))
        else:
            self._replies.put(("res", op_item.ticket, emit_seq, {
                "ok": True, "type": op_name, "seq": sess.frames,
                "raw": (payload, list(values.shape)),
            }))
        self._settle_one()

    def _emit_driver_result(self, sess: _WireSession, op_item: _Op) -> None:
        """A completed generate/score op's reply.

        ``score`` results are payload arrays and ride the response ring
        like push results (queue fallback when oversized); ``generate``
        results are a small token list and stay on the JSON control
        plane.  Both carry the post-op ``seq`` so the client can verify
        its ``rows_total`` advance.
        """
        result = op_item.driver.result()
        action = self._faults.on_publish() if self._faults else None
        if action == "drop":
            self._settle_one()  # lost reply: client timeout + reattach
            return
        if op_item.op == OP_SCORE:
            values = np.ascontiguousarray(
                result["logprobs"], dtype=np.float64
            )
            payload = values.astype("<f8", copy=False).tobytes()
            emit_seq = self._next_emit()
            rings = self._rings
            if (
                rings is not None
                and len(payload) <= rings.responses.payload_capacity
                and rings.responses.try_push(
                    op_item.op, op_item.ticket, values.shape, payload,
                    seq_no=sess.frames, emit_seq=emit_seq,
                )
            ):
                if action == "corrupt":
                    rings.responses.corrupt_last_published()
                if rings.ring_kick(responses=True):
                    self._replies.put(("ring",))
            else:
                self._replies.put(("res", op_item.ticket, emit_seq, {
                    "ok": True, "type": "score", "seq": sess.frames,
                    "raw": (payload, list(values.shape)),
                }))
            self._settle_one()
            return
        self._replies.put(("res", op_item.ticket, self._next_emit(), {
            "ok": True, "type": "generate", "seq": sess.frames,
            "tokens": result["tokens"],
        }))
        self._settle_one()

    def _settle_one(self) -> None:
        with self._lock:
            self._outstanding -= 1
            if self._outstanding == 0:
                self._idle.notify_all()


class _Consumer:
    """The worker's request loop: queue messages + request-ring drains."""

    def __init__(self, scheduler: _Scheduler, rings: RingPair | None,
                 requests: Any, replies: Any, server: Any,
                 faults: FaultInjector | None = None):
        self._scheduler = scheduler
        self._rings = rings
        self._requests = requests
        self._replies = replies
        self._server = server
        self._faults = faults if faults else None
        self._payloads: deque[bytes] = deque()
        self._shutdown = False

    def run(self) -> None:
        while not self._shutdown:
            self._handle(self._requests.get())

    def _handle(self, message: tuple) -> None:
        kind = message[0]
        if kind == "shutdown":
            self._shutdown = True
        elif kind == "kick":
            self._rings.clear_kick(responses=False)
            self._drain_ring()
        elif kind == "payload":
            self._payloads.append(message[1])
        elif kind == "req":
            _, ticket, op, session, payload, shape = message
            if self._faults:
                self._faults.on_request()
            self._scheduler.schedule_op(
                ticket, op, session, payload,
                tuple(shape) if shape else (),
            )
        elif kind == "stats":
            self._replies.put(("res", message[1], None, {
                "ok": True,
                "type": "stats",
                "worker": self._scheduler.meta["worker"],
                "stats": self._server.stats().to_dict(),
                **self._scheduler.lifecycle_stats(),
            }))
        elif kind == "sessions":
            self._scheduler.list_sessions(message[1])
        elif kind == "sweep":
            self._scheduler.sweep(message[1])
        elif kind == "hb":
            # Echoed straight back: answered only while this thread can
            # still take work, which is exactly what the probe measures.
            self._replies.put(
                ("hb", self._scheduler.meta["worker"], message[1])
            )

    def _drain_ring(self) -> None:
        ring = self._rings.requests
        while True:
            entry = ring.peek()
            if entry is None:
                return
            if entry.external:
                payload = self._await_payload()
                if payload is None:  # shutdown raced the oversized payload
                    return
            else:
                payload = bytes(entry.payload)
            # Copy out, then free the slot for the parent before the op
            # runs — ring capacity bounds dispatch, never compute.
            ticket, op = entry.ticket, entry.op
            session, shape = entry.session, entry.shape
            ring.advance()
            if self._faults:
                self._faults.on_request()
            self._scheduler.schedule_op(ticket, op, session, payload, shape)

    def _await_payload(self) -> bytes | None:
        """The ring entry was published after its queue payload: take it.

        Other message kinds may sit in between; they are handled inline
        (a buffered kick is redundant — this loop IS the drain).
        """
        while not self._payloads:
            message = self._requests.get()
            if message[0] == "kick":
                self._rings.clear_kick(responses=False)
                continue
            self._handle(message)
            if self._shutdown:
                return None
        return self._payloads.popleft()


def worker_main(
    index: int,
    artifact_path: str,
    requests: Any,
    replies: Any,
    max_batch: int,
    max_delay_s: float,
    shm_name: str | None = None,
    ring_slots: int = 0,
    slot_bytes: int = 0,
    inline: bool = True,
    session_cap: int | None = None,
    faults: list | None = None,
) -> None:
    """Entry point of one worker process (spawn-safe, module-level)."""
    # The parent owns interactive shutdown; a Ctrl-C must not produce a
    # worker traceback race while the parent is draining.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass

    threading.Thread(target=_watch_parent, name="parent-watch",
                     daemon=True).start()

    rings = None
    try:
        from repro.runtime.model import CompiledModel
        from repro.runtime.server import Server

        if shm_name is not None:
            rings = RingPair.attach(shm_name, ring_slots, slot_bytes)
        compiled = CompiledModel.load(artifact_path)
        server = Server(compiled, max_batch=max_batch, max_delay_s=max_delay_s)
    except BaseException as error:  # noqa: BLE001 — parent must learn of it
        replies.put(("fatal", index, f"worker {index} failed to start: {error}"))
        return

    injector = FaultInjector(index, faults) if faults else None
    scheduler = _Scheduler(index, compiled, server, rings, replies,
                           inline=inline, session_cap=session_cap,
                           faults=injector)
    consumer = _Consumer(scheduler, rings, requests, replies, server,
                         faults=injector)
    replies.put(("ready", index))

    try:
        consumer.run()
    except BaseException as error:  # noqa: BLE001 — parent must learn of it
        replies.put(("fatal", index, f"worker {index} died: {error}"))
    finally:
        # Drain: every accepted op emits its reply (the parent is still
        # pumping this worker's queue), then the micro-batching server
        # closes — which drains its own queued rows in turn.
        scheduler.wait_idle(timeout=30)
        server.close()
        if rings is not None:
            rings.close()
