"""The serving worker process of :mod:`repro.runtime.net`.

Each worker is one OS process that loads the compiled ``.npz`` artifact
from disk and runs its **own** micro-batching
:class:`repro.runtime.Server` — numpy compute in ``N`` workers scales
across cores where one Python process cannot.  Session state lives here:
the parent routes every request for a session name to the same worker
(stable hash), so the recurrent state never crosses a process boundary.

Inside the worker, every open session gets a dedicated runner thread that
owns its :class:`repro.runtime.ServerSession` and consumes that session's
requests in arrival order — per-session ordering is strict, while
concurrent sessions' pushes coalesce in the worker's micro-batching
server exactly as local threads would.

Parent → worker messages (tuples on the request queue)::

    ("req",   conn_id, rid, op, session, frame_bytes, shape)
    ("stats", conn_id, rid)
    ("shutdown",)

Worker → parent messages (on this worker's own reply queue — never
shared between workers, so one worker's death cannot poison another's
queue locks)::

    ("ready", index)                 # artifact loaded, serving
    ("res",   conn_id, rid, reply)   # wire-ready reply dict, sans "id"
    ("fatal", index, message)        # the worker is dead
"""

from __future__ import annotations

import queue
import signal
import threading
from typing import Any

import numpy as np

from repro.errors import ReproError

__all__ = ["worker_main"]

_SHUTDOWN = object()


class _SessionRunner(threading.Thread):
    """Owns one ServerSession; applies its requests strictly in order."""

    def __init__(self, name: str, server: Any, replies: Any):
        super().__init__(name=f"net-session-{name}", daemon=True)
        self.queue: queue.Queue = queue.Queue()
        self._session = server.session()
        self._replies = replies

    def submit(self, item: tuple) -> None:
        self.queue.put(item)

    def run(self) -> None:
        while True:
            item = self.queue.get()
            if item is _SHUTDOWN:
                self._session.close()
                return
            conn_id, rid, op, frame = item
            try:
                reply = self._apply(op, frame)
            except ReproError as error:
                reply = _error(error)
            except Exception as error:  # noqa: BLE001 — relayed to the client
                reply = _error(error)
            self._replies.put(("res", conn_id, rid, reply))
            if op == "close":
                return

    def _apply(self, op: str, frame: np.ndarray | None) -> dict:
        from repro.runtime.net.protocol import encode_array

        if op == "push":
            logits = self._session.push(frame)
            return {
                "ok": True,
                "type": "push",
                "seq": self._session.frames_pushed,
                "logits": encode_array(logits),
            }
        if op == "reset":
            self._session.reset()
            return {"ok": True, "type": "reset"}
        if op == "close":
            self._session.close()
            return {"ok": True, "type": "close"}
        raise ReproError(f"unknown session op {op!r}")


def _error(error: BaseException) -> dict:
    return {
        "ok": False,
        "type": "error",
        "kind": type(error).__name__,
        "error": str(error),
    }


def worker_main(
    index: int,
    artifact_path: str,
    requests: Any,
    replies: Any,
    max_batch: int,
    max_delay_s: float,
) -> None:
    """Entry point of one worker process (spawn-safe, module-level)."""
    # The parent owns interactive shutdown; a Ctrl-C must not produce a
    # worker traceback race while the parent is draining.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass

    try:
        from repro.runtime.model import CompiledModel
        from repro.runtime.server import Server

        compiled = CompiledModel.load(artifact_path)
        server = Server(compiled, max_batch=max_batch, max_delay_s=max_delay_s)
    except BaseException as error:  # noqa: BLE001 — parent must learn of it
        replies.put(("fatal", index, f"worker {index} failed to start: {error}"))
        return

    sessions: dict[str, _SessionRunner] = {}
    meta = {
        "backend": compiled.backend,
        "input_size": compiled.input_size,
        "num_classes": compiled.num_classes,
        "worker": index,
    }
    replies.put(("ready", index))

    try:
        while True:
            message = requests.get()
            kind = message[0]
            if kind == "shutdown":
                break
            if kind == "stats":
                _, conn_id, rid = message
                replies.put(
                    ("res", conn_id, rid, {
                        "ok": True,
                        "type": "stats",
                        "worker": index,
                        "stats": server.stats().to_dict(),
                        "sessions": len(sessions),
                    })
                )
                continue
            _, conn_id, rid, op, name, frame_bytes, shape = message
            if op == "open":
                runner = sessions.get(name)
                if runner is None or not runner.is_alive():
                    runner = _SessionRunner(name, server, replies)
                    runner.start()
                    sessions[name] = runner
                    existing = False
                else:
                    existing = True
                replies.put(
                    ("res", conn_id, rid,
                     {"ok": True, "type": "open", "session": name,
                      "existing": existing,
                      # Where the stream already is (reattach support);
                      # meaningful when the session is idle, which is the
                      # only sane time to reattach.
                      "seq": runner._session.frames_pushed,
                      **meta})
                )
                continue
            runner = sessions.get(name)
            if runner is None:
                replies.put(
                    ("res", conn_id, rid, _error(ReproError(
                        f"unknown session {name!r}; send an open request first"
                    )))
                )
                continue
            frame = None
            if frame_bytes is not None:
                # The parent validates shape/length, but a decode failure
                # here must fail ONE request, never the whole worker (and
                # every session pinned to it).
                try:
                    frame = np.frombuffer(
                        frame_bytes, dtype="<f8"
                    ).reshape(shape)
                except ValueError as error:
                    replies.put(("res", conn_id, rid, _error(error)))
                    continue
            if op == "close":
                del sessions[name]
            runner.submit((conn_id, rid, op, frame))
    except BaseException as error:  # noqa: BLE001 — parent must learn of it
        replies.put(("fatal", index, f"worker {index} died: {error}"))
    finally:
        # Drain: queued session work finishes (every runner sees its
        # sentinel only after its pending requests), then the
        # micro-batching server closes.
        for runner in sessions.values():
            runner.submit(_SHUTDOWN)
        for runner in sessions.values():
            runner.join(timeout=30)
        server.close()
