"""Blocking, stdlib-only client for the :mod:`repro.runtime.net` protocol.

Mirrors the in-process surfaces: :class:`Client` is the connection,
:meth:`Client.session` opens a named streaming :class:`NetSession` whose
``push``/``reset``/``close`` behave like :class:`repro.runtime.Session` —
and return **byte-identical** logits, which is the point: the wire adds
transport, never arithmetic.

The client negotiates protocol v2 (binary payload frames) inside the
first ``open`` handshake when the server's ``hello`` advertises
``max_protocol >= 2``; against an older or v1-pinned server the request
is simply not acknowledged and everything stays NDJSON.  Pass
``protocol=1`` to the constructor to pin a connection to v1 explicitly.

A :class:`Client` is single-threaded by design (one socket, strictly
ordered request/reply); concurrent callers each open their own, exactly
as with in-process sessions.

Resilience (PR 8): a supervised server answers a dying worker's requests
with **retryable** error frames, and a dropped connection surfaces as
:class:`~repro.runtime.net.protocol.ConnectionLostError`.  A
:class:`NetSession` recovers from both on its own: it keeps a journal of
every acknowledged frame since the last reset, and on a retryable
failure it reconnects, reopens the session by name, reconciles the
server's ``seq`` against its own — and when the carried state is gone
(the worker was restarted) it resets and replays the journal, so the
stream's remaining logits are **byte-identical** to an uninterrupted
run.  ``reattach=False`` restores the PR 5 fail-fast behaviour.

>>> client = Client("127.0.0.1", 7653)
>>> session = client.session("caller-42")
>>> posterior = session.push(frame)          # blocking round trip
>>> logits = session.run(frames, window=8)   # pipelined stream
"""

from __future__ import annotations

import itertools
import socket
import struct
import time
from collections import deque
from typing import Any

import numpy as np

from repro.runtime.coerce import coerce_frame, coerce_stream, one_hot_rows
from repro.runtime.net.protocol import (
    BIN_DTYPE_F8,
    BIN_DTYPE_I8,
    BIN_MAGIC,
    BIN_PREFIX,
    BIN_PUSH,
    BIN_PUSH_MANY,
    BIN_RESULT,
    BIN_RESULT_MANY,
    BIN_SCORE,
    BIN_SCORE_RESULT,
    MAX_BIN_NDIM,
    MAX_BIN_SESSION,
    MAX_FRAME_BYTES,
    MAX_PROTOCOL,
    MAX_PUSH_MANY_FRAMES,
    BusyError,
    ConnectionLostError,
    NetError,
    RetryableError,
    UnknownSessionError,
    build_binary_frame,
    check_binary_header,
    decode_array,
    dump_line,
    encode_array,
    parse_line,
)
from repro.runtime.workloads import generate_params, score_params

__all__ = ["Client", "NetSession"]

#: Reconnect/reopen/replay cycles one operation may consume before the
#: recovery machinery gives up and lets the retryable error escape.
_MAX_RECOVERY_CYCLES = 5

#: Frames per replay batch (bounded by the server's push_many cap).
_REPLAY_CHUNK = min(64, MAX_PUSH_MANY_FRAMES)


class Client:
    """One TCP connection to a :class:`~repro.runtime.net.NetServer`.

    ``protocol`` is the highest protocol version this client is willing
    to negotiate (default: everything it speaks).  The *effective*
    version — :attr:`protocol` — starts at 1 and is raised when a
    server grants v2 in an ``open`` handshake.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 protocol: int = MAX_PROTOCOL):
        if not 1 <= protocol <= MAX_PROTOCOL:
            raise NetError(
                f"protocol must be 1..{MAX_PROTOCOL}, got {protocol}"
            )
        self._host = host
        self._port = port
        self._timeout = timeout
        self._want_protocol = protocol
        self._protocol = 1
        self._ids = itertools.count(1)
        self._closed = False
        self.reconnects = 0
        self._connect()

    def _connect(self) -> None:
        try:
            self._sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            )
        except OSError as error:
            raise ConnectionLostError(
                f"connect to {self._host}:{self._port} failed: {error}"
            ) from None
        self._sock.settimeout(self._timeout)
        self._file = self._sock.makefile("rwb")
        self.hello = self._recv()
        if self.hello.get("type") != "hello":
            raise NetError(
                f"expected a hello frame, got {self.hello.get('type')!r}"
            )

    def reconnect(self) -> "Client":
        """Drop the connection and dial the same server again.

        Discards any unread replies with the old socket, and resets the
        effective protocol to v1 — framing, like sessions, is negotiated
        per connection, so the next ``open`` renegotiates v2.  Request
        ids keep counting up: uniqueness per connection is preserved.
        """
        for closer in (self._file.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass  # tearing down a broken transport; dialing anew
        self._closed = False
        self._protocol = 1
        self.reconnects += 1
        self._connect()
        return self

    # ------------------------------------------------------------------
    @property
    def input_size(self) -> int:
        return int(self.hello["input_size"])

    @property
    def num_classes(self) -> int:
        return int(self.hello["num_classes"])

    @property
    def backend(self) -> str:
        return str(self.hello["backend"])

    @property
    def workload(self) -> str:
        """The served workload ("asr" unless the hello says otherwise)."""
        return str(self.hello.get("workload", "asr"))

    @property
    def vocab_chars(self) -> list[str] | None:
        """The LM vocabulary's characters, when the server advertises one."""
        chars = self.hello.get("vocab")
        if chars is None:
            return None
        return [str(char) for char in chars]

    @property
    def queue_limit(self) -> int:
        return int(self.hello["queue_limit"])

    @property
    def protocol(self) -> int:
        """Effective protocol version on this connection (1 until a v2
        grant comes back in an ``open`` reply)."""
        return self._protocol

    def _wants_v2(self) -> bool:
        return (
            self._want_protocol >= 2
            and int(self.hello.get("max_protocol", 1)) >= 2
        )

    # ------------------------------------------------------------------
    def _send(self, op: str, **fields: Any) -> int:
        if self._closed:
            raise NetError("client is closed")
        rid = next(self._ids)
        try:
            self._file.write(dump_line({"id": rid, "op": op, **fields}))
            self._file.flush()
        except OSError as error:
            raise ConnectionLostError(f"send failed: {error}") from None
        return rid

    def _send_binary(self, op: int, session: str, payload: bytes,
                     shape: tuple[int, ...],
                     dtype_code: int = BIN_DTYPE_F8) -> int:
        if self._closed:
            raise NetError("client is closed")
        rid = next(self._ids)
        try:
            self._file.write(build_binary_frame(
                op, rid, shape, payload, session=session.encode("utf-8"),
                dtype_code=dtype_code,
            ))
            self._file.flush()
        except OSError as error:
            raise ConnectionLostError(f"send failed: {error}") from None
        return rid

    def _read_exactly(self, count: int) -> bytes:
        data = self._file.read(count)
        if data is None or len(data) < count:
            raise ConnectionLostError("server closed the connection mid-frame")
        return data

    def _recv(self) -> dict:
        """One reply, either framing, normalized to a dict.

        Binary results carry their logits as a ready ndarray under
        ``"logits_array"``; JSON replies keep the base64 ``"logits"``
        payload (decoded lazily by the caller).
        """
        try:
            first = self._file.read(1)
            if not first:
                raise ConnectionLostError("server closed the connection")
            if first[0] != BIN_MAGIC:
                line = first + self._file.readline()
                return parse_line(line)
            prefix = first + self._read_exactly(BIN_PREFIX.size - 1)
            (_, version, opcode, dtype_code, rid, seq,
             slen, ndim, _pad) = BIN_PREFIX.unpack(prefix)
            if (ndim > MAX_BIN_NDIM or slen > MAX_BIN_SESSION):
                raise NetError(
                    f"unframeable binary reply header (ndim {ndim}, "
                    f"session {slen} bytes)"
                )
            *dims, nbytes = struct.unpack(
                f"<{ndim}II", self._read_exactly(4 * ndim + 4)
            )
            if nbytes > MAX_FRAME_BYTES:
                raise NetError(
                    f"binary reply payload of {nbytes} bytes exceeds the "
                    f"{MAX_FRAME_BYTES}-byte cap"
                )
            body = self._read_exactly(slen + nbytes)
            check_binary_header(
                version, opcode, dtype_code, tuple(dims), nbytes,
                expect_request=False,
            )
            values = np.asarray(
                np.frombuffer(body[slen:], dtype="<f8"), dtype=np.float64
            ).reshape(dims)
            return {
                "id": rid,
                "ok": True,
                "type": {BIN_RESULT: "push", BIN_RESULT_MANY: "push_many",
                         BIN_SCORE_RESULT: "score"}[opcode],
                "seq": seq,
                "logits_array": values,
            }
        except socket.timeout:
            # Indistinguishable from a worker whose reply was lost (e.g.
            # a dropped publish): retryable, so a reattaching session
            # resets and replays instead of hanging on a reply that will
            # never come.
            raise ConnectionLostError(
                "timed out waiting for a reply"
            ) from None
        except OSError as error:
            raise ConnectionLostError(f"receive failed: {error}") from None

    def _recv_for(self, rid: int) -> dict:
        reply = self._recv()
        if reply.get("id") != rid:
            raise NetError(
                f"reply id {reply.get('id')!r} does not match request {rid} "
                "(one Client per thread; replies are strictly ordered)"
            )
        return reply

    def request(self, op: str, **fields: Any) -> dict:
        """One blocking round trip.  Raises on error/busy replies."""
        reply = self._recv_for(self._send(op, **fields))
        return self._check(reply)

    @staticmethod
    def _check(reply: dict) -> dict:
        if reply.get("ok", False):
            return reply
        if reply.get("type") == "busy":
            limit = reply.get("limit")
            raise BusyError(
                f"server busy (limit {limit}); the frame was not applied "
                "— back off and resend it before newer frames",
                limit=limit if isinstance(limit, int) else None,
            )
        kind = reply.get("kind", "error")
        message = f"{kind}: {reply.get('error', reply)}"
        if reply.get("retryable"):
            # The server's supervisor failed this request (worker died
            # in flight / is restarting) and promises a resend is safe.
            raise RetryableError(message)
        if kind == "UnknownSessionError":
            # Not blindly retryable — the session must be reopened (and
            # its state replayed) first, which is exactly what a
            # reattaching NetSession does with it.
            raise UnknownSessionError(message)
        raise NetError(message)

    @staticmethod
    def _logits(reply: dict) -> np.ndarray:
        """The logits array of a push-style reply, either framing."""
        values = reply.get("logits_array")
        if values is not None:
            return values
        return decode_array(reply["logits"])

    # ------------------------------------------------------------------
    def ping(self) -> float:
        """Round-trip time of an empty request, in seconds."""
        start = time.perf_counter()
        self.request("ping")
        return time.perf_counter() - start

    def stats(self) -> list[dict]:
        """Per-worker :class:`~repro.runtime.ServerStats` snapshots."""
        return self.request("stats")["workers"]

    def health(self) -> dict:
        """The supervisor's snapshot: per-worker state, restarts, uptime.

        Answered by the parent alone, so it works even while every
        worker is down, restarting, or the server is draining.
        """
        return self.request("health")

    def sessions(self) -> list[dict]:
        """Every live session across all reachable workers
        (``session``/``worker``/``seq``/``idle_s``/``busy`` each)."""
        return self.request("sessions")["sessions"]

    def evict(self, session: str) -> bool:
        """Administratively drop one session's worker-side state.

        True when a session was actually evicted, False when no such
        session existed (the goal state either way).
        """
        return bool(self.request("evict", session=session).get("evicted"))

    def cluster_health(self) -> dict:
        """The gateway's cluster snapshot (backend states, ring, drains).

        Only meaningful against a :class:`repro.runtime.cluster.Gateway`
        endpoint; a plain NetServer rejects the op.
        """
        return self.request("cluster_health")

    def cluster_drain(self, backend: str, *, force: bool = False,
                      wait_s: float | None = None) -> dict:
        """Start (or keep waiting on) a rolling drain of one backend.

        Returns the gateway's reply: ``drained`` (bool) and
        ``remaining`` (sessions still pinned).  ``force`` evicts pinned
        sessions so their clients migrate by journal replay instead of
        waiting for natural close/TTL.  The drain keeps running in the
        background after the reply — call again to re-check.
        """
        fields: dict[str, Any] = {"backend": backend, "force": force}
        if wait_s is not None:
            fields["wait_s"] = wait_s
        return self.request("cluster_drain", **fields)

    def cluster_undrain(self, backend: str) -> dict:
        """Cancel a drain-in-progress and return the backend to service."""
        return self.request("cluster_undrain", backend=backend)

    def cluster_add(self, backend: str) -> dict:
        """Join a running NetServer (``"host:port"``) into the fleet."""
        return self.request("cluster_add", backend=backend)

    def session(self, name: str, **retry: Any) -> "NetSession":
        """Open (or re-attach to) the named streaming session."""
        return NetSession(self, name, **retry)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class NetSession:
    """A named server-side streaming session reached over the wire.

    The session id — not the connection — owns the carried recurrent
    state: reconnect with the same name and the stream continues where it
    left off, on the same worker (stable-hash routing).

    ``retries``/``backoff_s``/``max_backoff_s`` set the session's default
    ``busy`` retry policy: the sleep grows linearly from ``backoff_s``
    but never beyond ``max_backoff_s``, and after ``retries`` resends a
    :class:`BusyError` carrying the server's advertised ``limit`` is
    raised.

    With ``reattach=True`` (the default) the session also recovers from
    retryable failures — worker deaths surfaced as retryable error
    frames, dropped connections, unknown-session replies after a worker
    restart: it reconnects, reopens by name, and when the server-side
    ``seq`` shows the carried state is gone, resets and replays its
    journal of acknowledged frames (capped at ``journal_limit``; an
    overflowed journal makes state loss unrecoverable and the retryable
    error escapes instead).  :attr:`recoveries` and
    :attr:`replayed_frames` count what the machinery did.
    """

    def __init__(self, client: Client, name: str, *, retries: int = 20,
                 backoff_s: float = 0.02, max_backoff_s: float = 0.25,
                 reattach: bool = True, journal_limit: int = 4096):
        if retries < 0:
            raise NetError(f"retries must be >= 0, got {retries}")
        if journal_limit < 0:
            raise NetError(
                f"journal_limit must be >= 0, got {journal_limit}"
            )
        self._client = client
        self._name = name
        self._retries = retries
        self._backoff_s = backoff_s
        self._max_backoff_s = max_backoff_s
        self._reattach = reattach
        self._journal_limit = journal_limit
        self._journal: deque[bytes] = deque()  # acked rows since reset
        self._journal_ok = True  # False once the cap truncated it
        self.recoveries = 0
        self.replayed_frames = 0
        self.meta = self._open(allow_recovery=reattach)
        self._frames = int(self.meta.get("seq", 0))
        self._closed = False

    def _open(self, *, allow_recovery: bool) -> dict:
        """The open handshake (with v2 negotiation), retried through
        retryable failures when the session reattaches."""
        fields: dict[str, Any] = {"session": self._name}
        attempt = 0
        while True:
            if self._client._wants_v2():
                fields["protocol"] = 2
            else:
                fields.pop("protocol", None)
            try:
                reply = self._client.request("open", **fields)
            except (RetryableError, UnknownSessionError):
                if not allow_recovery or attempt >= self._retries:
                    raise
                attempt += 1
                time.sleep(min(self._max_backoff_s,
                               self._backoff_s * attempt))
                try:
                    self._client.reconnect()
                except ConnectionLostError:
                    continue  # server not back yet; keep backing off
                continue
            if reply.get("protocol") == 2:
                self._client._protocol = 2
            return reply

    @property
    def name(self) -> str:
        return self._name

    @property
    def worker(self) -> int:
        """Index of the worker holding this session's state."""
        return int(self.meta["worker"])

    @property
    def frames_pushed(self) -> int:
        return self._frames

    # ------------------------------------------------------------------
    def _retry_policy(self, retries: Any, backoff_s: Any) -> tuple[int, float]:
        retries = self._retries if retries is None else retries
        backoff_s = self._backoff_s if backoff_s is None else backoff_s
        return retries, backoff_s

    # -- reattach machinery --------------------------------------------
    def _journal_append(self, row_bytes: bytes) -> None:
        """Remember one acknowledged frame for a potential replay."""
        if not self._reattach or not self._journal_ok:
            return
        self._journal.append(row_bytes)
        if len(self._journal) > self._journal_limit:
            # A partial journal cannot rebuild recurrent state (every
            # frame feeds the next), so past the cap the memory is
            # reclaimed and reattach-after-state-loss disabled until the
            # next reset() starts a fresh journal.
            self._journal.clear()
            self._journal_ok = False

    def _with_recovery(self, attempt: Any) -> Any:
        """Run one operation, recovering through retryable failures."""
        cycles = 0
        while True:
            try:
                return attempt()
            except (RetryableError, UnknownSessionError) as error:
                cycles += 1
                if not self._reattach or cycles > _MAX_RECOVERY_CYCLES:
                    raise
                self._recover(error)

    def _recover(self, cause: NetError) -> None:
        """Reconnect, reopen, and restore the stream's carried state.

        The failed frame was NOT applied (that is the retryable
        contract), so after this returns the caller simply resends it.
        """
        self.recoveries += 1
        last: NetError = cause
        for attempt in range(self._retries + 1):
            try:
                self._client.reconnect()
                self._reopen_and_replay()
                return
            except (RetryableError, UnknownSessionError, BusyError) as error:
                last = error
                time.sleep(min(self._max_backoff_s,
                               self._backoff_s * (attempt + 1)))
        raise NetError(
            f"session {self._name!r} could not reattach after "
            f"{self._retries + 1} attempts: {last}"
        ) from cause

    def _reopen_and_replay(self) -> None:
        """Reopen by name; replay the journal if the state is gone."""
        self.meta = self._open(allow_recovery=False)
        seq = int(self.meta.get("seq", 0))
        if seq == self._frames:
            return  # carried state intact (the connection died, not the worker)
        if not self._journal_ok or len(self._journal) != self._frames:
            raise NetError(
                f"session {self._name!r} lost its carried state at frame "
                f"{self._frames} and the client journal cannot replay it "
                f"(journal_limit {self._journal_limit}); reset the stream"
            )
        if seq != 0:
            # A stale partial state (the worker restarted mid-history or
            # another client advanced it): replay only works from zero.
            self._client.request("reset", session=self._name)
        # self._frames stays the authoritative acked count throughout: if
        # the replay itself is interrupted, the next recovery pass sees
        # server seq != self._frames and replays from zero again.
        rows = list(self._journal)
        input_size = self._client.input_size
        for start in range(0, len(rows), _REPLAY_CHUNK):
            chunk = rows[start:start + _REPLAY_CHUNK]
            payload = b"".join(chunk)
            shape = (len(chunk), input_size)
            if self._client.protocol >= 2:
                def send(payload: bytes = payload,
                         shape: tuple[int, int] = shape) -> int:
                    return self._client._send_binary(
                        BIN_PUSH_MANY, self._name, payload, shape
                    )
            else:
                encoded = encode_array(
                    np.frombuffer(payload, dtype="<f8").reshape(shape)
                )
                def send(encoded: dict = encoded) -> int:
                    return self._client._send(
                        "push_many", session=self._name, frames=encoded
                    )
            reply = self._push_with_retry(send, self._retries,
                                          self._backoff_s)
            got = reply.get("seq")
            if got != start + len(chunk):
                raise NetError(
                    f"replay of session {self._name!r} desynced: expected "
                    f"frame {start + len(chunk)}, server reports {got}"
                )
        self.replayed_frames += len(rows)

    def _push_with_retry(self, send: Any, retries: int,
                         backoff_s: float) -> dict:
        """Resend through ``busy`` replies with a capped linear backoff.

        Safe for a blocking push: nothing newer is in flight, so the
        resend preserves stream order.  The refused frame was NOT
        applied, which is also why exhaustion is an error the caller
        must handle — dropping the frame silently would desync the
        stream's carried state.
        """
        for attempt in range(retries + 1):
            try:
                return self._client._check(
                    self._client._recv_for(send())
                )
            except BusyError as busy:
                if attempt == retries:
                    raise BusyError(
                        f"server still busy after {retries + 1} attempts "
                        f"(per-connection limit {busy.limit}); the frame "
                        "was not applied — the stream is still in sync, "
                        "retry later or raise the retry budget",
                        limit=busy.limit,
                    ) from None
                time.sleep(min(self._max_backoff_s,
                               backoff_s * (attempt + 1)))
        raise AssertionError("unreachable")

    def push(
        self,
        frame: np.ndarray,
        retries: int | None = None,
        backoff_s: float | None = None,
    ) -> np.ndarray:
        """One blocking frame: coerce, send, return its logits.

        Shapes mirror :meth:`repro.runtime.Session.push`: a bare ``(D,)``
        vector returns ``(C,)``; a ``(1, D)`` frame returns ``(1, C)``.
        """
        self._check_open()
        retries, backoff_s = self._retry_policy(retries, backoff_s)
        coerced, squeezed = coerce_frame(frame, 1, self._client.input_size)
        row = coerced[0]
        raw = row.astype("<f8", copy=False).tobytes()

        def send() -> int:
            # Framing is re-chosen per attempt: a recovery may have
            # reconnected, dropping the connection back to v1 until the
            # reopen renegotiates.
            if self._client.protocol >= 2:
                return self._client._send_binary(
                    BIN_PUSH, self._name, raw, row.shape
                )
            return self._client._send(
                "push", session=self._name, frame=encode_array(row)
            )

        reply = self._with_recovery(
            lambda: self._push_with_retry(send, retries, backoff_s)
        )
        self._accept_seq(reply, 1)
        self._journal_append(raw)
        # copy(): the decoded logits view wire bytes; Session.push parity
        # means handing back a writable array.
        logits = self._client._logits(reply).copy()
        return logits if squeezed else logits[None, :]

    def push_many(
        self,
        frames: np.ndarray,
        retries: int | None = None,
        backoff_s: float | None = None,
    ) -> np.ndarray:
        """``(K, D)`` frames in one round trip → ``(K, C)`` logits.

        One wire frame, one admission slot, one reply — the batched hot
        path of protocol v2 (a v1 connection sends the same batch as a
        single JSON ``push_many`` request).  The batch is applied frame
        by frame server-side, so the logits are byte-identical to ``K``
        single pushes; a rejected batch applies NOTHING.
        """
        self._check_open()
        retries, backoff_s = self._retry_policy(retries, backoff_s)
        frames = np.asarray(frames)
        if frames.ndim != 2:
            raise NetError(
                f"push_many wants (K, D) frames, got shape {frames.shape}"
            )
        if len(frames) == 0:  # run() parity: nothing to send
            return np.empty((0, self._client.num_classes))
        coerced = coerce_stream(
            frames[:, None, :], self._client.input_size
        )[:, 0, :]
        payload = np.ascontiguousarray(coerced).astype(
            "<f8", copy=False
        ).tobytes()

        def send() -> int:
            if self._client.protocol >= 2:
                return self._client._send_binary(
                    BIN_PUSH_MANY, self._name, payload, coerced.shape
                )
            return self._client._send(
                "push_many", session=self._name, frames=encode_array(coerced)
            )

        reply = self._with_recovery(
            lambda: self._push_with_retry(send, retries, backoff_s)
        )
        self._accept_seq(reply, len(frames))
        row_bytes = 8 * self._client.input_size
        for start in range(0, len(payload), row_bytes):
            self._journal_append(payload[start:start + row_bytes])
        return self._client._logits(reply).copy().reshape(
            len(frames), self._client.num_classes
        )

    def generate(
        self,
        prompt: Any,
        steps: int = 32,
        *,
        temperature: float = 1.0,
        top_k: int = 0,
        seed: int = 0,
        retries: int | None = None,
        backoff_s: float | None = None,
    ) -> list[int]:
        """Seeded autoregressive sampling on the server (LM workload).

        One round trip: the op's parameters cross as JSON, the sampled
        token ids come back.  Byte-identical to
        :meth:`repro.runtime.Session.generate` — the sampling runs
        worker-side from the same seeded driver.  The op advances the
        session by ``len(prompt) + steps - 1`` rows and journals their
        one-hot equivalents, so reattach/failover replay rebuilds the
        post-op state exactly; a resend after recovery reproduces the
        same tokens because the seed rides the request.
        """
        self._check_open()
        retries, backoff_s = self._retry_policy(retries, backoff_s)
        params = generate_params(
            prompt, steps, temperature, top_k, seed,
            vocab_size=self._client.input_size,
        )
        rows_total = len(params["prompt"]) + params["steps"] - 1

        def send() -> int:
            return self._client._send(
                "generate", session=self._name, **params
            )

        reply = self._with_recovery(
            lambda: self._push_with_retry(send, retries, backoff_s)
        )
        self._accept_seq(reply, rows_total)
        tokens = [int(token) for token in reply.get("tokens", ())]
        fed = np.asarray(
            params["prompt"] + tokens[:-1], dtype=np.int64
        )
        for row in one_hot_rows(fed, self._client.input_size):
            self._journal_append(row.astype("<f8", copy=False).tobytes())
        return tokens

    def score(
        self,
        tokens: Any,
        retries: int | None = None,
        backoff_s: float | None = None,
    ) -> np.ndarray:
        """Per-token log-probs for ``tokens[1:]`` (LM workload).

        ``K`` token ids in one round trip → ``(K-1,)`` float64
        log-probs, byte-identical to
        :meth:`repro.runtime.Session.score`.  On a v2 connection the
        ids travel as a binary int64 frame and the log-probs return as
        a binary float64 frame; a v1 connection uses JSON both ways.
        Advances the session by ``K-1`` rows (``tokens[:-1]`` fed as
        one-hots), journaled for replay like any other rows.
        """
        self._check_open()
        retries, backoff_s = self._retry_policy(retries, backoff_s)
        params = score_params(tokens, vocab_size=self._client.input_size)
        ids = np.asarray(params["tokens"], dtype=np.int64)
        count = ids.shape[0] - 1
        payload = ids.astype("<i8", copy=False).tobytes()

        def send() -> int:
            if self._client.protocol >= 2:
                return self._client._send_binary(
                    BIN_SCORE, self._name, payload, ids.shape,
                    dtype_code=BIN_DTYPE_I8,
                )
            return self._client._send(
                "score", session=self._name, tokens=params["tokens"]
            )

        reply = self._with_recovery(
            lambda: self._push_with_retry(send, retries, backoff_s)
        )
        self._accept_seq(reply, count)
        for row in one_hot_rows(ids[:-1], self._client.input_size):
            self._journal_append(row.astype("<f8", copy=False).tobytes())
        values = reply.get("logits_array")
        if values is None:
            values = decode_array(reply["logprobs"])
        return values.copy().reshape(count)

    def _accept_seq(self, reply: dict, count: int) -> None:
        """Enforce exactly-once, in-order delivery per stream.

        Every push reply carries the worker-side frame counter; a gap or
        repeat means a frame was dropped, duplicated or reordered in
        transit — state-corrupting for a recurrent stream, so it is a
        hard error, not a warning.
        """
        seq = reply.get("seq")
        if seq != self._frames + count:
            raise NetError(
                f"stream {self._name!r} out of sync: expected frame "
                f"{self._frames + count}, server reports {seq} (a frame was "
                "dropped, duplicated or reordered; reset the session)"
            )
        self._frames = seq

    def run(self, frames: np.ndarray, window: int = 8) -> np.ndarray:
        """Pipelined streaming: ``(T, D)`` frames → ``(T, C)`` logits.

        Keeps up to ``window`` pushes in flight (clamped to the server's
        advertised ``queue_limit``, so a session that owns its connection
        can never draw a per-connection ``busy``).  A ``busy`` drawn
        from worker-ring saturation (another connection's traffic) is
        recovered through the reattach path when later frames are
        already in flight — a mid-pipeline refusal voids the
        contiguous-apply order — or by plain backoff when the busy'd
        frame was the only one outstanding.  Byte-identical to ``T``
        blocking pushes — pipelining changes latency, not bytes.
        """
        self._check_open()
        frames = np.asarray(frames)
        if frames.ndim != 2:
            raise NetError(f"run() wants (T, D) frames, got {frames.shape}")
        window = max(1, min(window, self._client.queue_limit))
        total = len(frames)
        if total == 0:  # Session.run parity: empty stream, empty result
            return np.empty((0, self._client.num_classes))
        # Coerce and encode the WHOLE stream before sending anything: a
        # bad frame discovered mid-pipeline would abandon in-flight
        # replies and desynchronize the connection for good.  Up-front
        # validation turns it into a clean error with nothing sent.
        rows: list[np.ndarray] = []
        raws: list[bytes] = []
        for frame in frames:
            coerced, _ = coerce_frame(frame, 1, self._client.input_size)
            rows.append(coerced[0])
            raws.append(coerced[0].astype("<f8", copy=False).tobytes())
        out: list[np.ndarray | None] = [None] * total
        pending: list[tuple[int, int]] = []  # (rid, frame index)
        sent = 0
        cycles = 0
        busy_tries = 0
        while sent < total or pending:
            try:
                while sent < total and len(pending) < window:
                    if self._client.protocol >= 2:
                        rid = self._client._send_binary(
                            BIN_PUSH, self._name, raws[sent],
                            rows[sent].shape,
                        )
                    else:
                        rid = self._client._send(
                            "push", session=self._name,
                            frame=encode_array(rows[sent]),
                        )
                    pending.append((rid, sent))
                    sent += 1
                rid, index = pending[0]
                reply = self._client._recv()
                if reply.get("id") != rid:
                    # ``busy`` verdicts are issued at admission time, so
                    # one for a frame BEHIND the head can overtake the
                    # ordered replies still owed to the head.  That
                    # frame was skipped while later in-flight frames may
                    # still apply, so the contiguous-apply guarantee is
                    # gone; only the reattach path (seq reconcile +
                    # journal replay + tail resend) restores the order.
                    if reply.get("type") == "busy" and any(
                        reply.get("id") == prid for prid, _ in pending
                    ):
                        # Busy replies arrive in admission order, so
                        # everything ahead of the refused frame WAS
                        # admitted: its position bounds the worker's
                        # spare capacity.  Shrink the window toward it
                        # (at least halving) so the resumed pipeline
                        # stops re-saturating the ring and converges to
                        # blocking pushes instead of thrashing through
                        # recovery cycles.
                        refused = next(
                            position
                            for position, (prid, _) in enumerate(pending)
                            if prid == reply.get("id")
                        )
                        window = max(1, min(refused, window // 2))
                        raise RetryableError(
                            "a pipelined push was refused busy "
                            "mid-stream (worker ring saturated); reopen "
                            "and replay to recover the frame order"
                        )
                    raise NetError(
                        f"reply id {reply.get('id')!r} does not match "
                        f"request {rid} (one Client per thread; replies "
                        "are strictly ordered)"
                    )
                try:
                    reply = self._client._check(reply)
                except BusyError:
                    if len(pending) > 1:
                        # Frames behind the busy'd head are in flight
                        # and may apply without it — same ordering
                        # hazard as above.
                        window = max(1, window // 2)
                        raise RetryableError(
                            "a pipelined push was refused busy "
                            "mid-stream (worker ring saturated); "
                            "reopen and replay to recover the frame "
                            "order"
                        ) from None
                    # Only the head was in flight, so nothing behind it
                    # could have been applied: the blocking-push busy
                    # contract holds — back off and resend this frame.
                    busy_tries += 1
                    if busy_tries > self._retries:
                        raise
                    pending.clear()
                    sent = index
                    time.sleep(min(self._max_backoff_s,
                                   self._backoff_s * busy_tries))
                    continue
                busy_tries = 0
                pending.pop(0)
                self._accept_seq(reply, 1)
                self._journal_append(raws[index])
                out[index] = self._client._logits(reply)
            except (RetryableError, UnknownSessionError) as error:
                cycles += 1
                if not self._reattach or cycles > _MAX_RECOVERY_CYCLES:
                    raise
                # Replies fail in per-session order, so the unanswered
                # frames are exactly the contiguous tail from the oldest
                # pending index on — none of them were applied.  Recover
                # (reconnect discards whatever stale replies were in
                # flight), then resend that tail.
                resume = pending[0][1] if pending else sent
                pending.clear()
                self._recover(error)
                sent = resume
        return np.stack(out)  # type: ignore[arg-type]

    def reset(self) -> "NetSession":
        """Zero the carried state, as between utterances.  Returns self."""
        self._check_open()
        # Journal and counter first: if the reset round trip needs
        # recovery, the reattach must rebuild toward the ZEROED state
        # (an empty journal), not replay the pre-reset history.
        self._frames = 0
        self._journal.clear()
        self._journal_ok = True
        self._with_recovery(
            lambda: self._client.request("reset", session=self._name)
        )
        return self

    def close(self) -> None:
        """Close the server-side session (frees its worker bookkeeping).

        Idempotent and best-effort: a second close — e.g. an explicit
        close inside a ``with`` block — is a no-op, and a close the
        server can no longer honour (it is draining, or the connection
        is gone) is swallowed rather than raised out of ``__exit__`` —
        the server reclaims every session at shutdown anyway.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._client.request("close", session=self._name)
        except NetError:
            pass

    def _check_open(self) -> None:
        if self._closed:
            raise NetError(f"session {self._name!r} is closed")

    def __enter__(self) -> "NetSession":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
