"""Blocking, stdlib-only client for the :mod:`repro.runtime.net` protocol.

Mirrors the in-process surfaces: :class:`Client` is the connection,
:meth:`Client.session` opens a named streaming :class:`NetSession` whose
``push``/``reset``/``close`` behave like :class:`repro.runtime.Session` —
and return **byte-identical** logits, which is the point: the wire adds
transport, never arithmetic.

A :class:`Client` is single-threaded by design (one socket, strictly
ordered request/reply); concurrent callers each open their own, exactly
as with in-process sessions.

>>> client = Client("127.0.0.1", 7653)
>>> session = client.session("caller-42")
>>> posterior = session.push(frame)          # blocking round trip
>>> logits = session.run(frames, window=8)   # pipelined stream
"""

from __future__ import annotations

import itertools
import socket
import time
from typing import Any

import numpy as np

from repro.runtime.coerce import coerce_frame
from repro.runtime.net.protocol import (
    BusyError,
    NetError,
    decode_array,
    dump_line,
    encode_array,
    parse_line,
)

__all__ = ["Client", "NetSession"]


class Client:
    """One NDJSON TCP connection to a :class:`~repro.runtime.net.NetServer`."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.settimeout(timeout)
        self._file = self._sock.makefile("rwb")
        self._ids = itertools.count(1)
        self._closed = False
        self.hello = self._recv()
        if self.hello.get("type") != "hello":
            raise NetError(
                f"expected a hello frame, got {self.hello.get('type')!r}"
            )

    # ------------------------------------------------------------------
    @property
    def input_size(self) -> int:
        return int(self.hello["input_size"])

    @property
    def num_classes(self) -> int:
        return int(self.hello["num_classes"])

    @property
    def backend(self) -> str:
        return str(self.hello["backend"])

    @property
    def queue_limit(self) -> int:
        return int(self.hello["queue_limit"])

    # ------------------------------------------------------------------
    def _send(self, op: str, **fields: Any) -> int:
        if self._closed:
            raise NetError("client is closed")
        rid = next(self._ids)
        try:
            self._file.write(dump_line({"id": rid, "op": op, **fields}))
            self._file.flush()
        except OSError as error:
            raise NetError(f"send failed: {error}") from None
        return rid

    def _recv(self) -> dict:
        try:
            line = self._file.readline()
        except socket.timeout:
            raise NetError("timed out waiting for a reply") from None
        except OSError as error:
            raise NetError(f"receive failed: {error}") from None
        if not line:
            raise NetError("server closed the connection")
        return parse_line(line)

    def _recv_for(self, rid: int) -> dict:
        reply = self._recv()
        if reply.get("id") != rid:
            raise NetError(
                f"reply id {reply.get('id')!r} does not match request {rid} "
                "(one Client per thread; replies are strictly ordered)"
            )
        return reply

    def request(self, op: str, **fields: Any) -> dict:
        """One blocking round trip.  Raises on error/busy replies."""
        reply = self._recv_for(self._send(op, **fields))
        return self._check(reply)

    @staticmethod
    def _check(reply: dict) -> dict:
        if reply.get("ok", False):
            return reply
        if reply.get("type") == "busy":
            raise BusyError(
                f"server busy (limit {reply.get('limit')}); the frame was "
                "not applied — back off and resend it before newer frames"
            )
        raise NetError(
            f"{reply.get('kind', 'error')}: {reply.get('error', reply)}"
        )

    # ------------------------------------------------------------------
    def ping(self) -> float:
        """Round-trip time of an empty request, in seconds."""
        start = time.perf_counter()
        self.request("ping")
        return time.perf_counter() - start

    def stats(self) -> list[dict]:
        """Per-worker :class:`~repro.runtime.ServerStats` snapshots."""
        return self.request("stats")["workers"]

    def session(self, name: str) -> "NetSession":
        """Open (or re-attach to) the named streaming session."""
        return NetSession(self, name)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class NetSession:
    """A named server-side streaming session reached over the wire.

    The session id — not the connection — owns the carried recurrent
    state: reconnect with the same name and the stream continues where it
    left off, on the same worker (stable-hash routing).
    """

    def __init__(self, client: Client, name: str):
        self._client = client
        self._name = name
        self.meta = client.request("open", session=name)
        self._frames = int(self.meta.get("seq", 0))
        self._closed = False

    @property
    def name(self) -> str:
        return self._name

    @property
    def worker(self) -> int:
        """Index of the worker holding this session's state."""
        return int(self.meta["worker"])

    @property
    def frames_pushed(self) -> int:
        return self._frames

    # ------------------------------------------------------------------
    def push(
        self,
        frame: np.ndarray,
        retries: int = 20,
        backoff_s: float = 0.02,
    ) -> np.ndarray:
        """One blocking frame: coerce, send, return its logits.

        ``busy`` replies are retried with backoff (safe for a blocking
        push: nothing newer is in flight, so resending preserves order).
        Shapes mirror :meth:`repro.runtime.Session.push`: a bare ``(D,)``
        vector returns ``(C,)``; a ``(1, D)`` frame returns ``(1, C)``.
        """
        self._check_open()
        coerced, squeezed = coerce_frame(frame, 1, self._client.input_size)
        payload = encode_array(coerced[0])
        for attempt in range(retries + 1):
            try:
                reply = self._client.request(
                    "push", session=self._name, frame=payload
                )
            except BusyError:
                if attempt == retries:
                    raise
                time.sleep(backoff_s * (attempt + 1))
                continue
            self._accept_seq(reply)
            # copy(): decode_array returns a read-only view of the wire
            # bytes; Session.push parity means handing back a writable
            # array.
            logits = decode_array(reply["logits"]).copy()
            return logits if squeezed else logits[None, :]
        raise AssertionError("unreachable")

    def _accept_seq(self, reply: dict) -> None:
        """Enforce exactly-once, in-order delivery per stream.

        Every push reply carries the worker-side frame counter; a gap or
        repeat means a frame was dropped, duplicated or reordered in
        transit — state-corrupting for a recurrent stream, so it is a
        hard error, not a warning.
        """
        seq = reply.get("seq")
        if seq != self._frames + 1:
            raise NetError(
                f"stream {self._name!r} out of sync: expected frame "
                f"{self._frames + 1}, server reports {seq} (a frame was "
                "dropped, duplicated or reordered; reset the session)"
            )
        self._frames = seq

    def run(self, frames: np.ndarray, window: int = 8) -> np.ndarray:
        """Pipelined streaming: ``(T, D)`` frames → ``(T, C)`` logits.

        Keeps up to ``window`` pushes in flight (clamped to the server's
        advertised ``queue_limit``, so a session that owns its connection
        can never draw a ``busy``).  Byte-identical to ``T`` blocking
        pushes — pipelining changes latency, not bytes.
        """
        self._check_open()
        frames = np.asarray(frames)
        if frames.ndim != 2:
            raise NetError(f"run() wants (T, D) frames, got {frames.shape}")
        window = max(1, min(window, self._client.queue_limit))
        total = len(frames)
        if total == 0:  # Session.run parity: empty stream, empty result
            return np.empty((0, self._client.num_classes))
        # Coerce and encode the WHOLE stream before sending anything: a
        # bad frame discovered mid-pipeline would abandon in-flight
        # replies and desynchronize the connection for good.  Up-front
        # validation turns it into a clean error with nothing sent.
        payloads = []
        for frame in frames:
            coerced, _ = coerce_frame(frame, 1, self._client.input_size)
            payloads.append(encode_array(coerced[0]))
        out: list[np.ndarray | None] = [None] * total
        pending: list[tuple[int, int]] = []  # (rid, frame index)
        sent = 0
        while sent < total or pending:
            while sent < total and len(pending) < window:
                rid = self._client._send(
                    "push", session=self._name, frame=payloads[sent]
                )
                pending.append((rid, sent))
                sent += 1
            rid, index = pending.pop(0)
            reply = self._client._check(self._client._recv_for(rid))
            self._accept_seq(reply)
            out[index] = decode_array(reply["logits"])
        return np.stack(out)  # type: ignore[arg-type]

    def reset(self) -> "NetSession":
        """Zero the carried state, as between utterances.  Returns self."""
        self._check_open()
        self._client.request("reset", session=self._name)
        self._frames = 0
        return self

    def close(self) -> None:
        """Close the server-side session (frees its worker thread).

        Idempotent and best-effort: a second close — e.g. an explicit
        close inside a ``with`` block — is a no-op, and a close the
        server can no longer honour (it is draining, or the connection
        is gone) is swallowed rather than raised out of ``__exit__`` —
        the server reclaims every session at shutdown anyway.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._client.request("close", session=self._name)
        except NetError:
            pass

    def _check_open(self) -> None:
        if self._closed:
            raise NetError(f"session {self._name!r} is closed")

    def __enter__(self) -> "NetSession":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
