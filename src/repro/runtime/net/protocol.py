"""The newline-delimited-JSON wire protocol of :mod:`repro.runtime.net`.

One request per line, one JSON object per request; one reply per request,
also a single line.  The full specification lives in ``docs/runtime.md``
(section "Serving over the network"); this module is the shared
encode/decode layer used by the server, the workers and the client, so
the two sides can never drift.

Array transport
---------------

Logits must arrive **byte-identical** to a standalone
:class:`repro.runtime.Session`, so the canonical array encoding is raw
little-endian float64 bytes, base64-wrapped::

    {"dtype": "<f8", "shape": [39], "b64": "..."}

For hand-written clients a plain JSON list of numbers is also accepted on
input (Python's JSON round-trips every float64 exactly, so this loses
nothing); replies always use the base64 form.
"""

from __future__ import annotations

# bit-exact: this module is on the fixed/float byte-identity surface
# (docs/analysis.md, REP003) — dtypes stay explicit, reductions ordered.

import base64
import json
from typing import Any

import numpy as np

from repro.errors import ReproError

__all__ = [
    "PROTOCOL_VERSION",
    "OPS",
    "SESSION_OPS",
    "NetError",
    "BusyError",
    "encode_array",
    "decode_array",
    "dump_line",
    "parse_line",
    "error_reply",
]

#: Bumped on any incompatible wire change; sent in every ``hello`` frame.
PROTOCOL_VERSION = 1

#: Every op a v1 request may carry.  repro-lint's REP006 checker keeps
#: this tuple and the client-facing spec in lockstep.
OPS = ("ping", "stats", "open", "push", "reset", "close")  # documented-in: docs/runtime.md

#: The ops that carry a session name and route to a worker by its hash.
SESSION_OPS = frozenset({"open", "push", "reset", "close"})

#: Hard cap on one request line — a malformed or hostile client must not
#: balloon the server's memory.  Generous: a base64 float64 frame of
#: 10_000 features is ~110 KB.
MAX_LINE_BYTES = 1 << 20


class NetError(ReproError):
    """A network-serving request failed (protocol, transport, or remote)."""


class BusyError(NetError):
    """The server refused a request with a ``busy`` frame (backpressure).

    The refused frame was **not** applied to the session: resend it before
    pushing anything newer, or the stream's state diverges.
    """


def encode_array(values: np.ndarray) -> dict:
    """Encode an array as the exact base64 form."""
    values = np.ascontiguousarray(values, dtype=np.float64)
    return {
        "dtype": "<f8",
        "shape": list(values.shape),
        "b64": base64.b64encode(
            values.astype("<f8", copy=False).tobytes()
        ).decode("ascii"),
    }


def decode_array(payload: Any) -> np.ndarray:
    """Decode either array form (base64 dict or JSON list) to float64."""
    if isinstance(payload, dict):
        try:
            if payload["dtype"] != "<f8":
                raise NetError(
                    f"unsupported wire dtype {payload['dtype']!r}; "
                    "arrays travel as little-endian float64"
                )
            raw = base64.b64decode(payload["b64"], validate=True)
            # asarray, not astype: on little-endian machines "<f8" IS
            # float64, so this is a zero-copy view of the decoded bytes.
            values = np.asarray(
                np.frombuffer(raw, dtype="<f8"), dtype=np.float64
            )
            return values.reshape([int(n) for n in payload["shape"]])
        except NetError:
            raise
        except (KeyError, ValueError, TypeError) as error:
            raise NetError(f"malformed array payload: {error}") from None
    if isinstance(payload, list):
        try:
            return np.asarray(payload, dtype=np.float64)
        except (ValueError, TypeError) as error:
            raise NetError(f"malformed array list: {error}") from None
    raise NetError(
        f"array payload must be a base64 dict or a list, got "
        f"{type(payload).__name__}"
    )


def frame_payload_bytes(payload: Any) -> tuple[bytes, list[int]]:
    """Raw little-endian float64 bytes + shape from a frame payload.

    The server hot path: for the canonical base64 ``<f8`` form the
    decoded bytes pass straight through to the worker with no numpy
    round trip (just a length-vs-shape check); the JSON-list form pays
    one conversion.
    """
    if isinstance(payload, dict):
        if payload.get("dtype") != "<f8":
            raise NetError(
                f"unsupported wire dtype {payload.get('dtype')!r}; "
                "arrays travel as little-endian float64"
            )
        try:
            raw = base64.b64decode(payload["b64"], validate=True)
            shape = [int(n) for n in payload["shape"]]
        except (KeyError, ValueError, TypeError) as error:
            raise NetError(f"malformed array payload: {error}") from None
        count = 1
        for dim in shape:
            if dim < 0:  # a [-2,-4] shape would pass a product check
                raise NetError(f"negative dimension in shape {shape}")
            count *= dim
        if len(raw) != 8 * count:
            raise NetError(
                f"frame payload carries {len(raw)} bytes for shape {shape}"
            )
        return raw, shape
    values = decode_array(payload)
    return values.astype("<f8", copy=False).tobytes(), list(values.shape)


def dump_line(message: dict) -> bytes:
    """Serialize one protocol message to its wire line (with newline)."""
    return (
        json.dumps(message, separators=(",", ":"), allow_nan=False) + "\n"
    ).encode("utf-8")


def parse_line(line: bytes) -> dict:
    """Parse one wire line into a message dict."""
    if len(line) > MAX_LINE_BYTES:
        raise NetError(f"request line exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line)
    except (ValueError, UnicodeDecodeError) as error:
        raise NetError(f"request is not valid JSON: {error}") from None
    if not isinstance(message, dict):
        raise NetError(
            f"request must be a JSON object, got {type(message).__name__}"
        )
    return message


def error_reply(request_id: Any, error: BaseException | str) -> dict:
    """The standard error frame for a failed request."""
    if isinstance(error, BaseException):
        kind, text = type(error).__name__, str(error)
    else:
        kind, text = "NetError", str(error)
    return {
        "id": request_id,
        "ok": False,
        "type": "error",
        "kind": kind,
        "error": text,
    }
