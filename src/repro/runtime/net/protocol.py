"""The wire protocol of :mod:`repro.runtime.net`: NDJSON v1 + binary v2.

Protocol v1 is one JSON object per newline-delimited request line, one
reply line per request.  Protocol v2 keeps that JSON control plane —
``open``, ``close``, ``reset``, ``stats``, ``busy`` and every error
frame stay NDJSON — and moves only the hot payload path (``push``,
``push_many`` and their results) onto length-prefixed binary frames of
raw little-endian float64 bytes, negotiated per connection inside the
``open`` handshake.  A v1 client never sees a single v2 byte.  The full
specification lives in ``docs/runtime.md`` (section "Serving over the
network"); this module is the shared encode/decode layer used by the
server, the workers and the client, so the sides can never drift.

Array transport (v1 / control plane)
------------------------------------

Logits must arrive **byte-identical** to a standalone
:class:`repro.runtime.Session`, so the canonical JSON array encoding is
raw little-endian float64 bytes, base64-wrapped::

    {"dtype": "<f8", "shape": [39], "b64": "..."}

For hand-written clients a plain JSON list of numbers is also accepted on
input (Python's JSON round-trips every float64 exactly, so this loses
nothing); replies always use the base64 form.

Binary frames (v2 data plane)
-----------------------------

A v2 frame starts with ``0xA6`` — an invalid UTF-8 lead byte, so the
first byte of any request or reply unambiguously selects the framing —
followed by a fixed 24-byte prefix, a shape header, and the payload::

    magic     u8   0xA6
    version   u8   2
    op        u8   1=push 2=result 3=push_many 4=result_many
    dtype     u8   1 = little-endian float64
    rid       u64  request id (echoed in the result)
    seq       u64  results: session frame counter after the op; else 0
    slen      u16  session-id byte length (requests; 0 in results)
    ndim      u8   number of dims (1..4)
    reserved  u8   0
    dims      u32 × ndim
    nbytes    u32  payload byte length (must equal 8 · ∏dims)
    session   utf-8, slen bytes
    payload   nbytes raw little-endian float64

Everything is little-endian.  The frame is self-delimiting, so a
semantically invalid header (wrong version, unknown op/dtype, shape and
``nbytes`` disagreeing) costs one structured JSON ``error`` reply and
the connection stays usable; only a header whose *lengths* cannot be
trusted (``ndim``/``slen``/``nbytes`` over the hard caps) forces a
disconnect, since resynchronisation is impossible.
"""

from __future__ import annotations

# bit-exact: this module is on the fixed/float byte-identity surface
# (docs/analysis.md, REP003) — dtypes stay explicit, reductions ordered.

import base64
import json
import struct
from typing import Any

import numpy as np

from repro.errors import ReproError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_PROTOCOL",
    "OPS",
    "CLUSTER_OPS",
    "SESSION_OPS",
    "NetError",
    "BusyError",
    "RetryableError",
    "ConnectionLostError",
    "UnknownSessionError",
    "encode_array",
    "decode_array",
    "token_payload_bytes",
    "dump_line",
    "parse_line",
    "error_reply",
    "build_binary_frame",
    "check_binary_header",
]

#: The baseline protocol every client speaks; sent in every ``hello``.
PROTOCOL_VERSION = 1

#: Highest protocol this codebase can negotiate (``hello.max_protocol``).
MAX_PROTOCOL = 2

#: Every op a request may carry (v2 adds ``push_many``; the LM workload
#: adds ``generate`` and ``score``).  repro-lint's REP006 checker keeps
#: this tuple and the client-facing spec in lockstep.
OPS = ("ping", "stats", "health", "sessions", "open", "push", "push_many", "generate", "score", "reset", "close", "evict")  # documented-in: docs/runtime.md

#: The gateway's admin plane (:mod:`repro.runtime.cluster`).  A single
#: NetServer rejects these as unknown ops — they only mean something to
#: the process that owns the ring.
CLUSTER_OPS = ("cluster_health", "cluster_drain", "cluster_undrain", "cluster_add")  # documented-in: docs/runtime.md

#: The ops that carry a session name and route to a worker by its hash.
#: ``generate``/``score`` ride the same routing: an op is an op to every
#: transport layer, whatever workload serves it.
SESSION_OPS = frozenset({"open", "push", "push_many", "generate", "score",
                         "reset", "close", "evict"})

#: Hard cap on one request line — a malformed or hostile client must not
#: balloon the server's memory.  Generous: a base64 float64 frame of
#: 10_000 features is ~110 KB.
MAX_LINE_BYTES = 1 << 20

#: Hard cap on one binary payload (16 MiB ≈ a 500-frame push_many of
#: 4096 features); beyond it the header cannot be trusted at all.
MAX_FRAME_BYTES = 1 << 24

#: Most frames one ``push_many`` may carry — admission control charges a
#: batch one slot, so an unbounded batch could monopolize a worker.
MAX_PUSH_MANY_FRAMES = 4096

# --- binary (v2) framing constants -----------------------------------
BIN_MAGIC = 0xA6  # invalid UTF-8 lead byte: can never start a JSON line
BIN_VERSION = 2
BIN_PUSH = 1
BIN_RESULT = 2
BIN_PUSH_MANY = 3
BIN_RESULT_MANY = 4
BIN_SCORE = 5  # (K,) int64 token ids -> per-token log-probs
BIN_SCORE_RESULT = 6  # (K-1,) float64 log-probs for tokens[1:]
BIN_DTYPE_F8 = 1  # little-endian float64, the payload dtype of scoring
BIN_DTYPE_I8 = 2  # little-endian int64 token ids (BIN_SCORE requests)
#: magic, version, op, dtype, rid, seq, session_len, ndim, reserved.
BIN_PREFIX = struct.Struct("<BBBBQQHBB")
#: Framing-level caps: headers beyond these cannot be skipped safely.
MAX_BIN_NDIM = 4
MAX_BIN_SESSION = 1024

_REQUEST_OPS = (BIN_PUSH, BIN_PUSH_MANY, BIN_SCORE)
_RESULT_OPS = (BIN_RESULT, BIN_RESULT_MANY, BIN_SCORE_RESULT)


class NetError(ReproError):
    """A network-serving request failed (protocol, transport, or remote)."""


class BusyError(NetError):
    """The server refused a request with a ``busy`` frame (backpressure).

    The refused frame was **not** applied to the session: resend it before
    pushing anything newer, or the stream's state diverges.  ``limit`` is
    the server's advertised per-connection in-flight cap when known.
    """

    def __init__(self, message: str, limit: int | None = None):
        super().__init__(message)
        self.limit = limit


class RetryableError(NetError):
    """The request failed, but a retry (or session reattach) may succeed.

    Raised for error frames carrying ``"retryable": true`` — the
    supervised server's way of saying "a worker died or is restarting;
    the frame was NOT applied and the session's worker-side state is
    gone".  :class:`~repro.runtime.net.client.NetSession` recovers from
    these transparently when ``reattach`` is enabled (reopen by id,
    replay acked frames, resend the failed one).
    """


class ConnectionLostError(RetryableError):
    """The TCP connection itself failed (send/recv error, EOF, timeout).

    Retryable by definition against a supervised server: reconnect and
    reattach.  Whether the in-flight frame was applied is unknown, which
    is why recovery always reconciles via the ``seq`` reported by
    ``open`` before resending anything.
    """


class UnknownSessionError(NetError):
    """The worker does not know this session id (never opened, evicted,
    or its worker was restarted).  A bare resend cannot succeed — the
    session must be re-opened (and its frames replayed) first, which is
    exactly what client-side reattach does."""


def encode_array(values: np.ndarray) -> dict:
    """Encode an array as the exact base64 form."""
    values = np.ascontiguousarray(values, dtype=np.float64)
    return {
        "dtype": "<f8",
        "shape": list(values.shape),
        "b64": base64.b64encode(
            values.astype("<f8", copy=False).tobytes()
        ).decode("ascii"),
    }


def decode_array(payload: Any) -> np.ndarray:
    """Decode either array form (base64 dict or JSON list) to float64."""
    if isinstance(payload, dict):
        try:
            if payload["dtype"] != "<f8":
                raise NetError(
                    f"unsupported wire dtype {payload['dtype']!r}; "
                    "arrays travel as little-endian float64"
                )
            raw = base64.b64decode(payload["b64"], validate=True)
            # asarray, not astype: on little-endian machines "<f8" IS
            # float64, so this is a zero-copy view of the decoded bytes.
            values = np.asarray(
                np.frombuffer(raw, dtype="<f8"), dtype=np.float64
            )
            return values.reshape([int(n) for n in payload["shape"]])
        except NetError:
            raise
        except (KeyError, ValueError, TypeError) as error:
            raise NetError(f"malformed array payload: {error}") from None
    if isinstance(payload, list):
        try:
            return np.asarray(payload, dtype=np.float64)
        except (ValueError, TypeError) as error:
            raise NetError(f"malformed array list: {error}") from None
    raise NetError(
        f"array payload must be a base64 dict or a list, got "
        f"{type(payload).__name__}"
    )


def frame_payload_bytes(payload: Any) -> tuple[bytes, list[int]]:
    """Raw little-endian float64 bytes + shape from a frame payload.

    The server hot path: for the canonical base64 ``<f8`` form the
    decoded bytes pass straight through to the worker with no numpy
    round trip (just a length-vs-shape check); the JSON-list form pays
    one conversion.
    """
    if isinstance(payload, dict):
        if payload.get("dtype") != "<f8":
            raise NetError(
                f"unsupported wire dtype {payload.get('dtype')!r}; "
                "arrays travel as little-endian float64"
            )
        try:
            raw = base64.b64decode(payload["b64"], validate=True)
            shape = [int(n) for n in payload["shape"]]
        except (KeyError, ValueError, TypeError) as error:
            raise NetError(f"malformed array payload: {error}") from None
        count = 1
        for dim in shape:
            if dim < 0:  # a [-2,-4] shape would pass a product check
                raise NetError(f"negative dimension in shape {shape}")
            count *= dim
        if len(raw) != 8 * count:
            raise NetError(
                f"frame payload carries {len(raw)} bytes for shape {shape}"
            )
        return raw, shape
    values = decode_array(payload)
    return values.astype("<f8", copy=False).tobytes(), list(values.shape)


def token_payload_bytes(payload: Any) -> tuple[bytes, list[int]]:
    """Raw little-endian int64 bytes + shape from a token-id payload.

    The ``score`` op's JSON form: a plain list of integer token ids (or
    the base64 dict with dtype ``"<i8"``).  Floats are rejected rather
    than truncated — a fractional token id is a caller bug, and int64
    keeps the 8-bytes-per-element arithmetic of the float64 frames.
    """
    if isinstance(payload, dict):
        if payload.get("dtype") != "<i8":
            raise NetError(
                f"unsupported token dtype {payload.get('dtype')!r}; "
                "token ids travel as little-endian int64"
            )
        try:
            raw = base64.b64decode(payload["b64"], validate=True)
            shape = [int(n) for n in payload["shape"]]
        except (KeyError, ValueError, TypeError) as error:
            raise NetError(f"malformed token payload: {error}") from None
        count = 1
        for dim in shape:
            if dim < 0:
                raise NetError(f"negative dimension in shape {shape}")
            count *= dim
        if len(raw) != 8 * count:
            raise NetError(
                f"token payload carries {len(raw)} bytes for shape {shape}"
            )
        return raw, shape
    if isinstance(payload, list):
        values = np.asarray(payload)  # repro: ignore[REP003] dtype probe, pinned below
        if values.dtype == object or not (
            values.size == 0 or np.issubdtype(values.dtype, np.integer)
        ):
            raise NetError(
                "token ids must be integers (floats are rejected, not "
                "truncated)"
            )
        values = np.ascontiguousarray(values, dtype=np.int64)
        return values.astype("<i8", copy=False).tobytes(), list(values.shape)
    raise NetError(
        f"token payload must be a base64 dict or a list, got "
        f"{type(payload).__name__}"
    )


def dump_line(message: dict) -> bytes:
    """Serialize one protocol message to its wire line (with newline)."""
    return (
        json.dumps(message, separators=(",", ":"), allow_nan=False) + "\n"
    ).encode("utf-8")


def parse_line(line: bytes) -> dict:
    """Parse one wire line into a message dict."""
    if len(line) > MAX_LINE_BYTES:
        raise NetError(f"request line exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line)
    except (ValueError, UnicodeDecodeError) as error:
        raise NetError(f"request is not valid JSON: {error}") from None
    if not isinstance(message, dict):
        raise NetError(
            f"request must be a JSON object, got {type(message).__name__}"
        )
    return message


def build_binary_frame(
    op: int,
    rid: int,
    shape: tuple[int, ...] | list[int],
    payload: bytes | memoryview,
    *,
    session: bytes = b"",
    seq: int = 0,
    dtype_code: int = BIN_DTYPE_F8,
) -> bytes:
    """Pack one v2 binary frame (request or result) into wire bytes."""
    ndim = len(shape)
    if not 1 <= ndim <= MAX_BIN_NDIM:
        raise NetError(f"binary frame supports 1..{MAX_BIN_NDIM} dims, got {ndim}")
    if len(session) > MAX_BIN_SESSION:
        raise NetError(f"session id exceeds {MAX_BIN_SESSION} bytes on the wire")
    if len(payload) > MAX_FRAME_BYTES:
        raise NetError(f"binary payload exceeds {MAX_FRAME_BYTES} bytes")
    prefix = BIN_PREFIX.pack(
        BIN_MAGIC, BIN_VERSION, op, dtype_code,
        rid, seq, len(session), ndim, 0,
    )
    header = struct.pack(f"<{ndim}II", *shape, len(payload))
    return b"".join((prefix, header, session, payload))


def check_binary_header(
    version: int,
    op: int,
    dtype_code: int,
    dims: tuple[int, ...],
    nbytes: int,
    *,
    expect_request: bool,
) -> None:
    """Semantic validation of a fully read v2 frame header.

    Everything checked here is *recoverable*: the frame was already
    consumed in full (it is self-delimiting), so the caller answers with
    a structured error and keeps the connection.
    """
    if version != BIN_VERSION:
        raise NetError(
            f"unsupported binary protocol version {version}; this build "
            f"speaks v{BIN_VERSION}"
        )
    allowed = _REQUEST_OPS if expect_request else _RESULT_OPS
    if op not in allowed:
        raise NetError(
            f"unexpected binary op code {op}; expected one of "
            f"{sorted(allowed)}"
        )
    # Token arrays (BIN_SCORE requests) travel as int64; every other
    # payload is float64.  Both are 8 bytes per element, so the
    # shape-vs-nbytes arithmetic below is dtype-independent.
    wanted = BIN_DTYPE_I8 if op == BIN_SCORE else BIN_DTYPE_F8
    if dtype_code != wanted:
        raise NetError(
            f"unsupported binary dtype code {dtype_code} for op {op}; "
            f"expected {wanted} (token ids are little-endian int64, "
            "everything else little-endian float64)"
        )
    count = 1
    for dim in dims:
        count *= int(dim)
    if nbytes != 8 * count:
        raise NetError(
            f"binary payload carries {nbytes} bytes for shape "
            f"{list(dims)} (expected {8 * count})"
        )


def error_reply(request_id: Any, error: BaseException | str,
                *, retryable: bool = False) -> dict:
    """The standard error frame for a failed request.

    ``retryable=True`` marks a *transient* failure (worker died or is
    restarting): the frame was not applied, the client may retry or
    reattach.  Non-retryable errors are semantic — retrying the same
    request can only fail the same way.
    """
    if isinstance(error, BaseException):
        kind, text = type(error).__name__, str(error)
    else:
        kind, text = "NetError", str(error)
    reply = {
        "id": request_id,
        "ok": False,
        "type": "error",
        "kind": kind,
        "error": text,
    }
    if retryable:
        reply["retryable"] = True
    return reply
