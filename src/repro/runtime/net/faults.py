"""Fault injection for :mod:`repro.runtime.net` — chaos on demand.

The self-healing claims of the supervised :class:`NetServer` (worker
restart, retryable error frames, client reattach, seqlock corruption
detection) are only as credible as the failures they were tested
against.  This module provides those failures as first-class,
deterministic hooks: a list of :class:`FaultSpec`\\ s handed to
``NetServer(faults=...)`` (or ``repro serve --fault ...``) arms the
matching workers, which then kill/stall themselves or damage their own
response path at precisely reproducible points.

Fault kinds
-----------

``kill``
    The worker SIGKILLs itself after handling ``after`` requests — the
    canonical hard crash (no cleanup, no goodbye, poisonable locks and
    half-written slots included).
``stall``
    The worker's consumer thread sleeps ``seconds`` after ``after``
    requests: the process is alive but unresponsive, which is what the
    parent's heartbeat timeout exists to catch.
``delay_publish``
    Sleep ``seconds`` before publishing a response (``times`` times):
    pure added latency, nothing may break.
``drop_publish``
    Swallow a response entirely (``times`` times): the request's reply
    never exists.  The parent cannot distinguish this from slow compute,
    so the *client's* timeout + reattach is the recovery path.
``corrupt_slot``
    Publish a response normally, then scribble its slot's seq word:
    the parent's seqlock check must raise :class:`~repro.runtime.net.\
ring.RingError`, and the supervisor must treat the worker as lost.

Faults arm the **initial generation only**: a worker respawned by the
supervisor is clean, so a single ``kill`` fault exercises exactly one
death instead of a crash loop.

The string grammar (for ``--fault``) is ``kind:key=value,key=value``::

    kill:worker=1,after=5
    stall:worker=0,after=3,seconds=30
    delay_publish:worker=0,seconds=0.05,times=3
    drop_publish:worker=1,after=2
    corrupt_slot:worker=0,after=4
"""

from __future__ import annotations

import os
import signal
import time
from typing import Any, NamedTuple

from repro.errors import ConfigError

__all__ = ["FaultSpec", "FaultInjector", "parse_fault"]

#: Every fault kind the injector understands.
KINDS = ("kill", "stall", "delay_publish", "drop_publish", "corrupt_slot")

#: Kinds triggered per handled request (vs per published response).
_REQUEST_KINDS = frozenset({"kill", "stall"})


class FaultSpec(NamedTuple):
    """One armed fault.  Picklable (crosses the spawn boundary).

    ``worker`` — worker index the fault arms (``None`` = every worker).
    ``after`` — trigger events to skip first (requests handled for
    ``kill``/``stall``, responses published for the publish kinds).
    ``seconds`` — sleep length for ``stall``/``delay_publish``.
    ``times`` — how many times the fault fires (irrelevant for ``kill``).
    """

    kind: str
    worker: int | None = None
    after: int = 0
    seconds: float = 0.0
    times: int = 1


def parse_fault(text: str) -> FaultSpec:
    """Parse one ``kind:key=value,...`` fault string."""
    kind, _, rest = text.partition(":")
    kind = kind.strip()
    if kind not in KINDS:
        raise ConfigError(
            f"unknown fault kind {kind!r}; expected one of {', '.join(KINDS)}"
        )
    fields: dict[str, Any] = {}
    if rest.strip():
        for pair in rest.split(","):
            key, sep, value = pair.partition("=")
            key = key.strip()
            if not sep or key not in ("worker", "after", "seconds", "times"):
                raise ConfigError(
                    f"bad fault field {pair!r} in {text!r}; expected "
                    "worker=, after=, seconds= or times="
                )
            try:
                fields[key] = (
                    float(value) if key == "seconds" else int(value)
                )
            except ValueError:
                raise ConfigError(
                    f"bad fault value {value!r} for {key} in {text!r}"
                ) from None
    if kind in ("stall", "delay_publish") and fields.get("seconds", 0) <= 0:
        raise ConfigError(f"fault {kind!r} needs seconds= > 0")
    return FaultSpec(kind, **fields)


def coerce_faults(faults: Any) -> list[FaultSpec]:
    """Normalize ``NetServer(faults=...)`` input to a FaultSpec list."""
    if faults is None:
        return []
    if isinstance(faults, (str, FaultSpec)):
        faults = [faults]
    out = []
    for fault in faults:
        if isinstance(fault, str):
            fault = parse_fault(fault)
        if not isinstance(fault, FaultSpec):
            raise ConfigError(
                f"faults must be FaultSpec or 'kind:k=v' strings, got "
                f"{type(fault).__name__}"
            )
        out.append(fault)
    return out


class FaultInjector:
    """Worker-side fault engine: counts events, fires armed faults.

    Lives entirely inside one worker process; every method is called
    from that worker's consumer/pump thread, so plain counters suffice.
    ``on_request`` fires the request-count kinds; ``on_publish`` is
    consulted before each response publish and returns the action the
    emitter must take (``None`` — publish normally, ``"drop"`` — swallow
    the response, ``"corrupt"`` — publish then corrupt the slot).
    """

    def __init__(self, index: int, faults: list[FaultSpec]):
        self._index = index
        self._requests = 0
        self._publishes = 0
        self._armed = [
            {"spec": spec, "left": max(1, spec.times)}
            for spec in faults
            if spec.worker is None or spec.worker == index
        ]

    def __bool__(self) -> bool:
        return bool(self._armed)

    def _due(self, kinds: frozenset | set, count: int) -> FaultSpec | None:
        for slot in self._armed:
            spec = slot["spec"]
            if spec.kind not in kinds or slot["left"] <= 0:
                continue
            if count > spec.after:
                slot["left"] -= 1
                return spec
        return None

    def on_request(self) -> None:
        """One parent request handled; may never return (kill/stall)."""
        self._requests += 1
        spec = self._due(_REQUEST_KINDS, self._requests)
        if spec is None:
            return
        if spec.kind == "kill":
            # A hard, uncooperative death — exactly what a segfault or
            # OOM kill looks like from the parent's side.
            os.kill(os.getpid(), signal.SIGKILL)
        elif spec.kind == "stall":
            time.sleep(spec.seconds)

    def on_publish(self) -> str | None:
        """About to publish one response; returns the publish action."""
        self._publishes += 1
        spec = self._due(
            frozenset({"delay_publish", "drop_publish", "corrupt_slot"}),
            self._publishes,
        )
        if spec is None:
            return None
        if spec.kind == "delay_publish":
            time.sleep(spec.seconds)
            return None
        return "drop" if spec.kind == "drop_publish" else "corrupt"
