"""Shared-memory slot rings: the parent↔worker payload path of v2.

Before this module, every frame crossed the process boundary twice as a
pickled queue message (parent→worker request, worker→parent logits).
:class:`RingPair` replaces that with one ``multiprocessing.shared_memory``
segment per worker holding two single-producer / single-consumer slot
rings — requests parent→worker, results worker→parent — so payload bytes
are written once into a slot and read once out of it, never serialized.

Each slot carries a seqlock-style ready flag: the producer fills the
slot body first and publishes ``seq = 2·index + 1`` *last*; the consumer
verifies that exact value before trusting the body and stamps
``2·index + 2`` when done (``index`` is the monotonic entry number, so a
stale or torn slot can never masquerade as ready).  Head and tail are
single-writer 8-byte counters in the segment header — on CPython an
aligned 8-byte ``memoryview`` store is a single memcpy, and the per-slot
seq check backstops the ordering either way.

The rings carry no wakeups of their own.  Doorbells ride the existing
``multiprocessing`` queues, coalesced through a kick flag in the segment
header: the producer publishes, then enqueues a ``("kick",)`` message
only if it transitions the flag 0→1; the consumer clears the flag
*before* draining.  A burst of N frames therefore costs one queue
message, not N — and the publish-then-check / clear-then-drain order
makes a lost wakeup impossible.

Payloads larger than a slot (or any traffic when the box has no usable
shared memory — ``transport="pipe"``) fall back to the queues; an
oversized request still occupies a ring slot (flagged ``external``) so
per-session FIFO order is preserved across both paths.

Lifecycle: the parent creates and later unlinks the segment; workers
attach by name and must *unregister* their attachment from Python's
``resource_tracker`` (3.9+ tracks attachments too, and would otherwise
destroy the segment when the first worker exits).
"""

from __future__ import annotations

import struct
from typing import Any

from repro.errors import ReproError

__all__ = ["RingPair", "Ring", "RingError"]

_U64 = struct.Struct("<Q")
#: seq, ticket, seq_no, emit_seq, op, flags, ndim, pad, nbytes, dims[4], slen
_META = struct.Struct("<QQQQBBBxI4IH")
_HEADER_BYTES = 64  # req tail/head, res tail/head, two kick flags, pad
_SLOT_META = 320  # _META (62B) rounded up + 256B session area
_SESSION_AREA = _SLOT_META - 64
_FLAG_EXTERNAL = 1  # payload travels on the queue, not in the slot

# Ring ops (worker-internal codes; the wire never sees these).
OP_OPEN = 1
OP_PUSH = 2
OP_PUSH_MANY = 3
OP_RESET = 4
OP_CLOSE = 5
OP_EVICT = 6
OP_GENERATE = 7  # payload: JSON op parameters, shape ()
OP_SCORE = 8  # payload: (K,) little-endian int64 token ids


class RingError(ReproError):
    """A shared-memory ring slot failed its consistency check."""


class _Entry:
    """One consumed ring entry.  ``payload`` views the slot: copy it out
    before calling :meth:`Ring.advance`."""

    __slots__ = ("op", "ticket", "seq_no", "emit_seq", "shape", "external",
                 "session", "payload")

    def __init__(self, op: int, ticket: int, seq_no: int, emit_seq: int,
                 shape: tuple[int, ...], external: bool,
                 session: str, payload: memoryview):
        self.op = op
        self.ticket = ticket
        self.seq_no = seq_no
        self.emit_seq = emit_seq
        self.shape = shape
        self.external = external
        self.session = session
        self.payload = payload


class Ring:
    """One SPSC slot ring inside a shared segment (one side of a pair)."""

    def __init__(self, buf: memoryview, *, slots_offset: int,
                 counters_offset: int, nslots: int, payload_capacity: int):
        self._buf = buf
        self._tail_off = counters_offset  # producer-owned
        self._head_off = counters_offset + 8  # consumer-owned
        self._slots_off = slots_offset
        self.nslots = nslots
        self.payload_capacity = payload_capacity
        self._stride = _SLOT_META + payload_capacity

    # -- counters ------------------------------------------------------
    def _load(self, offset: int) -> int:
        return _U64.unpack_from(self._buf, offset)[0]

    def _store(self, offset: int, value: int) -> None:
        _U64.pack_into(self._buf, offset, value)

    def free_slots(self) -> int:
        """Producer view: slots available right now (may only grow)."""
        return self.nslots - (self._load(self._tail_off)
                              - self._load(self._head_off))

    # -- producer ------------------------------------------------------
    def try_push(
        self,
        op: int,
        ticket: int,
        shape: tuple[int, ...] | list[int],
        payload: bytes | memoryview | None,
        *,
        session: bytes = b"",
        seq_no: int = 0,
        emit_seq: int = 0,
        external: bool = False,
    ) -> bool:
        """Publish one entry; False when the ring is full.

        ``payload=None`` (or ``external=True``) publishes a payload-less
        entry whose bytes travel on the queue instead — the entry still
        holds the FIFO position.
        """
        tail = self._load(self._tail_off)
        head = self._load(self._head_off)
        if tail - head >= self.nslots:
            return False
        nbytes = 0 if external or payload is None else len(payload)
        if nbytes > self.payload_capacity:
            raise RingError(
                f"payload of {nbytes} bytes exceeds the {self.payload_capacity}"
                "-byte slot; route it through the external path"
            )
        if len(session) > _SESSION_AREA:
            raise RingError(f"session id exceeds {_SESSION_AREA} slot bytes")
        dims = list(shape) + [0] * (4 - len(shape))
        slot = self._slots_off + (tail % self.nslots) * self._stride
        flags = _FLAG_EXTERNAL if external else 0
        # Body first, seq last: the consumer trusts nothing until the
        # seq word carries this exact entry's ready value.
        _META.pack_into(
            self._buf, slot,
            0, ticket, seq_no, emit_seq, op, flags, len(shape), nbytes,
            *dims, len(session),
        )
        if session:
            self._buf[slot + 64:slot + 64 + len(session)] = session
        if nbytes:
            self._buf[slot + _SLOT_META:slot + _SLOT_META + nbytes] = payload
        self._store(slot, 2 * tail + 1)  # publish
        self._store(self._tail_off, tail + 1)
        return True

    # -- consumer ------------------------------------------------------
    def peek(self) -> _Entry | None:
        """Next entry, or None when the ring is empty (no side effects)."""
        head = self._load(self._head_off)
        if self._load(self._tail_off) == head:
            return None
        slot = self._slots_off + (head % self.nslots) * self._stride
        (seq, ticket, seq_no, emit_seq, op, flags, ndim, nbytes,
         d0, d1, d2, d3, slen) = _META.unpack_from(self._buf, slot)
        if seq != 2 * head + 1:
            raise RingError(
                f"ring slot {head % self.nslots} seq {seq} != expected "
                f"{2 * head + 1}: torn write or corrupted segment"
            )
        shape = tuple((d0, d1, d2, d3)[:ndim])
        session = bytes(self._buf[slot + 64:slot + 64 + slen]).decode("utf-8")
        payload = self._buf[slot + _SLOT_META:slot + _SLOT_META + nbytes]
        return _Entry(op, ticket, seq_no, emit_seq, shape,
                      bool(flags & _FLAG_EXTERNAL), session, payload)

    def advance(self) -> None:
        """Retire the entry last returned by :meth:`peek` (frees its slot)."""
        head = self._load(self._head_off)
        slot = self._slots_off + (head % self.nslots) * self._stride
        self._store(slot, 2 * head + 2)  # consumed marker (debuggability)
        self._store(self._head_off, head + 1)

    def corrupt_last_published(self, seq: int = 0xDEADBEEF) -> None:
        """FAULT INJECTION ONLY: scribble the seq word of the most
        recently published entry, so the consumer's seqlock check trips.

        This is how :mod:`repro.runtime.net.faults` simulates a torn
        write / corrupted segment — the supervisor must detect it via
        :class:`RingError` and replace the worker.  Never call this on a
        healthy ring.
        """
        tail = self._load(self._tail_off)
        if tail == 0:
            return  # nothing ever published
        slot = self._slots_off + ((tail - 1) % self.nslots) * self._stride
        self._store(slot, seq)

    def release(self) -> None:
        """Release this ring's view of the segment (terminal).

        The segment's mmap cannot unmap while any exported view is
        alive; dropping the ring-held view here is what lets
        :meth:`RingPair.close` actually close instead of leaking the
        mapping to a noisy ``__del__``.  Entry payload slices are
        independent exports — consumers copy them out (``bytes(...)``)
        before retiring the slot, so none outlive their iteration.
        """
        try:
            self._buf.release()
        except (BufferError, ValueError):
            pass  # sliced views still pending; GC will finish the job


class RingPair:
    """Both rings of one worker, plus the kick flags, in one shm segment.

    The parent :meth:`create`\\ s (and ultimately unlinks) the segment;
    the worker :meth:`attach`\\ es by name.  ``requests`` is produced by
    the parent and consumed by the worker; ``responses`` the reverse.
    """

    def __init__(self, shm: Any, nslots: int, payload_capacity: int,
                 *, owner: bool):
        self._shm = shm
        self._owner = owner
        self.nslots = nslots
        self.payload_capacity = payload_capacity
        buf = shm.buf
        stride = _SLOT_META + payload_capacity
        ring_bytes = nslots * stride
        self.requests = Ring(
            buf, slots_offset=_HEADER_BYTES, counters_offset=0,
            nslots=nslots, payload_capacity=payload_capacity,
        )
        self.responses = Ring(
            buf, slots_offset=_HEADER_BYTES + ring_bytes, counters_offset=16,
            nslots=nslots, payload_capacity=payload_capacity,
        )
        self._req_kick_off = 32
        self._res_kick_off = 33

    # ------------------------------------------------------------------
    @staticmethod
    def segment_bytes(nslots: int, payload_capacity: int) -> int:
        return _HEADER_BYTES + 2 * nslots * (_SLOT_META + payload_capacity)

    @classmethod
    def create(cls, nslots: int, payload_capacity: int) -> "RingPair":
        from multiprocessing import shared_memory

        if nslots < 2:
            raise RingError(f"a ring needs at least 2 slots, got {nslots}")
        shm = shared_memory.SharedMemory(
            create=True, size=cls.segment_bytes(nslots, payload_capacity)
        )
        shm.buf[:_HEADER_BYTES] = bytes(_HEADER_BYTES)
        return cls(shm, nslots, payload_capacity, owner=True)

    @classmethod
    def attach(cls, name: str, nslots: int, payload_capacity: int) -> "RingPair":
        from multiprocessing import shared_memory

        # CPython's resource tracker registers *attachments* too, but
        # spawn children share the parent's tracker process and its
        # cache is a set: the duplicate registration collapses, and the
        # parent's single unlink() balances it.  Unregistering here
        # would instead make that unlink unbalanced (a KeyError
        # traceback in the tracker at exit).
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, nslots, payload_capacity, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    # -- kick flags (doorbell coalescing) ------------------------------
    def ring_kick(self, *, responses: bool) -> bool:
        """Producer side: arm the kick flag; True when the caller must
        actually enqueue the doorbell message (the flag was clear)."""
        off = self._res_kick_off if responses else self._req_kick_off
        if self._shm.buf[off]:
            return False
        self._shm.buf[off] = 1
        return True

    def clear_kick(self, *, responses: bool) -> None:
        """Consumer side: disarm *before* draining, so a producer racing
        with the drain re-arms and sends a fresh doorbell."""
        off = self._res_kick_off if responses else self._req_kick_off
        self._shm.buf[off] = 0

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.requests.release()
        self.responses.release()
        try:
            self._shm.close()
        except Exception:  # repro: ignore[REP005] buffer may already be released during interpreter teardown
            pass

    def unlink(self) -> None:
        if not self._owner:
            return
        try:
            self._shm.unlink()
        except Exception:  # repro: ignore[REP005] second unlink / vanished segment: the goal state (gone) already holds
            pass
